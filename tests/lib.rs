//! Shared helpers for the cross-crate integration tests.

use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::trajectory::Trajectory;
use rim_channel::ChannelSimulator;
use rim_core::{MotionEstimate, Rim, RimConfig};
use rim_csi::{CsiRecorder, DeviceConfig, RecorderConfig};

/// The standard test sample rate (100 Hz keeps integration tests fast
/// while staying above the paper's accuracy knee for ≤1 m/s motion).
pub const FS: f64 = 100.0;

/// λ/2 spacing.
pub const SPACING: f64 = HALF_WAVELENGTH;

/// Records and analyses a trajectory against a simulator.
pub fn run_pipeline(
    sim: &ChannelSimulator,
    geometry: &ArrayGeometry,
    traj: &Trajectory,
    config: RimConfig,
    seed: u64,
) -> MotionEstimate {
    let device = if geometry.nic_groups().len() == 2 {
        DeviceConfig::dual_nic(geometry.offsets().to_vec())
    } else {
        DeviceConfig::single_nic(geometry.offsets().to_vec())
    };
    let dense = CsiRecorder::new(
        sim,
        device,
        RecorderConfig {
            sanitize: true,
            seed,
        },
    )
    .record(traj)
    .interpolated()
    .expect("interpolable recording");
    Rim::new(geometry.clone(), config)
        .unwrap()
        .analyze(&dense)
        .unwrap()
}

/// Standard config bounded at a minimum speed.
pub fn config(min_speed: f64) -> RimConfig {
    RimConfig::for_sample_rate(FS).with_min_speed(min_speed, SPACING, FS)
}
