//! Observability integration: the instrumented pipeline must report every
//! stage, round-trip its report through JSON, and leave the estimates
//! untouched whether probed by a recorder or by the no-op probe.

use rim_array::ArrayGeometry;
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::Rim;
use rim_csi::{CsiRecorder, DeviceConfig, RecorderConfig};
use rim_dsp::geom::Point2;
use rim_integration_tests::{config, FS, SPACING};
use rim_obs::{serve_metric, stage, NullProbe, Recorder, RunReport, WindowSnapshot};

fn small_run() -> (Rim, rim_csi::recorder::DenseCsi) {
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::linear(3, SPACING);
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        0.8,
        1.0,
        FS,
        OrientationMode::FollowPath,
    );
    let dense = CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(geo.offsets().to_vec()),
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record(&traj)
    .interpolated()
    .expect("interpolable");
    (Rim::new(geo, config(0.3)).expect("valid config"), dense)
}

#[test]
fn run_report_covers_every_stage_and_round_trips() {
    let (rim, dense) = small_run();
    let recorder = Recorder::new();
    rim.session()
        .probe(&recorder)
        .analyze(&dense)
        .expect("analyzable");
    let report = recorder.report();

    for name in stage::PIPELINE {
        let s = report
            .stage(name)
            .unwrap_or_else(|| panic!("stage {name} missing"));
        assert!(s.calls >= 1, "{name} called");
        assert!(s.total_ms >= 0.0);
    }
    // Stage-specific content the instrumentation promises.
    let md = report.stage(stage::MOVEMENT_DETECTION).unwrap();
    assert_eq!(
        md.counters
            .iter()
            .find(|(k, _)| k == "samples")
            .map(|(_, v)| *v),
        Some(dense.n_samples() as u64)
    );
    let post = report.stage(stage::POST_DETECTION).unwrap();
    assert!(
        post.distributions
            .iter()
            .any(|d| d.name == "ridge_prominence"),
        "ridge prominence distribution recorded"
    );

    // Golden JSON round-trip: parse(to_json) reproduces the report.
    let json = report.to_json();
    let parsed = RunReport::from_json(&json).expect("valid report JSON");
    assert_eq!(parsed, report);
}

/// Golden fixtures, committed under `tests/fixtures/`: a v2 `RunReport`
/// covering the serve and incremental stages (with the µs latency
/// distribution and p99/p999 tails — the v1 ms alias is gone) and a
/// v1 windowed snapshot. Parsing and re-serialising must be lossless,
/// so schema drift has to regenerate the fixtures — a reviewable diff.
#[test]
fn golden_fixtures_cover_serve_and_incremental_stages() {
    let fixture = include_str!("../fixtures/run_report_v2.json");
    let report = RunReport::from_json(fixture).expect("report fixture parses");
    for name in [
        stage::SERVE,
        stage::INCREMENTAL,
        stage::STREAM,
        stage::LATENCY_ATTRIBUTION,
    ] {
        assert!(report.stage(name).is_some(), "{name} missing from fixture");
    }
    let serve = report.stage(stage::SERVE).unwrap();
    let us = serve
        .distributions
        .iter()
        .find(|d| d.name == serve_metric::INGEST_TO_ESTIMATE_US)
        .expect("µs latency distribution present");
    assert!(
        !serve
            .distributions
            .iter()
            .any(|d| d.name == "ingest_to_estimate_ms"),
        "the v1 ms alias was removed in the 0.5 sweep and must stay gone"
    );
    assert!(us.p50 <= us.p99 && us.p99 <= us.p999 && us.p999 <= us.max);
    let reparsed = RunReport::from_json(&report.to_json()).expect("round-trip");
    assert_eq!(reparsed, report);

    let fixture = include_str!("../fixtures/window_snapshot_v1.json");
    let snap = WindowSnapshot::from_json(fixture).expect("window fixture parses");
    assert!(snap.span_s > 0.0);
    assert!(
        snap.stage(stage::SERVE).is_some() && snap.stage(stage::INCREMENTAL).is_some(),
        "window fixture covers serve and incremental"
    );
    let reparsed = WindowSnapshot::from_json(&snap.to_json()).expect("round-trip");
    assert_eq!(reparsed, snap);
}

#[test]
fn null_probe_matches_unprobed_analysis_exactly() {
    let (rim, dense) = small_run();
    let plain = rim.analyze(&dense).unwrap();
    let probed = rim.session().probe(&NullProbe).analyze(&dense).unwrap();
    let recorded = {
        let recorder = Recorder::new();
        rim.session().probe(&recorder).analyze(&dense).unwrap()
    };
    // Instrumentation must be purely observational: identical estimates
    // with the no-op probe and with a live recorder.
    for est in [&probed, &recorded] {
        assert_eq!(est.total_distance(), plain.total_distance());
        assert_eq!(est.segments.len(), plain.segments.len());
        assert_eq!(est.moving, plain.moving);
    }
    // The disabled probe stays zero-sized — the generic pipeline carries
    // no recorder state in that instantiation.
    assert_eq!(std::mem::size_of::<NullProbe>(), 0);
}
