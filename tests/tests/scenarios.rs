//! Property tests over the heterogeneity matrix: any scenario-zoo
//! workload recorded on any device shape (56/114/242-subcarrier grid ×
//! 2/3/4-antenna array × mixed sample rates) must analyze without
//! panicking, and the pooled pipeline must stay bit-identical to the
//! serial one on every such shape — the invariants the scenario-zoo
//! bench assumes cell by cell.

use proptest::prelude::*;
use rim_array::ArrayGeometry;
use rim_channel::{scenarios, ChannelSimulator, SubcarrierLayout};
use rim_core::{MotionEstimate, Rim};
use rim_csi::{CsiRecorder, DeviceConfig, RecorderConfig};
use rim_dsp::geom::Point2;
use rim_integration_tests::{config, SPACING};

/// One device shape of the matrix, drawn by the strategy.
#[derive(Debug, Clone, Copy)]
struct Shape {
    bandwidth_mhz: u32,
    n_antennas: usize,
    sample_rate_hz: f64,
}

fn layout(mhz: u32) -> SubcarrierLayout {
    match mhz {
        20 => SubcarrierLayout::ht20_5ghz(),
        40 => SubcarrierLayout::ht40_5ghz(),
        _ => SubcarrierLayout::vht80_5ghz(),
    }
}

/// Every combination of the matrix axes, plus a scenario and a seed.
/// Sample rates stay low so each case's ray-traced recording is cheap;
/// the pipeline's lag windows scale with the rate, so the shape of the
/// computation is the same as at 200 Hz.
fn cases() -> impl Strategy<Value = (Shape, &'static str, u64)> {
    (
        prop::sample::select(vec![20u32, 40, 80]),
        2..5usize,
        prop::sample::select(vec![32.0f64, 40.0, 50.0]),
        0..scenarios::ZOO.len(),
        0..64u64,
    )
        .prop_map(
            |(bandwidth_mhz, n_antennas, sample_rate_hz, scenario, seed)| {
                (
                    Shape {
                        bandwidth_mhz,
                        n_antennas,
                        sample_rate_hz,
                    },
                    scenarios::ZOO[scenario].name,
                    seed,
                )
            },
        )
}

fn analyze(
    shape: Shape,
    scenario: &str,
    seed: u64,
    threads: usize,
) -> Result<MotionEstimate, rim_core::Error> {
    let geo = ArrayGeometry::linear(shape.n_antennas, SPACING);
    let traj = scenarios::build(scenario, Point2::new(0.0, 2.0), shape.sample_rate_hz, seed)
        .expect("zoo scenario name");
    let sim = ChannelSimulator::open_lab(seed).with_layout(layout(shape.bandwidth_mhz));
    let dense = CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(geo.offsets().to_vec()),
        RecorderConfig {
            sanitize: true,
            seed,
        },
    )
    .record(&traj)
    .interpolated()
    .expect("lossless recording interpolates");
    Rim::new(geo, config(0.3).with_threads(threads))
        .expect("matrix geometry is a valid config")
        .analyze(&dense)
}

/// f64 slice comparison by bit pattern (`speed_mps` legitimately
/// carries NaN, which `==` would reject even on identical runs).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full pipeline is panic-free on every cell of the matrix, and
    /// returns an estimate whose per-sample series cover the recording.
    #[test]
    fn analysis_is_panic_free_across_the_matrix((shape, scenario, seed) in cases()) {
        let est = analyze(shape, scenario, seed, 1);
        prop_assert!(
            est.is_ok(),
            "{scenario} on {shape:?} failed: {:?}",
            est.err()
        );
        let est = est.unwrap();
        prop_assert!(!est.movement_indicator.is_empty());
        prop_assert_eq!(est.movement_indicator.len(), est.speed_mps.len());
        prop_assert_eq!(est.moving.len(), est.speed_mps.len());
    }

    /// Thread count never changes a bit, whatever the device shape.
    #[test]
    fn serial_and_parallel_agree_bit_for_bit((shape, scenario, seed) in cases()) {
        let serial = analyze(shape, scenario, seed, 1).expect("serial analyzes");
        let pooled = analyze(shape, scenario, seed, 4).expect("pooled analyzes");
        prop_assert!(
            bits_eq(&serial.movement_indicator, &pooled.movement_indicator),
            "movement indicator diverged on {scenario} x {shape:?}"
        );
        prop_assert!(bits_eq(&serial.speed_mps, &pooled.speed_mps));
        prop_assert!(bits_eq(&serial.angular_rate, &pooled.angular_rate));
        prop_assert_eq!(serial.moving, pooled.moving);
        prop_assert_eq!(serial.heading_device, pooled.heading_device);
        prop_assert_eq!(serial.segments.len(), pooled.segments.len());
        for (a, b) in serial.segments.iter().zip(&pooled.segments) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
            prop_assert_eq!(a.distance_m.to_bits(), b.distance_m.to_bits());
        }
    }
}
