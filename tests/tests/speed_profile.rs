//! §4.4 claim test: "The varying speed will be captured by continuous
//! estimation" — RIM's per-sample speed must follow a non-constant
//! ground-truth profile, not just integrate to the right total.

use rim_array::ArrayGeometry;
use rim_channel::trajectory::line_ramped;
use rim_channel::trajectory::OrientationMode;
use rim_channel::ChannelSimulator;
use rim_dsp::geom::Point2;
use rim_integration_tests::{config, run_pipeline, FS, SPACING};

#[test]
fn speed_estimates_follow_trapezoidal_profile() {
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::linear(3, SPACING);
    // Accelerate to 1 m/s, cruise, decelerate — over 4 m.
    let traj = line_ramped(
        Point2::new(-1.0, 2.0),
        0.0,
        4.0,
        1.0,
        1.0,
        FS,
        OrientationMode::FollowPath,
    );
    let truth_speeds = traj.speeds();
    let est = run_pipeline(&sim, &geo, &traj, config(0.25), 1);
    assert_eq!(est.speed_mps.len(), truth_speeds.len());

    // Compare where RIM produced an estimate (skip the blind ramp-in).
    let mut errs = Vec::new();
    let mut cruise_speeds = Vec::new();
    let mut slow_phase_speeds = Vec::new();
    for (i, (&v, &t)) in est.speed_mps.iter().zip(&truth_speeds).enumerate() {
        if !v.is_finite() {
            continue;
        }
        errs.push((v - t).abs());
        if t > 0.95 {
            cruise_speeds.push(v);
        }
        // The deceleration phase in the middle of its ramp.
        if (0.4..0.7).contains(&t) && i > est.speed_mps.len() / 2 {
            slow_phase_speeds.push(v);
        }
    }
    assert!(errs.len() > 200, "most samples estimated: {}", errs.len());
    let median_err = rim_dsp::stats::median(&errs);
    assert!(median_err < 0.12, "median speed error {median_err:.3} m/s");

    // The profile shape is tracked: cruise readings sit near 1 m/s and the
    // deceleration readings sit clearly below them.
    let cruise = rim_dsp::stats::median(&cruise_speeds);
    assert!((cruise - 1.0).abs() < 0.1, "cruise speed {cruise:.2}");
    if slow_phase_speeds.len() > 5 {
        let slow = rim_dsp::stats::median(&slow_phase_speeds);
        assert!(
            slow < cruise - 0.2,
            "deceleration tracked: {slow:.2} vs cruise {cruise:.2}"
        );
    }
}

#[test]
fn two_speed_trace_resolves_both_plateaus() {
    // 1 m at 0.5 m/s then 1 m at 1.0 m/s, continuously.
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::linear(3, SPACING);
    let mut traj = rim_channel::trajectory::line(
        Point2::new(0.0, 2.0),
        0.0,
        1.0,
        0.5,
        FS,
        OrientationMode::FollowPath,
    );
    traj.extend(&rim_channel::trajectory::line(
        Point2::new(1.0, 2.0),
        0.0,
        1.0,
        1.0,
        FS,
        OrientationMode::FollowPath,
    ));
    let est = run_pipeline(&sim, &geo, &traj, config(0.25), 2);
    let n = est.speed_mps.len();
    let first: Vec<f64> = est.speed_mps[n / 8..3 * n / 8]
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    let second: Vec<f64> = est.speed_mps[3 * n / 4..]
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    let v1 = rim_dsp::stats::median(&first);
    let v2 = rim_dsp::stats::median(&second);
    assert!((v1 - 0.5).abs() < 0.12, "first plateau {v1:.2} m/s");
    assert!((v2 - 1.0).abs() < 0.15, "second plateau {v2:.2} m/s");
    assert!(
        (est.total_distance() - 2.0).abs() < 0.2,
        "total {:.2} m",
        est.total_distance()
    );
}
