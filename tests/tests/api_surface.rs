//! Snapshot of the intended v2 public API surface.
//!
//! Every name below is imported explicitly (no globs), so removing or
//! renaming a re-export breaks this file at compile time — an API change
//! has to edit this snapshot, which makes it reviewable. Signature
//! drift on the central entry points is pinned with typed function
//! items; behavioural contracts live in the other integration tests.
//!
//! The v1 entry points deleted in the 0.5 sweep (`RimStream::push` /
//! `offer` / `offer_synced` and their `StreamSession` twins, the
//! `ingest_to_estimate_ms` serve-metric alias) are deliberately absent:
//! code goes through `ingest`, the session builder, and the µs metric.
//! `ServeConfig` construction goes through the validated
//! [`ServeConfig::builder`] — the struct's fields are private.

#![allow(unused_imports)]

// The engine and its session builder.
use rim_core::{Confidence, MotionEstimate, Rim, RimConfig, Session};
// Error taxonomy (one type, actionable messages).
use rim_core::Error;
// Segment output.
use rim_core::{SegmentEstimate, SegmentKind};
// Streaming front-end: one ingest entry point over four input shapes.
use rim_core::{
    DegradeReason, GapFilter, RimStream, StreamAggregate, StreamEvent, StreamInput, StreamSession,
};
// Multi-modal ingest v2: IMU input, the fused estimate's mode label, and
// the forward-compatible event discriminant (`StreamEvent` is
// `#[non_exhaustive]`; `kind()` is the match-free dispatch path).
use rim_core::{FusedMode, ImuSample, StreamEventKind};
// The RIM×IMU fusion engine: validated builder, streaming filter, and
// the probed session handle.
use rim_tracking::{FusedSession, FusedStream, Fuser, FuserBuilder, FusionConfig};
// IMU acquisition: simulated sensors plus the validated external-data
// constructor and its typed error.
use rim_sensors::{ImuConfig, ImuError, ImuRecording, SimulatedImu};
// Algorithm stages exposed for diagnostics and research use.
use rim_core::{alignment_matrix, AlignmentConfig, AlignmentMatrix};
use rim_core::{auto_threshold, detect_movement, movement_indicator, MovementConfig};
use rim_core::{track_peaks, DpConfig, TrackedPath};
use rim_core::{trrs_avg, trrs_cfr, trrs_cir, trrs_massive, trrs_norm, NormSnapshot};
// Precision modes: the f64 reference and the reduced-precision fast path,
// with its scalar reference and the precision-aware matrix entry point.
use rim_core::alignment::base_cross_trrs_range_prec;
use rim_core::{trrs_norm_f32, Precision};
// The dependency-free SIMD kernel crate: dispatch-tier introspection.
use rim_simd::{active_tier, force_tier, Tier};

// The serving layer: manager, server, client, and the wire protocol.
use rim_serve::wire::{read_frame, write_frame, MAX_FRAME_LEN};
use rim_serve::wire::{Request, Response, WireError};
use rim_serve::{
    Admit, Client, RejectReason, ServeConfig, ServeConfigBuilder, Server, SessionManager,
};

use rim_array::ArrayGeometry;
use rim_csi::sync::SyncedSample;
use rim_obs::{Probe, Recorder, RunReport};
// Observability v2: request tracing and windowed live telemetry.
use rim_obs::{
    ActiveTrace, SpanId, SpanKind, TraceId, TraceRecord, TraceSpan, Tracer, WindowSnapshot,
    WindowStageSnapshot, TRACE_RING_CAP, WINDOW_SCHEMA,
};

/// Central constructor/entry-point signatures, pinned as typed function
/// items: a parameter or return-type change fails to compile here.
#[test]
fn entry_point_signatures_are_stable() {
    let _rim_new: fn(ArrayGeometry, RimConfig) -> Result<Rim, Error> = Rim::new;
    let _stream_new: fn(ArrayGeometry, RimConfig) -> Result<RimStream, Error> = RimStream::new;
    let _stream_with_engine: fn(Rim) -> RimStream = RimStream::with_engine;
    let _manager_new: fn(ArrayGeometry, RimConfig, ServeConfig) -> Result<SessionManager, Error> =
        SessionManager::new;
    let _manager_ingest: fn(&SessionManager, u64, SyncedSample) -> Admit = SessionManager::ingest;
    let _manager_process: fn(&SessionManager) -> usize = SessionManager::process;
    let _manager_finish: fn(&SessionManager, u64) -> Vec<StreamEvent> = SessionManager::finish;
    let _manager_report: fn(&SessionManager) -> RunReport = SessionManager::report;
    let _client_finish: fn(&mut Client, u64) -> std::io::Result<Vec<StreamEvent>> = Client::finish;
    // Observability v2 surface: live telemetry and trace access.
    let _manager_metrics: fn(&SessionManager) -> String = SessionManager::metrics_text;
    let _manager_window: fn(&SessionManager) -> WindowSnapshot = SessionManager::window_snapshot;
    let _manager_traces: fn(&SessionManager, usize) -> Vec<TraceRecord> = SessionManager::traces;
    let _client_metrics: fn(&mut Client) -> std::io::Result<String> = Client::metrics;
    let _recorder_window: fn(&Recorder) -> WindowSnapshot = Recorder::window_snapshot;
    let _config_tracing: fn(RimConfig, usize) -> RimConfig = RimConfig::with_trace_sampling;
    let _config_precision: fn(RimConfig, Precision) -> RimConfig = RimConfig::precision;
    let _trrs_f32: fn(&NormSnapshot, &NormSnapshot) -> f64 = trrs_norm_f32;
    // Serve configuration v2: one validated builder path.
    let _serve_builder: fn() -> ServeConfigBuilder = ServeConfig::builder;
    let _serve_build: fn(ServeConfigBuilder) -> Result<ServeConfig, Error> =
        ServeConfigBuilder::build;
    let _budget: fn(&ServeConfig) -> u64 = ServeConfig::latency_budget_us;
    let _io_threads: fn(&ServeConfig) -> usize = ServeConfig::io_threads;
    // Fusion engine v1: validated builder in, streaming filter out.
    let _fuser_builder: fn() -> FuserBuilder = Fuser::builder;
    let _fuser_build: fn(FuserBuilder) -> Result<Fuser, Error> = FuserBuilder::build;
    let _fuser_config: fn(&Fuser) -> &FusionConfig = Fuser::config;
    let _fuser_stream: fn(&Fuser, RimStream) -> FusedStream = Fuser::stream;
    let _fused_finish: fn(&mut FusedStream) -> Vec<StreamEvent> = FusedStream::finish;
    let _fused_position: fn(&FusedStream) -> rim_dsp::geom::Point2 = FusedStream::position;
    let _fused_total: fn(&FusedStream) -> f64 = FusedStream::total_distance;
    let _fused_mode: fn(&FusedStream) -> FusedMode = FusedStream::mode;
    // Multi-modal ingest v2: the event discriminant and the validated
    // IMU-recording constructor for external data.
    let _event_kind: fn(&StreamEvent) -> StreamEventKind = StreamEvent::kind;
    let _imu_validated: ImuValidatedFn = ImuRecording::validated;
    let _imu_len: fn(&ImuRecording) -> usize = ImuRecording::len;
    // The serve path carries IMU batches end to end.
    let _manager_with_fuser: fn(
        ArrayGeometry,
        RimConfig,
        ServeConfig,
        Fuser,
    ) -> Result<SessionManager, Error> = SessionManager::with_fuser;
    let _manager_imu: fn(&SessionManager, u64, Vec<ImuSample>) -> Admit =
        SessionManager::ingest_imu;
    let _client_imu: ClientImuFn = Client::ingest_imu;
    let _client_imu_blocking: ClientImuFn = Client::ingest_imu_blocking;
}

/// Pinned signatures too wide for an inline annotation; a parameter or
/// return-type change on the aliased entry points still fails to
/// compile here.
type ImuValidatedFn =
    fn(f64, Vec<rim_dsp::geom::Vec2>, Vec<f64>, Vec<f64>) -> Result<ImuRecording, ImuError>;
type ClientImuFn =
    fn(&mut Client, u64, Vec<ImuSample>) -> std::io::Result<(Admit, Vec<StreamEvent>)>;

/// The pre-builder fusion entry points survive as deprecated wrappers:
/// still exported, still the documented signatures, so downstream code
/// keeps compiling (with a warning pointing at [`Fuser`]) until it
/// migrates.
#[test]
#[allow(deprecated)]
fn deprecated_fusion_wrappers_remain_callable() {
    use rim_channel::floorplan::Floorplan;
    use rim_dsp::geom::Point2;
    use rim_tracking::fusion::{fuse_with_gyro, fuse_with_gyro_weighted, fuse_with_map};
    use rim_tracking::{FusedTrack, MapFusionConfig};

    let _plain: fn(&MotionEstimate, &[f64], Point2, f64) -> Vec<Point2> = fuse_with_gyro;
    let _weighted: fn(&MotionEstimate, &[f64], Point2, f64, f64) -> Vec<Point2> =
        fuse_with_gyro_weighted;
    let _mapped: fn(
        &MotionEstimate,
        &[f64],
        &Floorplan,
        Point2,
        f64,
        &MapFusionConfig,
    ) -> FusedTrack = fuse_with_map;

    // And they still run: an empty estimate dead-reckons to nothing.
    let estimate = MotionEstimate {
        sample_rate_hz: 100.0,
        movement_indicator: Vec::new(),
        moving: Vec::new(),
        speed_mps: Vec::new(),
        heading_device: Vec::new(),
        angular_rate: Vec::new(),
        segments: Vec::new(),
    };
    let fused = fuse_with_gyro(&estimate, &[], Point2::new(0.0, 0.0), 0.0);
    assert!(fused.is_empty());
}

/// `ingest` accepts all three input shapes through one entry point, on
/// both the bare stream and the probed session builder.
#[test]
fn ingest_accepts_all_stream_input_shapes() {
    let geometry = ArrayGeometry::linear(3, rim_array::HALF_WAVELENGTH);
    let config = RimConfig::for_sample_rate(100.0);
    let mut stream = RimStream::new(geometry, config).expect("valid config");
    let recorder = Recorder::new();

    // One snapshot per antenna = one dense sample.
    let dense: Vec<rim_csi::frame::CsiSnapshot> = (0..3)
        .map(|a| rim_csi::frame::CsiSnapshot {
            per_tx: vec![vec![
                rim_dsp::complex::Complex64::new(1.0 + a as f64, 0.0);
                8
            ]],
        })
        .collect();
    // Dense slices, sequenced holes, and synced samples all coerce.
    assert!(stream.ingest(dense.clone()).is_ok());
    assert!(stream.ingest((1u64, vec![None, None, None])).is_ok());
    assert!(stream
        .ingest(SyncedSample {
            seq: 2,
            antennas: vec![None, None, None],
        })
        .is_ok());
    assert!(stream
        .session()
        .probe(&recorder)
        .ingest(StreamInput::Dense(dense))
        .is_ok());
}

/// The admission contract is a three-way decision with typed payloads.
#[test]
fn admit_variants_carry_backpressure_payloads() {
    let decisions = [
        Admit::Accepted,
        Admit::Throttled { retry_after: 5 },
        Admit::Rejected {
            reason: RejectReason::SessionTableFull,
        },
        Admit::Rejected {
            reason: RejectReason::ShuttingDown,
        },
        Admit::Rejected {
            reason: RejectReason::Backpressure,
        },
    ];
    assert_eq!(
        decisions.iter().filter(|d| **d == Admit::Accepted).count(),
        1
    );
}
