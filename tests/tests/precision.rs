//! Property tests of the precision modes: tier bit-equality for the f64
//! reference path, the f32 fast path's error budget, and the invariance
//! of event ordering and confidence plumbing under `RimConfig::precision`.

use proptest::prelude::*;
use rim_array::ArrayGeometry;
use rim_channel::trajectory::{line, stop_and_go, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::alignment::base_cross_trrs_range_prec;
use rim_core::{trrs_norm, NormSnapshot, Precision, RimStream, StreamEvent};
use rim_csi::frame::CsiSnapshot;
use rim_csi::{CsiRecorder, DeviceConfig, RecorderConfig};
use rim_dsp::complex::Complex64;
use rim_dsp::geom::Point2;
use rim_dsp::stats::angle_diff;
use rim_integration_tests::{config, run_pipeline, FS, SPACING};
use rim_par::Pool;
use rim_simd::{force_tier, Tier};
use std::sync::Mutex;

/// Serialises the tests that pin the process-wide SIMD dispatch tier.
static TIER_LOCK: Mutex<()> = Mutex::new(());

/// Restores automatic tier detection even when an assertion unwinds.
struct TierGuard;
impl Drop for TierGuard {
    fn drop(&mut self) {
        force_tier(None);
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic unit-norm snapshot series with pseudo-random phases.
fn series(seed: u64, t_len: usize, n_tx: usize, n_sub: usize) -> Vec<NormSnapshot> {
    (0..t_len)
        .map(|t| {
            NormSnapshot::from_snapshot(&CsiSnapshot {
                per_tx: (0..n_tx)
                    .map(|tx| {
                        (0..n_sub)
                            .map(|k| {
                                let h = mix(seed
                                    .wrapping_add((t as u64) << 40)
                                    .wrapping_add((tx as u64) << 20)
                                    .wrapping_add(k as u64));
                                let x = (h >> 12) as f64 / (1u64 << 52) as f64;
                                Complex64::from_polar(0.5 + x, x * std::f64::consts::TAU)
                            })
                            .collect()
                    })
                    .collect(),
            })
        })
        .collect()
}

/// The masked per-entry scalar reference: exactly the pre-SoA
/// `cross_trrs_row` loop, one `trrs_norm` per in-range entry.
fn aos_reference(a: &[NormSnapshot], b: &[NormSnapshot], window: usize) -> Vec<Vec<f64>> {
    let w = window as isize;
    a.iter()
        .enumerate()
        .map(|(t, snap)| {
            (0..2 * window + 1)
                .map(|k| {
                    let src = t as isize - (k as isize - w);
                    if src < 0 || src as usize >= b.len() {
                        0.0
                    } else {
                        trrs_norm(snap, &b[src as usize])
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite (a): the SIMD f64 path is bit-identical to the scalar
    /// tier — and to the pre-SoA AoS reference — at 1 and 4 threads, on
    /// every generated series shape. The f32 path must likewise be
    /// tier- and thread-invariant (its reference is the scalar f32 lane).
    #[test]
    fn f64_reference_is_bit_identical_across_tiers_and_threads(
        seed in any::<u64>(),
        t_len in 8usize..36,
        window in 1usize..12,
        n_tx in 1usize..3,
        n_sub in 4usize..48,
    ) {
        let _serial = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _restore = TierGuard;
        let a = series(seed, t_len, n_tx, n_sub);
        let b = series(seed ^ 0xA5A5_5A5A, t_len, n_tx, n_sub);
        let reference = aos_reference(&a, &b, window);
        let mut f32_baseline: Option<Vec<Vec<f64>>> = None;
        for threads in [1usize, 4] {
            let pool = Pool::new(threads, 0);
            force_tier(Some(Tier::Scalar));
            let scalar = base_cross_trrs_range_prec(
                &a, &b, window, (0, t_len), &pool, Precision::F64Reference);
            force_tier(Some(Tier::Avx2));
            let simd = base_cross_trrs_range_prec(
                &a, &b, window, (0, t_len), &pool, Precision::F64Reference);
            for (t, (rs, rv)) in scalar.values.iter().zip(&simd.values).enumerate() {
                for (k, (x, y)) in rs.iter().zip(rv).enumerate() {
                    prop_assert_eq!(x.to_bits(), y.to_bits(),
                        "f64 tier mismatch at t={} k={} threads={}", t, k, threads);
                }
            }
            for (t, (rr, rs)) in reference.iter().zip(&scalar.values).enumerate() {
                for (k, (x, y)) in rr.iter().zip(rs).enumerate() {
                    prop_assert_eq!(x.to_bits(), y.to_bits(),
                        "f64 AoS/SoA mismatch at t={} k={} threads={}", t, k, threads);
                }
            }
            force_tier(Some(Tier::Scalar));
            let scalar32 = base_cross_trrs_range_prec(
                &a, &b, window, (0, t_len), &pool, Precision::F32Fast);
            force_tier(Some(Tier::Avx2));
            let simd32 = base_cross_trrs_range_prec(
                &a, &b, window, (0, t_len), &pool, Precision::F32Fast);
            for (t, (rs, rv)) in scalar32.values.iter().zip(&simd32.values).enumerate() {
                for (k, (x, y)) in rs.iter().zip(rv).enumerate() {
                    prop_assert_eq!(x.to_bits(), y.to_bits(),
                        "f32 tier mismatch at t={} k={} threads={}", t, k, threads);
                }
            }
            // Thread count must not change f32 results either.
            match &f32_baseline {
                None => f32_baseline = Some(simd32.values.clone()),
                Some(base) => {
                    for (rs, rv) in base.iter().zip(&simd32.values) {
                        for (x, y) in rs.iter().zip(rv) {
                            prop_assert_eq!(x.to_bits(), y.to_bits());
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite (b): on every generated walk the f32 fast path lands
    /// within the documented error budget of the f64 reference — segment
    /// distance within 1 mm, heading within 0.1°.
    #[test]
    fn f32_fast_stays_inside_its_error_budget(
        seed in 1u64..40,
        length_dm in 15u32..40,
        speed_cmps in 60u32..120,
        start_x in -2.0f64..0.0,
    ) {
        let sim = ChannelSimulator::open_lab(seed);
        let geo = ArrayGeometry::linear(3, SPACING);
        let traj = line(
            Point2::new(start_x, 2.0),
            0.0,
            length_dm as f64 / 10.0,
            speed_cmps as f64 / 100.0,
            FS,
            OrientationMode::Fixed(0.0),
        );
        let est64 = run_pipeline(&sim, &geo, &traj,
            config(0.3).precision(Precision::F64Reference), seed);
        let est32 = run_pipeline(&sim, &geo, &traj,
            config(0.3).precision(Precision::F32Fast), seed);
        prop_assert_eq!(est64.segments.len(), est32.segments.len(),
            "precision changed the segment count");
        for (s64, s32) in est64.segments.iter().zip(&est32.segments) {
            prop_assert_eq!(s64.start, s32.start);
            prop_assert_eq!(s64.end, s32.end);
            prop_assert_eq!(s64.kind, s32.kind);
            let d_mm = (s64.distance_m - s32.distance_m).abs() * 1e3;
            prop_assert!(d_mm <= 1.0, "distance delta {d_mm:.3} mm exceeds the 1 mm budget");
            if let (Some(h64), Some(h32)) = (s64.heading_device, s32.heading_device) {
                let dh_deg = angle_diff(h64, h32).abs().to_degrees();
                prop_assert!(dh_deg <= 0.1, "heading delta {dh_deg:.4}° exceeds the 0.1° budget");
            } else {
                prop_assert_eq!(s64.heading_device.is_some(), s32.heading_device.is_some(),
                    "precision changed heading availability");
            }
        }
    }
}

/// Satellite (c): precision selects TRRS arithmetic only — movement
/// detection stays f64, so segmentation, event ordering, and the
/// confidence plumbing are identical between the two modes.
#[test]
fn precision_does_not_change_event_ordering_or_confidence_plumbing() {
    let sim = ChannelSimulator::open_lab(23);
    let geo = ArrayGeometry::linear(3, SPACING);
    let traj = stop_and_go(Point2::new(-1.5, 2.0), 0.0, 1.0, 0.7, 2, 0.8, FS);
    let device = DeviceConfig::single_nic(geo.offsets().to_vec());
    let dense = CsiRecorder::new(
        &sim,
        device,
        RecorderConfig {
            sanitize: true,
            seed: 23,
        },
    )
    .record(&traj)
    .interpolated()
    .expect("dense recording");

    // Batch path: the movement layer never sees f32, so the indicator and
    // flags must be bit-identical, and the segment boundaries with them.
    let est64 = run_pipeline(
        &sim,
        &geo,
        &traj,
        config(0.3).precision(Precision::F64Reference),
        23,
    );
    let est32 = run_pipeline(
        &sim,
        &geo,
        &traj,
        config(0.3).precision(Precision::F32Fast),
        23,
    );
    assert_eq!(
        est64.movement_indicator.len(),
        est32.movement_indicator.len()
    );
    for (x, y) in est64
        .movement_indicator
        .iter()
        .zip(&est32.movement_indicator)
    {
        assert_eq!(x.to_bits(), y.to_bits(), "movement indicator diverged");
    }
    assert_eq!(est64.moving, est32.moving, "movement flags diverged");
    assert_eq!(est64.segments.len(), est32.segments.len());
    for (s64, s32) in est64.segments.iter().zip(&est32.segments) {
        assert_eq!(
            (s64.start, s64.end, s64.kind),
            (s32.start, s32.end, s32.kind)
        );
        for c in [&s64.confidence, &s32.confidence] {
            assert!(c.peak_margin.is_finite() && c.peak_margin >= 0.0);
            assert!((0.0..=1.0).contains(&c.interpolated_fraction));
            assert!((0.0..=1.0).contains(&c.alignment_coverage));
        }
    }

    // Streaming path: the event kinds, their order, and their sample
    // indices must match one for one across precisions.
    let shape = |events: &[StreamEvent]| -> Vec<(String, usize)> {
        events
            .iter()
            .map(|e| match e {
                StreamEvent::MovementStarted { at } => ("start".into(), *at),
                StreamEvent::Segment(s) => ("segment".into(), s.start),
                StreamEvent::Provisional { at, .. } => ("provisional".into(), *at),
                other => (format!("{other:?}"), 0),
            })
            .collect()
    };
    let mut shapes = Vec::new();
    for precision in [Precision::F64Reference, Precision::F32Fast] {
        let cfg = config(0.3).precision(precision);
        let mut stream = RimStream::new(geo.clone(), cfg).expect("valid config");
        let mut events = Vec::new();
        for i in 0..dense.n_samples() {
            let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
            events.extend(stream.ingest(snaps).expect("matching antenna count"));
        }
        events.extend(stream.finish());
        shapes.push(shape(&events));
    }
    assert_eq!(shapes[0], shapes[1], "precision changed the event sequence");
}
