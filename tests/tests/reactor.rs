//! Reactor edge cases, driven over raw sockets so the tests control
//! exactly what hits the wire and when:
//!
//! * a frame arriving in pieces across multiple readiness events is
//!   assembled and answered normally;
//! * a client that half-closes mid-frame is dropped without taking the
//!   server (or its neighbours) down;
//! * a half-close right after a complete request still gets its
//!   response before the server closes the connection;
//! * a slow reader that lets the server's per-connection write queue
//!   overflow gets clean `Rejected { Backpressure }` answers (and
//!   suppressed telemetry snapshots) instead of an unbounded buffer —
//!   and the connection recovers once the reader drains.

use rim_array::ArrayGeometry;
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_csi::sync::SyncedSample;
use rim_csi::{synced_from_recording, CsiRecorder, DeviceConfig, RecorderConfig};
use rim_dsp::geom::Point2;
use rim_integration_tests::{config, FS, SPACING};
use rim_serve::wire::{self, Request, Response};
use rim_serve::{Admit, Client, RejectReason, ServeConfig, Server, SessionManager};
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn geometry() -> ArrayGeometry {
    ArrayGeometry::linear(3, SPACING)
}

/// A handful of real samples to ingest (a short lab walk).
fn samples() -> Vec<SyncedSample> {
    let sim = ChannelSimulator::open_lab(7);
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        0.3,
        1.0,
        FS,
        OrientationMode::FollowPath,
    );
    let recording = CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(geometry().offsets().to_vec()),
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record(&traj);
    synced_from_recording(&recording)
}

fn server_with(serve_cfg: ServeConfig) -> (Server, Arc<SessionManager>) {
    let manager =
        Arc::new(SessionManager::new(geometry(), config(0.3), serve_cfg).expect("valid config"));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&manager)).expect("bind");
    (server, manager)
}

fn read_response(stream: &mut TcpStream) -> Response {
    let body = wire::read_frame(stream)
        .expect("read frame")
        .expect("server hung up");
    Response::decode(&body).expect("decodable response")
}

#[test]
fn partial_frame_across_readiness_events_is_assembled() {
    let (mut server, _) = server_with(ServeConfig::default());
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    let sample = samples().remove(0);
    let frame = Request::Ingest {
        session_id: 7,
        sample,
    }
    .encode();
    let bytes: &[u8] = &frame;
    // Three separate writes with pauses: the length prefix split from
    // the body, the body split again. Each chunk is its own readiness
    // event; the reactor must buffer until the frame completes.
    let cuts = [2, bytes.len() / 2, bytes.len()];
    let mut start = 0;
    for cut in cuts {
        stream.write_all(&bytes[start..cut]).expect("write chunk");
        stream.flush().expect("flush");
        start = cut;
        std::thread::sleep(Duration::from_millis(20));
    }
    match read_response(&mut stream) {
        Response::Admit { admit, .. } => assert_eq!(admit, Admit::Accepted),
        other => panic!("expected Admit, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn half_close_mid_frame_drops_the_connection_not_the_server() {
    let (mut server, _) = server_with(ServeConfig::default());
    let addr = server.local_addr();

    // Client A dies mid-frame: a length prefix promising 100 bytes,
    // ten bytes of body, then FIN.
    let mut dying = TcpStream::connect(addr).expect("connect");
    dying
        .write_all(&100u32.to_be_bytes())
        .and_then(|()| dying.write_all(&[0u8; 10]))
        .expect("write partial frame");
    dying.shutdown(Shutdown::Write).expect("half-close");
    // The server closes the connection rather than waiting forever for
    // the rest of the frame.
    assert!(
        wire::read_frame(&mut dying).expect("clean close").is_none(),
        "server should close a half-dead connection without a response"
    );

    // A well-behaved neighbour is unaffected.
    let mut client = Client::connect(addr).expect("connect neighbour");
    let (admit, _) = client
        .ingest_blocking(1, samples().remove(0))
        .expect("ingest");
    assert_eq!(admit, Admit::Accepted);
    server.shutdown();
}

#[test]
fn half_close_after_a_complete_request_still_gets_its_response() {
    let (mut server, _) = server_with(ServeConfig::default());
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&Request::Metrics.encode())
        .expect("write metrics request");
    stream.shutdown(Shutdown::Write).expect("half-close");

    // The request was complete before the FIN, so the reactor flushes
    // the response before closing.
    match read_response(&mut stream) {
        Response::MetricsSnapshot { text } => {
            assert!(text.starts_with("# rim-serve metrics v1"));
        }
        other => panic!("expected MetricsSnapshot, got {other:?}"),
    }
    assert!(
        wire::read_frame(&mut stream)
            .expect("clean close")
            .is_none(),
        "connection closes after the flush"
    );
    server.shutdown();
}

#[test]
fn slow_reader_overflow_is_rejected_cleanly_and_recovers() {
    // The smallest permitted write queue, so the overflow threshold is
    // well under what the kernel socket buffers can absorb. Tracing
    // every sample fattens the telemetry snapshot (16 trace lines) so a
    // burst of metrics requests outruns even an autotuned ~4 MB kernel
    // send buffer and forces the queue over its cap.
    let (mut server, _) = server_with(
        ServeConfig::builder()
            .write_buf_cap(1024)
            .trace_every(1)
            .build()
            .expect("valid config"),
    );
    let addr = server.local_addr();

    // Prime the tracer: stream enough samples that the snapshot carries
    // its full 16 recent-trace lines, and wait until it does.
    let mut primer = Client::connect(addr).expect("connect primer");
    for sample in samples() {
        primer.ingest_blocking(3, sample).expect("prime ingest");
    }
    let mut snapshot_len = 0usize;
    for _ in 0..400 {
        let text = primer.metrics().expect("metrics");
        snapshot_len = text.len();
        if text.matches("\ntrace ").count() >= 16 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        snapshot_len > 1200,
        "snapshot too small ({snapshot_len} B) to ever overflow the kernel buffers"
    );

    // The scenario races the client's burst against the reactor's read
    // loop (a preemption mid-burst can let the server answer the tail
    // after the queue drained), so allow a couple of attempts.
    let mut last_failure = String::new();
    for attempt in 0..3 {
        match overflow_scenario(addr, snapshot_len) {
            Ok(()) => {
                server.shutdown();
                return;
            }
            Err(e) => {
                eprintln!("attempt {attempt}: {e}");
                last_failure = e;
            }
        }
    }
    panic!("overflow never triggered cleanly: {last_failure}");
}

/// One slow-reader episode: pipeline a wall of metrics requests and a
/// trailing ingest burst without reading, then drain and check the
/// server answered the overflow with suppressed snapshots and clean
/// `Rejected {{ Backpressure }}` — and that the connection recovers.
fn overflow_scenario(addr: std::net::SocketAddr, snapshot_len: usize) -> Result<(), String> {
    // Enough requests that the full-size responses total several times
    // the kernel's autotuned buffer ceiling (~4.3 MB).
    let metrics_burst = (12 << 20) / snapshot_len.max(1);
    const INGEST_BURST: usize = 5;
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;

    let sample = samples().remove(0);
    let mut burst = Vec::new();
    for _ in 0..metrics_burst {
        burst.extend_from_slice(&Request::Metrics.encode());
    }
    for _ in 0..INGEST_BURST {
        burst.extend_from_slice(
            &Request::Ingest {
                session_id: 9,
                sample: sample.clone(),
            }
            .encode(),
        );
    }
    stream.write_all(&burst).map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;
    // Be a genuinely slow reader: give the server time to answer the
    // whole pipeline while nothing is drained, so the responses pile
    // into the kernel buffers and then the per-connection queue.
    std::thread::sleep(Duration::from_millis(1500));

    // Now drain everything like a reader that finally woke up.
    let mut full_snapshots = 0usize;
    let mut suppressed = 0usize;
    let mut rejected = 0usize;
    let mut admitted = 0usize;
    for _ in 0..metrics_burst + INGEST_BURST {
        match read_response(&mut stream) {
            Response::MetricsSnapshot { text } => {
                if text.contains("backpressure.suppressed") {
                    suppressed += 1;
                } else {
                    full_snapshots += 1;
                }
            }
            Response::Admit { admit, .. } => match admit {
                Admit::Rejected {
                    reason: RejectReason::Backpressure,
                } => rejected += 1,
                Admit::Accepted | Admit::Throttled { .. } => admitted += 1,
                other => panic!("unexpected admission {other:?}"),
            },
            other => panic!("unexpected response {other:?}"),
        }
    }
    if full_snapshots + suppressed != metrics_burst {
        return Err(format!(
            "lost snapshots: {full_snapshots} full + {suppressed} suppressed != {metrics_burst}"
        ));
    }
    if suppressed == 0 {
        return Err(format!(
            "the write queue never overflowed — all {full_snapshots} snapshots fit"
        ));
    }
    if rejected != INGEST_BURST {
        return Err(format!(
            "ingests behind an overflowed queue must be rejected \
             ({rejected} rejected, {admitted} admitted)"
        ));
    }

    // The connection recovers once drained: a fresh ingest is admitted.
    stream
        .write_all(
            &Request::Ingest {
                session_id: 9,
                sample,
            }
            .encode(),
        )
        .map_err(|e| e.to_string())?;
    match read_response(&mut stream) {
        Response::Admit { admit, .. } => {
            if admit != Admit::Accepted {
                return Err(format!("recovery ingest not accepted: {admit:?}"));
            }
        }
        other => return Err(format!("expected Admit, got {other:?}")),
    }
    Ok(())
}
