//! Serving-layer contracts, end to end over the loopback wire protocol:
//!
//! * **Bit-equality under multi-tenancy** — K concurrent sessions
//!   streamed through one server produce, per session, exactly the
//!   events a standalone serial [`RimStream`] produces for the same
//!   samples. Cross-session batching, sharding, wire encoding, and the
//!   scheduler's arbitrary interleaving must all be invisible in the
//!   output bits (the repo's determinism invariant extended to the
//!   service). Run under `RIM_THREADS=1` and `=4` by CI.
//! * **Backpressure isolation** — a flooded session is throttled, and
//!   neither the throttling nor the flood changes a well-behaved
//!   neighbour's results.

use rim_array::ArrayGeometry;
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::stream::{RimStream, StreamEvent};
use rim_csi::{
    synced_from_recording, CsiRecorder, CsiRecording, DeviceConfig, LossModel, RecorderConfig,
};
use rim_dsp::geom::Point2;
use rim_integration_tests::{config, FS, SPACING};
use rim_serve::{Admit, Client, ServeConfig, Server, SessionManager};
use std::sync::Arc;

fn geometry() -> ArrayGeometry {
    ArrayGeometry::linear(3, SPACING)
}

/// A 2 m line at 1 m/s: ~200 samples at the test rate.
fn clean_recording() -> CsiRecording {
    let sim = ChannelSimulator::open_lab(7);
    let geometry = geometry();
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        2.0,
        1.0,
        FS,
        OrientationMode::FollowPath,
    );
    CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(geometry.offsets().to_vec()),
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record(&traj)
}

/// The per-session input: each tenant sees its own loss realisation, so
/// the sessions are genuinely different streams, not copies.
fn session_recording(clean: &CsiRecording, k: u64) -> CsiRecording {
    clean.degrade(LossModel::Iid { p: 0.1 }, 0x5EED + k)
}

/// Ground truth: a standalone serial stream fed the same samples.
fn standalone_events(recording: &CsiRecording) -> Vec<StreamEvent> {
    let mut stream = RimStream::new(geometry(), config(0.3).with_threads(1)).expect("valid config");
    let mut events = Vec::new();
    for sample in synced_from_recording(recording) {
        events.extend(stream.ingest(sample).expect("ingest never errors"));
    }
    events.extend(stream.finish());
    events
}

/// Events compare via `Debug`: f64 formats as its shortest
/// round-trippable representation, so equal strings ⇔ equal bits.
fn fingerprint(events: &[StreamEvent]) -> String {
    format!("{events:#?}")
}

#[test]
fn concurrent_sessions_are_bit_identical_to_standalone_streams() {
    const K: u64 = 8;
    let clean = clean_recording();
    let manager = Arc::new(
        SessionManager::new(
            geometry(),
            config(0.3),
            // A queue much shorter than the capture, so sessions hit
            // real backpressure mid-stream and retry — throttling must
            // not perturb results either.
            ServeConfig::builder()
                .queue_depth(16)
                .build()
                .expect("valid config"),
        )
        .expect("valid config"),
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&manager)).expect("bind");
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for k in 0..K {
        let recording = session_recording(&clean, k);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut events = Vec::new();
            for sample in synced_from_recording(&recording) {
                let (admit, drained) = client.ingest_blocking(k, sample).expect("ingest");
                assert_eq!(admit, Admit::Accepted, "session {k} rejected");
                events.extend(drained);
            }
            events.extend(client.finish(k).expect("finish"));
            (k, events)
        }));
    }
    for h in handles {
        let (k, served) = h.join().expect("session thread");
        let expected = standalone_events(&session_recording(&clean, k));
        assert!(
            !expected.is_empty(),
            "session {k}: reference produced no events"
        );
        assert_eq!(
            fingerprint(&served),
            fingerprint(&expected),
            "session {k} diverged from its standalone stream"
        );
    }
    assert_eq!(manager.sessions_active(), 0, "all sessions finished");
    // Clean shutdown over the wire.
    let mut closer = Client::connect(addr).expect("connect");
    closer.shutdown().expect("shutdown handshake");
    server.shutdown();
    assert!(!manager.accepting());
}

/// The deadline path must be invisible too: with a tight latency budget
/// the admission predictor throttles and the EDF scheduler reorders
/// sessions by deadline, yet every admitted sample still lands in its
/// session in order — per-tenant output stays bit-identical to a
/// standalone stream. (Clients use `ingest_blocking`, so throttled
/// samples are retried rather than lost.)
#[test]
fn deadline_scheduling_is_bit_invisible_per_tenant() {
    const K: u64 = 4;
    let clean = clean_recording();
    let manager = Arc::new(
        SessionManager::new(
            geometry(),
            config(0.3),
            ServeConfig::builder()
                .queue_depth(8)
                .latency_budget_us(5_000)
                .retry_after_ms(1)
                .build()
                .expect("valid config"),
        )
        .expect("valid config"),
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&manager)).expect("bind");
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for k in 0..K {
        let recording = session_recording(&clean, k);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut events = Vec::new();
            for sample in synced_from_recording(&recording) {
                let (admit, drained) = client.ingest_blocking(k, sample).expect("ingest");
                assert_eq!(admit, Admit::Accepted, "session {k} rejected");
                events.extend(drained);
            }
            events.extend(client.finish(k).expect("finish"));
            (k, events)
        }));
    }
    for h in handles {
        let (k, served) = h.join().expect("session thread");
        let expected = standalone_events(&session_recording(&clean, k));
        assert_eq!(
            fingerprint(&served),
            fingerprint(&expected),
            "session {k} diverged under deadline scheduling"
        );
    }
    server.shutdown();
}

#[test]
fn flooded_session_is_throttled_without_perturbing_neighbours() {
    let clean = clean_recording();
    let manager = SessionManager::new(
        geometry(),
        config(0.3),
        ServeConfig::builder()
            .queue_depth(4)
            .build()
            .expect("valid config"),
    )
    .expect("valid config");

    // Flood session 1 without letting the scheduler drain it: the queue
    // caps at 4 and everything past that is throttled, not queued.
    let flood_input = session_recording(&clean, 1);
    let flood_samples = synced_from_recording(&flood_input);
    let mut throttled = 0;
    let mut accepted_samples = Vec::new();
    for sample in &flood_samples {
        match manager.ingest(1, sample.clone()) {
            Admit::Accepted => accepted_samples.push(sample.clone()),
            Admit::Throttled { .. } => throttled += 1,
            Admit::Rejected { reason } => panic!("unexpected reject: {reason:?}"),
        }
    }
    assert_eq!(accepted_samples.len(), 4, "queue bound respected");
    assert_eq!(throttled, flood_samples.len() - 4);

    // A neighbour streams its full capture with the scheduler running
    // normally, sharing the pool with the flooded session's backlog.
    let neighbour_input = session_recording(&clean, 2);
    let mut neighbour_events = Vec::new();
    for sample in synced_from_recording(&neighbour_input) {
        loop {
            match manager.ingest(2, sample.clone()) {
                Admit::Accepted => break,
                Admit::Throttled { .. } => {
                    manager.process();
                }
                Admit::Rejected { reason } => panic!("unexpected reject: {reason:?}"),
            }
        }
        manager.process();
        neighbour_events.extend(manager.drain_events(2));
    }
    neighbour_events.extend(manager.finish(2));
    assert_eq!(
        fingerprint(&neighbour_events),
        fingerprint(&standalone_events(&neighbour_input)),
        "flooded neighbour perturbed session 2"
    );

    // The flooded session still analyses exactly what was admitted.
    let flood_events = manager.finish(1);
    let mut reference =
        RimStream::new(geometry(), config(0.3).with_threads(1)).expect("valid config");
    let mut expected = Vec::new();
    for sample in accepted_samples {
        expected.extend(reference.ingest(sample).expect("ingest"));
    }
    expected.extend(reference.finish());
    assert_eq!(
        fingerprint(&flood_events),
        fingerprint(&expected),
        "flooded session lost or reordered admitted samples"
    );
}
