//! End-to-end integration tests: simulated channel → CSI acquisition →
//! RIM pipeline, asserting the paper's headline behaviours with margins.

use rim_array::ArrayGeometry;
use rim_channel::trajectory::{
    back_and_forth, line, polyline, rotate_in_place, stop_and_go, OrientationMode,
};
use rim_channel::ChannelSimulator;
use rim_core::SegmentKind;
use rim_dsp::geom::Point2;
use rim_dsp::stats::angle_diff;
use rim_integration_tests::{config, run_pipeline, FS, SPACING};

#[test]
fn desktop_distance_within_centimetres() {
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::linear(3, SPACING);
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        1.0,
        1.0,
        FS,
        OrientationMode::FollowPath,
    );
    let est = run_pipeline(&sim, &geo, &traj, config(0.3), 1);
    let err_cm = (est.total_distance() - 1.0).abs() * 100.0;
    assert!(
        err_cm < 8.0,
        "desktop 1 m error {err_cm:.1} cm (paper median 2.3 cm)"
    );
}

#[test]
fn nlos_office_distance_holds() {
    // AP at the far corner (#0): the device is many walls away.
    let sim = ChannelSimulator::office(0, 11);
    let geo = ArrayGeometry::linear(3, SPACING);
    let traj = line(
        Point2::new(8.0, 13.0),
        0.0,
        3.0,
        1.0,
        FS,
        OrientationMode::FollowPath,
    );
    let est = run_pipeline(&sim, &geo, &traj, config(0.3), 2);
    let err_cm = (est.total_distance() - 3.0).abs() * 100.0;
    assert!(
        err_cm < 20.0,
        "NLOS 3 m error {err_cm:.1} cm (paper median 8.6 cm)"
    );
}

#[test]
fn hexagonal_heading_resolves_30_degree_grid() {
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::hexagonal(SPACING);
    for dir_deg in [0.0f64, 60.0, -90.0] {
        let traj = line(
            Point2::new(0.0, 2.0),
            dir_deg.to_radians(),
            0.8,
            0.8,
            FS,
            OrientationMode::Fixed(0.0),
        );
        let est = run_pipeline(&sim, &geo, &traj, config(0.3), 3);
        let h = est.segments[0]
            .heading_device
            .unwrap_or_else(|| panic!("heading for {dir_deg}°"));
        assert!(
            angle_diff(h, dir_deg.to_radians()) < 16f64.to_radians(),
            "heading {dir_deg}°: got {:.1}°",
            h.to_degrees()
        );
    }
}

#[test]
fn back_and_forth_nets_to_zero() {
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::linear(3, SPACING);
    let traj = back_and_forth(
        Point2::new(0.0, 2.0),
        0.0,
        1.0,
        1.0,
        0.6,
        FS,
        OrientationMode::Fixed(0.0),
    );
    let est = run_pipeline(&sim, &geo, &traj, config(0.3), 4);
    // Total path length ≈ 2 m.
    assert!(
        (est.total_distance() - 2.0).abs() < 0.25,
        "distance {:.2}",
        est.total_distance()
    );
    // Trajectory returns near the start.
    let track = est.trajectory(Point2::new(0.0, 2.0), 0.0);
    let closure = track.last().unwrap().distance(Point2::new(0.0, 2.0));
    assert!(closure < 0.25, "loop closure {closure:.2} m");
}

#[test]
fn stop_and_go_segments_detected() {
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::linear(3, SPACING);
    let traj = stop_and_go(Point2::new(-1.0, 2.0), 0.0, 1.0, 1.0, 3, 1.0, FS);
    let est = run_pipeline(&sim, &geo, &traj, config(0.3), 5);
    assert_eq!(
        est.segments.len(),
        3,
        "three separate moves: {:?}",
        est.segments.len()
    );
    let total: f64 = est.segments.iter().map(|s| s.distance_m).sum();
    assert!((total - 3.0).abs() < 0.3, "total {total:.2} m");
}

#[test]
fn square_loop_closes() {
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::hexagonal(SPACING);
    let p0 = Point2::new(0.0, 1.5);
    let wps = [
        p0,
        Point2::new(1.0, 1.5),
        Point2::new(1.0, 2.5),
        Point2::new(0.0, 2.5),
        p0,
    ];
    let traj = polyline(&wps, 1.0, FS, OrientationMode::Fixed(0.0));
    let est = run_pipeline(&sim, &geo, &traj, config(0.3), 6);
    assert!((est.total_distance() - 4.0).abs() < 0.4);
    let track = est.trajectory(p0, 0.0);
    let closure = track.last().unwrap().distance(p0);
    assert!(closure < 0.4, "square closure {closure:.2} m");
}

#[test]
fn rotation_detected_and_signed() {
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::hexagonal(SPACING);
    let mut cfg = config(0.07);
    cfg.movement.lag = (0.15 * FS) as usize;
    cfg.movement.threshold = 0.9;
    cfg.min_segment_s = 0.12;
    for sign in [1.0f64, -1.0] {
        let truth = sign * std::f64::consts::PI;
        let traj = rotate_in_place(Point2::new(0.5, 2.0), 0.0, truth, std::f64::consts::PI, FS);
        let est = run_pipeline(&sim, &geo, &traj, cfg.clone(), 7);
        assert!(
            est.segments.iter().any(|s| s.kind == SegmentKind::Rotation),
            "rotation segment (sign {sign})"
        );
        let err_deg = (est.total_rotation() - truth).abs().to_degrees();
        assert!(
            err_deg < 35.0,
            "rotation error {err_deg:.1}° (paper median 30.1°)"
        );
    }
}

#[test]
fn sideway_movement_heading_changes_without_turning() {
    // The Fig. 20 scenario the inertial sensors cannot see.
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::hexagonal(SPACING);
    let wps = [
        Point2::new(-0.5, 1.5),
        Point2::new(0.8, 1.5),
        Point2::new(0.8, 2.6),
    ];
    let traj = polyline(&wps, 1.0, FS, OrientationMode::Fixed(0.0));
    let est = run_pipeline(&sim, &geo, &traj, config(0.3), 8);
    // Heading must take both 0° and 90° values within the single segment.
    let headings: Vec<f64> = est.heading_device.iter().flatten().copied().collect();
    let has_east = headings.iter().any(|&h| angle_diff(h, 0.0) < 0.1);
    let has_north = headings
        .iter()
        .any(|&h| angle_diff(h, std::f64::consts::FRAC_PI_2) < 0.1);
    assert!(has_east && has_north, "both legs resolved");
    // And the device orientation never changed (no rotation reported).
    assert!(est.total_rotation().abs() < 0.1);
}
