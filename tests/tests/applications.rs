//! Integration tests of the application layer: handwriting, gestures,
//! sensor fusion and map-constrained tracking, end to end.

use rim_array::ArrayGeometry;
use rim_channel::trajectory::{polyline, OrientationMode};
use rim_channel::{office_floorplan, ChannelSimulator};
use rim_dsp::geom::Point2;
use rim_integration_tests::{config, run_pipeline, FS, SPACING};
use rim_sensors::{ImuConfig, SimulatedImu};
use rim_tracking::gesture::{detect_gesture, gesture_trajectory, Gesture, GestureConfig};
use rim_tracking::handwriting::write_letter;
use rim_tracking::metrics::mean_projection_error;
use rim_tracking::{Fuser, MapFusionConfig};

#[test]
fn handwriting_letter_reconstructs() {
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::hexagonal(SPACING);
    let run = write_letter('L', Point2::new(0.5, 2.0), 0.25, 0.3, FS).unwrap();
    let est = run_pipeline(&sim, &geo, &run.trajectory, config(0.12), 1);
    let track = est.trajectory(run.truth[0], 0.0);
    let err = mean_projection_error(&track, &run.truth);
    let moved: f64 = track.windows(2).map(|w| w[0].distance(w[1])).sum();
    assert!(
        moved > 0.5 * run.trajectory.total_distance(),
        "track moved {moved:.2} m"
    );
    assert!(
        err < 0.06,
        "letter L error {:.1} cm (paper 2.4 cm)",
        err * 100.0
    );
}

#[test]
fn gestures_detected_and_classified() {
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::l_shape(SPACING);
    let det = GestureConfig::default();
    let mut hits = 0;
    for (k, gesture) in Gesture::ALL.into_iter().enumerate() {
        let traj = gesture_trajectory(gesture, Point2::new(0.4, 1.8), 0.2, 0.5, FS);
        let est = run_pipeline(&sim, &geo, &traj, config(0.25), 10 + k as u64);
        match detect_gesture(&est, &det) {
            Some(g) if g == gesture => hits += 1,
            Some(g) => panic!("{gesture:?} misclassified as {g:?}"),
            None => {}
        }
    }
    assert!(hits >= 3, "at least 3 of 4 gestures detected, got {hits}");
}

#[test]
fn idle_device_triggers_no_gesture() {
    let sim = ChannelSimulator::open_lab(7);
    let geo = ArrayGeometry::l_shape(SPACING);
    let traj = rim_channel::trajectory::dwell(Point2::new(0.4, 1.8), 0.0, 1.0, FS);
    let est = run_pipeline(&sim, &geo, &traj, config(0.25), 20);
    assert_eq!(detect_gesture(&est, &GestureConfig::default()), None);
}

#[test]
fn fusion_with_particle_filter_tracks_office_route() {
    let sim = ChannelSimulator::office(0, 11);
    let geo = ArrayGeometry::linear(3, SPACING);
    let wps = [
        Point2::new(5.0, 9.5),
        Point2::new(13.0, 9.5),
        Point2::new(13.0, 13.5),
    ];
    let traj = polyline(&wps, 1.0, FS, OrientationMode::FollowPath);
    let est = run_pipeline(&sim, &geo, &traj, config(0.3), 30);
    assert!((est.total_distance() - traj.total_distance()).abs() < 0.5);

    let imu = SimulatedImu::new(ImuConfig::consumer(), 3).sample(&traj);
    let (floorplan, _) = office_floorplan();
    let fused = Fuser::builder()
        .initial_position(wps[0])
        .build()
        .expect("default fusion knobs are valid")
        .fuse_with_map(&est, &imu.gyro_z, &floorplan, &MapFusionConfig::default());
    let truth: Vec<Point2> = traj.poses().iter().map(|p| p.pos).collect();
    let err = mean_projection_error(&fused.filtered, &truth);
    assert!(
        err < 1.0,
        "filtered track error {err:.2} m over a 12 m route"
    );
}
