//! Fault-matrix harness: a table-driven cross product of packet-loss
//! model × front-end quality (SNR / timing offsets) × worker-thread
//! count, every cell running the gap-aware streaming pipeline on its own
//! seeded loss realisation.
//!
//! Each cell asserts the graceful-degradation contract:
//!
//! * the stream never panics and keeps its absolute time axis intact
//!   (`samples_pushed` equals the capture length even across splits);
//! * the distance estimate stays bounded (no runaway integration);
//! * `Degraded` fires exactly when the injected faults exceed the
//!   configured gap tolerance — and never on clean or mild-loss input.
//!
//! This generalises the ad-hoc scenarios in `failure_injection.rs` into
//! one enumerable matrix with per-cell seeds, so a failure names its cell.

use rim_array::ArrayGeometry;
use rim_channel::trajectory::{dwell, line, OrientationMode, Trajectory};
use rim_channel::ChannelSimulator;
use rim_core::stream::{RimStream, StreamAggregate};
use rim_core::ImuSample;
use rim_csi::{
    synced_from_recording, CsiRecorder, CsiRecording, DeviceConfig, HardwareProfile, LossModel,
    RecorderConfig,
};
use rim_dsp::geom::Point2;
use rim_integration_tests::{config, FS, SPACING};
use rim_sensors::{ImuConfig, SimulatedImu};
use rim_tracking::Fuser;

/// Burst model whose stationary loss rate is 30 % (π_bad = 0.2, so
/// 0.8·0.05 + 0.2·1.0 = 0.26 ≈ 0.3 with mean burst length 1/p_exit = 5
/// samples and a ~10 % chance any burst outlives `max_gap` = 10).
const BURST_30: LossModel = LossModel::GilbertElliott {
    p_enter_bad: 0.05,
    p_exit_bad: 0.2,
    loss_good: 0.05,
    loss_bad: 1.0,
};

/// Mild bursts: short bad state, gaps comfortably inside `max_gap`.
const BURST_MILD: LossModel = LossModel::GilbertElliott {
    p_enter_bad: 0.02,
    p_exit_bad: 0.5,
    loss_good: 0.0,
    loss_bad: 0.8,
};

/// Whether a cell's faults are allowed / required to trip the watchdog.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Degraded {
    /// Faults stay inside the gap tolerance: `Degraded` must not fire.
    Never,
    /// Faults exceed the tolerance: at least one `Degraded` (and a
    /// matching `Recovered` by end of stream) must fire.
    Required,
    /// Random heavy loss: whether a specific realisation exceeds
    /// `max_gap` is seed-dependent, so only the bounded-error and
    /// no-panic contract applies (the aggregate requirement lives in
    /// `burst_loss_median_error_within_twice_clean`).
    Allowed,
}

/// A cell's fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Fault {
    /// Seeded stochastic loss.
    Model(LossModel),
    /// A deterministic whole-device blackout of `len` samples starting
    /// at `at` — guaranteed to exceed (or stay inside) `max_gap`
    /// regardless of seed.
    Blackout { at: usize, len: usize },
}

/// One row of the fault matrix.
struct Cell {
    name: String,
    fault: Fault,
    profile: HardwareProfile,
    threads: usize,
    degraded: Degraded,
    /// Absolute distance-error bound, metres (ground truth is 2 m).
    max_error_m: f64,
}

fn front_end(snr_db: f64, sto_slope_std: f64) -> HardwareProfile {
    HardwareProfile {
        snr_db,
        sto_slope_std,
        ..HardwareProfile::default()
    }
}

/// The matrix: loss ∈ {none, iid 10 %, mild bursts, 30 % bursts} crossed
/// with front-end quality and thread count. Bounds widen with fault
/// severity but never become unbounded.
fn matrix() -> Vec<Cell> {
    let mut cells = Vec::new();
    for &threads in &[1usize, 4] {
        for &(fe_name, profile) in &[
            ("clean-fe", HardwareProfile::default()),
            ("low-snr", front_end(12.0, 0.05)),
            ("heavy-sto", front_end(25.0, 0.15)),
        ] {
            for &(loss_name, fault, degraded, max_error_m) in &[
                (
                    "no-loss",
                    Fault::Model(LossModel::None),
                    Degraded::Never,
                    0.30,
                ),
                (
                    "iid-10",
                    Fault::Model(LossModel::Iid { p: 0.1 }),
                    Degraded::Never,
                    0.35,
                ),
                (
                    "burst-mild",
                    Fault::Model(BURST_MILD),
                    Degraded::Never,
                    0.40,
                ),
                ("burst-30", Fault::Model(BURST_30), Degraded::Allowed, 1.40),
                // Inside the gap tolerance (max_gap = 10 at 100 Hz):
                // bridged silently.
                (
                    "hole-8",
                    Fault::Blackout { at: 60, len: 8 },
                    Degraded::Never,
                    0.40,
                ),
                // Beyond it: must split, degrade, and recover mid-stream.
                (
                    "hole-25",
                    Fault::Blackout { at: 60, len: 25 },
                    Degraded::Required,
                    1.00,
                ),
            ] {
                cells.push(Cell {
                    name: format!("{loss_name}/{fe_name}/t{threads}"),
                    fault,
                    profile,
                    threads,
                    degraded,
                    max_error_m,
                });
            }
        }
    }
    cells
}

/// Per-cell seed: stable across runs, unique per cell index.
fn cell_seed(index: usize) -> u64 {
    0x5249_4d00 + index as u64 * 7919
}

fn trajectory() -> Trajectory {
    line(
        Point2::new(0.0, 2.0),
        0.0,
        2.0,
        1.0,
        FS,
        OrientationMode::FollowPath,
    )
}

/// One clean recording per front-end profile; loss is applied post hoc
/// per cell with `CsiRecording::degrade`, so every cell sees the same
/// channel and differs only in its seeded loss realisation.
fn record_clean(geometry: &ArrayGeometry, profile: HardwareProfile) -> CsiRecording {
    let sim = ChannelSimulator::open_lab(7);
    let device = DeviceConfig::single_nic(geometry.offsets().to_vec()).with_profile(profile);
    CsiRecorder::new(
        &sim,
        device,
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record(&trajectory())
}

/// Streams a (possibly lossy) recording through the gap-aware front-end
/// and returns the aggregate plus the total estimated distance.
fn stream_recording(
    geometry: &ArrayGeometry,
    recording: &CsiRecording,
    threads: usize,
) -> (StreamAggregate, f64) {
    let cfg = config(0.3).with_threads(threads);
    let mut stream = RimStream::new(geometry.clone(), cfg).expect("valid config");
    let mut agg = StreamAggregate::default();
    for sample in synced_from_recording(recording) {
        let events = stream.ingest(sample).expect("ingest never errors");
        agg.absorb(&events);
    }
    agg.absorb(&stream.finish());
    // Time-axis integrity: the stream spans exactly the delivered range —
    // from the first fully-present sample (the gap filter's epoch) to the
    // last present one — even when interior splits skipped lost
    // stretches. Samples lost at the edges never arrive, so they cannot
    // be counted.
    let present = |i: usize| recording.antennas.iter().all(|a| a[i].is_some());
    let first_full = (0..recording.n_samples()).find(|&i| present(i));
    let last_any = (0..recording.n_samples())
        .rev()
        .find(|&i| recording.antennas.iter().any(|a| a[i].is_some()));
    let expected_span = match (first_full, last_any) {
        (Some(f), Some(l)) if l >= f => l - f + 1,
        _ => 0,
    };
    assert_eq!(
        stream.samples_pushed(),
        expected_span,
        "absolute time axis must survive splits"
    );
    let distance = agg.total_distance();
    (agg, distance)
}

#[test]
fn fault_matrix_holds_graceful_degradation_contract() {
    let geometry = ArrayGeometry::linear(3, SPACING);
    let truth = trajectory().total_distance();
    // Record once per distinct profile, reuse across loss cells.
    let profiles: Vec<HardwareProfile> = {
        let mut seen: Vec<HardwareProfile> = Vec::new();
        for cell in matrix() {
            if !seen.contains(&cell.profile) {
                seen.push(cell.profile);
            }
        }
        seen
    };
    let recordings: Vec<(HardwareProfile, CsiRecording)> = profiles
        .into_iter()
        .map(|p| (p, record_clean(&geometry, p)))
        .collect();

    let mut failures = Vec::new();
    for (index, cell) in matrix().iter().enumerate() {
        let clean = &recordings
            .iter()
            .find(|(p, _)| *p == cell.profile)
            .expect("profile recorded")
            .1;
        let lossy = match cell.fault {
            Fault::Model(LossModel::None) => clean.clone(),
            Fault::Model(model) => clean.degrade(model, cell_seed(index)),
            Fault::Blackout { at, len } => {
                let mut r = clean.clone();
                for antenna in &mut r.antennas {
                    for slot in antenna.iter_mut().skip(at).take(len) {
                        *slot = None;
                    }
                }
                r
            }
        };
        let (agg, distance) = stream_recording(&geometry, &lossy, cell.threads);
        let error = (distance - truth).abs();
        let mut check = |ok: bool, what: String| {
            if !ok {
                failures.push(format!("[{}] {what}", cell.name));
            }
        };
        check(
            error <= cell.max_error_m,
            format!(
                "distance error {error:.3} m exceeds bound {:.3} m (est {distance:.3}, truth {truth:.3})",
                cell.max_error_m
            ),
        );
        match cell.degraded {
            Degraded::Never => check(
                agg.degraded == 0,
                format!("unexpected Degraded ×{}", agg.degraded),
            ),
            Degraded::Required => {
                check(agg.degraded >= 1, "no Degraded event fired".into());
                check(
                    agg.recovered >= 1,
                    "Degraded never followed by Recovered".into(),
                );
            }
            Degraded::Allowed => {}
        }
    }
    assert!(
        failures.is_empty(),
        "{} fault-matrix cells failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The headline acceptance scenario: 30 % Gilbert–Elliott burst loss on
/// the open-lab line trajectory. Streaming must emit `Degraded` and
/// `Recovered`, never panic, and keep the median distance error within
/// 2× of the clean baseline (floored at 25 cm so a near-perfect clean
/// run does not make the bound vacuous).
#[test]
fn burst_loss_median_error_within_twice_clean() {
    let geometry = ArrayGeometry::linear(3, SPACING);
    let truth = trajectory().total_distance();
    let clean = record_clean(&geometry, HardwareProfile::default());
    let (clean_agg, clean_distance) = stream_recording(&geometry, &clean, 1);
    assert_eq!(clean_agg.degraded, 0, "clean stream must not degrade");
    let clean_error = (clean_distance - truth).abs();

    let mut errors = Vec::new();
    let mut total_degraded = 0;
    let mut total_recovered = 0;
    for seed in 0..5u64 {
        let lossy = clean.degrade(BURST_30, 1000 + seed);
        // The stationary rate is 26 %, but a ~200-sample capture sees
        // sizeable per-realisation variance; just require genuinely
        // heavy loss.
        assert!(
            lossy.loss_rate() > 0.1,
            "burst model realises heavy loss: {}",
            lossy.loss_rate()
        );
        let (agg, distance) = stream_recording(&geometry, &lossy, 1);
        errors.push((distance - truth).abs());
        total_degraded += agg.degraded;
        total_recovered += agg.recovered;
    }
    errors.sort_by(|a, b| a.total_cmp(b));
    let median = errors[errors.len() / 2];
    let bound = (2.0 * clean_error).max(0.25);
    assert!(
        median <= bound,
        "median error {median:.3} m exceeds {bound:.3} m (clean {clean_error:.3} m, all {errors:?})"
    );
    assert!(
        total_degraded >= 1 && total_recovered >= 1,
        "30% burst loss must trip the watchdog: degraded {total_degraded}, recovered {total_recovered}"
    );
}

/// A walked trajectory long enough to carry a 2 s blackout: 1 s at rest,
/// then 6 m of gait (speed oscillating per 0.3 m step so the
/// accelerometer sees the walk).
fn fused_cell_trajectory() -> Trajectory {
    let start = Point2::new(0.0, 2.0);
    let mut traj = dwell(start, 0.0, 1.0, FS);
    let steps = 20usize;
    for s in 0..steps {
        let end = traj.pose(traj.len() - 1);
        let speed = if s % 2 == 0 { 1.25 } else { 0.8 };
        traj.extend(&line(
            end.pos,
            0.0,
            0.3,
            speed,
            FS,
            OrientationMode::FollowPath,
        ));
    }
    traj
}

/// The fusion cell of the matrix: a 2 s whole-device blackout mid-walk.
/// RIM-only permanently loses the distance walked inside the gap; the
/// fused stream coasts through on the IMU. Across five consumer-IMU
/// noise realisations, the fused median total-distance error must beat
/// RIM-only's.
#[test]
fn fused_beats_rim_only_median_error_through_blackout() {
    let geometry = ArrayGeometry::linear(3, SPACING);
    let traj = fused_cell_trajectory();
    let truth = traj.total_distance();
    let sim = ChannelSimulator::open_lab(7);
    let device = DeviceConfig::single_nic(geometry.offsets().to_vec());
    let mut recording = CsiRecorder::new(
        &sim,
        device,
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record(&traj);
    // 2 s blackout squarely inside the walk.
    let blackout = ((3.0 * FS) as usize, (2.0 * FS) as usize);
    for antenna in &mut recording.antennas {
        for slot in antenna.iter_mut().skip(blackout.0).take(blackout.1) {
            *slot = None;
        }
    }
    let samples = synced_from_recording(&recording);

    // RIM-only: one deterministic stream (no IMU in the loop).
    let mut rim_only = RimStream::new(geometry.clone(), config(0.3)).expect("valid config");
    let mut agg = StreamAggregate::default();
    for sample in samples.iter() {
        agg.absorb(&rim_only.ingest(sample.clone()).expect("ingest"));
    }
    agg.absorb(&rim_only.finish());
    let rim_error = (agg.total_distance() - truth).abs();
    assert!(
        agg.degraded >= 1,
        "the blackout must trip the watchdog (degraded {})",
        agg.degraded
    );

    // Fused: five IMU noise realisations over the same gapped CSI.
    let mut fused_errors: Vec<f64> = (0..5u64)
        .map(|seed| {
            let imu = SimulatedImu::new(ImuConfig::consumer(), 40 + seed).sample(&traj);
            let fuser = Fuser::builder()
                .initial_position(Point2::new(0.0, 2.0))
                .zupt_window((0.4 * FS) as usize)
                .rim_heading_noise(f64::INFINITY)
                .accel_noise(0.3)
                .build()
                .expect("valid knobs");
            let mut fused =
                fuser.stream(RimStream::new(geometry.clone(), config(0.3)).expect("valid config"));
            for (i, sample) in samples.iter().enumerate() {
                let batch = vec![ImuSample {
                    t_us: (i as f64 / FS * 1e6) as u64,
                    accel_body: imu.accel_body[i],
                    gyro_z: imu.gyro_z[i],
                    mag_orientation: Some(imu.mag_orientation[i]),
                }];
                fused.ingest(batch).expect("imu ingest");
                fused.ingest(sample.clone()).expect("csi ingest");
            }
            fused.finish();
            (fused.total_distance() - truth).abs()
        })
        .collect();
    fused_errors.sort_by(|a, b| a.total_cmp(b));
    let fused_median = fused_errors[fused_errors.len() / 2];
    assert!(
        fused_median < rim_error,
        "fused median {fused_median:.3} m must beat RIM-only {rim_error:.3} m \
         (truth {truth:.3} m, fused errors {fused_errors:?})"
    );
}
