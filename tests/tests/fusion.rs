//! Cross-crate contracts of the RIM×IMU fusion engine: fused output is
//! bit-identical at any worker-thread count, the R = 0 distance
//! correction makes an ideal-IMU fused track agree with RIM-only to
//! floating-point accuracy, and fusion rides through a CSI blackout
//! that dead-reckoned RIM cannot.

use proptest::prelude::*;
use rim_array::ArrayGeometry;
use rim_channel::trajectory::{dwell, line, OrientationMode, Trajectory};
use rim_channel::ChannelSimulator;
use rim_core::stream::{RimStream, StreamAggregate};
use rim_core::{ImuSample, StreamEvent};
use rim_csi::{synced_from_recording, CsiRecorder, DeviceConfig, RecorderConfig, SyncedSample};
use rim_dsp::geom::{Point2, Vec2};
use rim_integration_tests::{config, FS, SPACING};
use rim_sensors::{ImuConfig, ImuRecording, SimulatedImu};
use rim_tracking::Fuser;

/// Records a trajectory into synced per-sample CSI with the standard
/// 3-antenna linear array.
fn record(traj: &Trajectory, seed: u64) -> (ArrayGeometry, Vec<SyncedSample>) {
    let sim = ChannelSimulator::open_lab(seed);
    let geo = ArrayGeometry::linear(3, SPACING);
    let recording = CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(geo.offsets().to_vec()),
        RecorderConfig {
            sanitize: true,
            seed,
        },
    )
    .record(traj);
    (geo, synced_from_recording(&recording))
}

/// One IMU sample per CSI sample, on the shared clock.
fn imu_sample(imu: &ImuRecording, i: usize) -> ImuSample {
    ImuSample {
        t_us: (i as f64 / FS * 1e6) as u64,
        accel_body: imu.accel_body[i],
        gyro_z: imu.gyro_z[i],
        mag_orientation: Some(imu.mag_orientation[i]),
    }
}

/// A walked leg with per-step speed oscillation, so the accelerometer
/// sees a gait instead of the zero body acceleration of constant
/// velocity (which any accel-based stance detector reads as standstill).
fn gait_leg(from: Point2, heading: f64, length_m: f64) -> Trajectory {
    const STEP_M: f64 = 0.3;
    let steps = (length_m / STEP_M).round() as usize;
    let speed = |s: usize| if s.is_multiple_of(2) { 1.25 } else { 0.8 };
    let mut leg = line(
        from,
        heading,
        STEP_M,
        speed(0),
        FS,
        OrientationMode::FollowPath,
    );
    for s in 1..steps {
        let end = leg.pose(leg.len() - 1);
        leg.extend(&line(
            end.pos,
            heading,
            STEP_M,
            speed(s),
            FS,
            OrientationMode::FollowPath,
        ));
    }
    leg
}

/// A comparison key that is exact on every float bit. `StreamEvent`
/// carries `f64`s, so equality through `==` would conflate distinct
/// payloads under NaN; fingerprinting through `to_bits` cannot.
fn fingerprint(event: &StreamEvent) -> String {
    match event {
        StreamEvent::Fused {
            t_us,
            position,
            heading,
            velocity,
            covariance_trace,
            mode,
        } => format!(
            "Fused t={t_us} p=({:x},{:x}) th={:x} v={:x} tr={:x} {mode:?}",
            position.x.to_bits(),
            position.y.to_bits(),
            heading.to_bits(),
            velocity.to_bits(),
            covariance_trace.to_bits(),
        ),
        other => format!("{other:?}"),
    }
}

/// Runs the fused stream over interleaved IMU + CSI at a given inner
/// worker-pool size and returns every event's fingerprint.
fn fused_fingerprints(
    geo: &ArrayGeometry,
    samples: &[SyncedSample],
    imu: &ImuRecording,
    threads: usize,
) -> Vec<String> {
    let rim = RimStream::new(geo.clone(), config(0.3).with_threads(threads)).expect("valid config");
    let start = Point2::new(0.0, 2.0);
    let fuser = Fuser::builder()
        .initial_position(start)
        .build()
        .expect("default knobs are valid");
    let mut fused = fuser.stream(rim);
    let mut out = Vec::new();
    for (i, sample) in samples.iter().enumerate() {
        let batch = vec![imu_sample(imu, i)];
        out.extend(
            fused
                .ingest(batch)
                .expect("imu ingest")
                .iter()
                .map(fingerprint),
        );
        out.extend(
            fused
                .ingest(sample.clone())
                .expect("csi ingest")
                .iter()
                .map(fingerprint),
        );
    }
    out.extend(fused.finish().iter().map(fingerprint));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The fusion layer inherits the stream's determinism contract: the
    /// ESKF is sequential scalar arithmetic and the inner `RimStream` is
    /// bit-identical at any pool size, so every fused event — position,
    /// heading, velocity, covariance trace, mode — must match to the
    /// last bit between 1 and 4 worker threads.
    #[test]
    fn fused_events_are_bit_identical_across_thread_counts(
        seed in 1u64..30,
        length_dm in 20u32..35,
    ) {
        let traj = gait_leg(Point2::new(0.0, 2.0), 0.0, length_dm as f64 / 10.0);
        let (geo, samples) = record(&traj, seed);
        let imu = SimulatedImu::new(ImuConfig::consumer(), seed).sample(&traj);
        let one = fused_fingerprints(&geo, &samples, &imu, 1);
        let four = fused_fingerprints(&geo, &samples, &imu, 4);
        prop_assert_eq!(one, four);
    }
}

/// With a noiseless IMU the fused track must agree with RIM-only to
/// floating-point accuracy: `rim_distance_noise = 0` turns every RIM
/// distance correction into an exact arc reset, so the fused total
/// distance is exactly the sum RIM measured, regardless of what the
/// strapdown propagation did in between.
#[test]
fn ideal_imu_fused_distance_matches_rim_only_within_1e9() {
    // Start from rest: the trajectory must contain the initial
    // acceleration, or the strapdown (which integrates up from v = 0)
    // carries a permanent velocity offset no noiseless sensor can see.
    // It ends mid-motion, so `finish()` closes the walk with the
    // authoritative full-confidence segment (a trailing dwell would
    // close it with a zero-confidence chunk instead, which the
    // confidence floor rightly drops — leaving the arc at the last
    // provisional rather than RIM's final figure).
    let start = Point2::new(0.0, 2.0);
    let mut traj = dwell(start, 0.0, 1.0, FS);
    traj.extend(&gait_leg(start, 0.0, 4.0));

    let (geo, samples) = record(&traj, 5);
    let imu = SimulatedImu::new(ImuConfig::ideal(), 5).sample(&traj);

    // Trust RIM unconditionally: a zero confidence floor admits every
    // segment figure (including the zero-confidence chunk that closes
    // the motion at end of input) and zero distance noise turns each one
    // into an exact arc reset. The stance corrections are neutralised
    // (an ideal accelerometer reads exactly zero between gait steps,
    // which would otherwise clamp mid-leg velocity) and the velocity
    // process noise is opened up so the innovation gate admits RIM's
    // provisional lag.
    let fuser = Fuser::builder()
        .initial_position(start)
        .rim_distance_noise(0.0)
        .confidence_floor(0.0)
        .zupt_velocity_noise(1e6)
        .accel_noise(1.0)
        .build()
        .expect("valid knobs");
    let mut fused = fuser.stream(RimStream::new(geo.clone(), config(0.3)).expect("valid config"));
    let mut rim_only = RimStream::new(geo, config(0.3)).expect("valid config");
    let mut aggregate = StreamAggregate::default();

    for (i, sample) in samples.iter().enumerate() {
        let batch = vec![imu_sample(&imu, i)];
        fused.ingest(batch).expect("imu ingest");
        fused.ingest(sample.clone()).expect("csi ingest");
        aggregate.absorb(&rim_only.ingest(sample.clone()).expect("csi ingest"));
    }
    fused.finish();
    aggregate.absorb(&rim_only.finish());

    let rim_total: f64 = aggregate.segments.iter().map(|s| s.distance_m).sum();
    assert!(rim_total > 3.0, "the walk must register: {rim_total}");
    assert!(
        (fused.total_distance() - rim_total).abs() < 1e-9,
        "fused {} vs rim-only {}",
        fused.total_distance(),
        rim_total
    );
}

/// A 2 s whole-device CSI blackout across the corner of an L-shaped
/// walk: the fused track coasts through on the IMU and keeps emitting
/// estimates, while event-level dead reckoning from the plain stream
/// loses the blacked-out motion for good. Fused final error must beat
/// RIM-only.
#[test]
fn fused_rides_through_a_blackout_that_rim_only_cannot() {
    let start = Point2::new(0.0, 2.0);
    let mut traj = gait_leg(start, 0.0, 4.0);
    let end = traj.pose(traj.len() - 1);
    traj.extend(&dwell(end.pos, end.orientation, 2.0, FS));
    let end = traj.pose(traj.len() - 1);
    traj.extend(&gait_leg(end.pos, std::f64::consts::FRAC_PI_2, 4.0));
    let end = traj.pose(traj.len() - 1);
    traj.extend(&dwell(end.pos, end.orientation, 1.0, FS));

    let (geo, samples) = record(&traj, 9);
    let imu = SimulatedImu::new(ImuConfig::consumer(), 9).sample(&traj);

    // Blackout covering the corner: the dwell's tail and the start of
    // the second leg, so RIM never sees the turn settle.
    let blackout = |i: usize| (5.0..7.0).contains(&(i as f64 / FS));

    let fuser = Fuser::builder()
        .initial_position(start)
        .zupt_window((0.4 * FS) as usize)
        .rim_heading_noise(f64::INFINITY)
        .accel_noise(0.3)
        .build()
        .expect("valid knobs");
    let mut fused = fuser.stream(RimStream::new(geo.clone(), config(0.3)).expect("valid config"));
    let mut rim_only = RimStream::new(geo, config(0.3)).expect("valid config");

    // Dead-reckoned position from the plain stream's segment events.
    let mut rim_position = start;
    let mut fused_during_blackout = 0usize;
    for (i, sample) in samples.iter().enumerate() {
        let batch = vec![imu_sample(&imu, i)];
        let events = fused.ingest(batch).expect("imu ingest");
        if blackout(i) {
            fused_during_blackout += events
                .iter()
                .filter(|e| matches!(e, StreamEvent::Fused { .. }))
                .count();
            continue;
        }
        fused.ingest(sample.clone()).expect("csi ingest");
        for event in rim_only.ingest(sample.clone()).expect("csi ingest") {
            if let StreamEvent::Segment(seg) = event {
                let dir = seg.heading_device.unwrap_or(0.0);
                rim_position += Vec2::new(dir.cos(), dir.sin()) * seg.distance_m;
            }
        }
    }
    fused.finish();
    for event in rim_only.finish() {
        if let StreamEvent::Segment(seg) = event {
            let dir = seg.heading_device.unwrap_or(0.0);
            rim_position += Vec2::new(dir.cos(), dir.sin()) * seg.distance_m;
        }
    }

    let truth = traj.pose(traj.len() - 1).pos;
    let fused_err = fused.position().distance(truth);
    let rim_err = rim_position.distance(truth);
    assert!(
        fused_during_blackout > 0,
        "fused estimates must keep flowing during the blackout"
    );
    assert!(
        fused.coast_time_us() > 0,
        "the blackout must register as coasting"
    );
    assert!(
        fused_err < rim_err,
        "fused {fused_err:.2} m must beat RIM-only {rim_err:.2} m through the blackout"
    );
}
