//! Trace-hook contracts, end to end:
//!
//! * **Observational purity** — every trace hook (admission, queue
//!   wait, batch schedule, incremental ingest, flush, wire out) must be
//!   invisible in the output bits: the same samples produce bit-identical
//!   events with tracing off, sampled, and exhaustive, on both the bare
//!   stream and the serve path. Run under `RIM_THREADS=1` and `=4` by CI.
//! * **Telemetry round-trip** — a `Metrics` request on a live loopback
//!   server returns a well-formed snapshot whose recent traces carry
//!   `queue_wait` spans.

use rim_array::ArrayGeometry;
use rim_channel::trajectory::{dwell, line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::stream::{RimStream, StreamEvent};
use rim_csi::{synced_from_recording, CsiRecorder, CsiRecording, DeviceConfig, RecorderConfig};
use rim_dsp::geom::Point2;
use rim_integration_tests::{config, FS, SPACING};
use rim_obs::{ActiveTrace, SpanKind, TraceId};
use rim_serve::{Admit, Client, ServeConfig, Server, SessionManager};
use std::sync::Arc;

fn geometry() -> ArrayGeometry {
    ArrayGeometry::linear(3, SPACING)
}

/// A 2 m line with a stationary tail, so segments close mid-stream and
/// the flush hook fires during a traced ingest rather than only at
/// finish.
fn recording() -> CsiRecording {
    let sim = ChannelSimulator::open_lab(7);
    let geometry = geometry();
    let mut traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        2.0,
        1.0,
        FS,
        OrientationMode::FollowPath,
    );
    let end = traj.pose(traj.len() - 1);
    traj.extend(&dwell(end.pos, end.orientation, 0.75, FS));
    CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(geometry.offsets().to_vec()),
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record(&traj)
}

/// Events compare via `Debug`: f64 formats as its shortest
/// round-trippable representation, so equal strings ⇔ equal bits.
fn fingerprint(events: &[StreamEvent]) -> String {
    format!("{events:#?}")
}

/// Streams the capture through a bare `RimStream`, attaching a fresh
/// `ActiveTrace` to every ingest when asked.
fn stream_events(recording: &CsiRecording, traced: bool) -> Vec<StreamEvent> {
    let mut stream = RimStream::new(geometry(), config(0.3)).expect("valid config");
    let mut events = Vec::new();
    for (i, sample) in synced_from_recording(recording).into_iter().enumerate() {
        if traced {
            let mut trace = ActiveTrace::new(TraceId(i as u64), 0, i as u64);
            events.extend(
                stream
                    .session()
                    .trace(&mut trace)
                    .ingest(sample)
                    .expect("ingest"),
            );
            let record = trace.finish();
            assert!(
                record.span_us(SpanKind::IncrementalIngest).is_some(),
                "every traced ingest records an incremental_ingest span"
            );
        } else {
            events.extend(stream.session().ingest(sample).expect("ingest"));
        }
    }
    events.extend(stream.finish());
    events
}

/// Streams the capture through a `SessionManager` at the given trace
/// cadence, returning the session's events and the committed trace
/// count.
fn serve_events(recording: &CsiRecording, trace_every: usize) -> (Vec<StreamEvent>, usize) {
    let manager = SessionManager::new(
        geometry(),
        config(0.3).with_trace_sampling(trace_every),
        ServeConfig::default(),
    )
    .expect("valid config");
    let mut events = Vec::new();
    for sample in synced_from_recording(recording) {
        loop {
            match manager.ingest(7, sample.clone()) {
                Admit::Accepted => break,
                Admit::Throttled { .. } => {
                    manager.process();
                }
                Admit::Rejected { reason } => panic!("unexpected reject: {reason:?}"),
            }
        }
        manager.process();
        events.extend(manager.drain_events(7));
    }
    events.extend(manager.finish(7));
    (events, manager.traces(usize::MAX).len())
}

#[test]
fn stream_trace_hooks_are_bit_invisible() {
    let recording = recording();
    let plain = stream_events(&recording, false);
    let traced = stream_events(&recording, true);
    assert!(!plain.is_empty(), "reference produced no events");
    assert_eq!(
        fingerprint(&traced),
        fingerprint(&plain),
        "tracing perturbed the stream output"
    );
}

#[test]
fn serve_trace_sampling_is_bit_invisible_at_any_cadence() {
    let recording = recording();
    let (off, off_traces) = serve_events(&recording, 0);
    assert!(!off.is_empty(), "reference produced no events");
    assert_eq!(off_traces, 0, "cadence 0 means tracing is off");
    for every in [1usize, 3] {
        let (on, on_traces) = serve_events(&recording, every);
        assert!(on_traces > 0, "cadence {every} committed no traces");
        assert_eq!(
            fingerprint(&on),
            fingerprint(&off),
            "trace cadence {every} perturbed the serve output"
        );
    }
}

#[test]
fn metrics_snapshot_round_trips_over_loopback_with_queue_wait_spans() {
    let manager = Arc::new(
        SessionManager::new(
            geometry(),
            config(0.3).with_trace_sampling(1),
            ServeConfig::default(),
        )
        .expect("valid config"),
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&manager)).expect("bind");
    let addr = server.local_addr();

    let mut driver = Client::connect(addr).expect("connect driver");
    let mut monitor = Client::connect(addr).expect("connect monitor");
    for sample in synced_from_recording(&recording()) {
        let (admit, _) = driver.ingest_blocking(3, sample).expect("ingest");
        assert_eq!(admit, Admit::Accepted);
    }
    // Let the scheduler drain the queue so the sampled traces commit,
    // then snapshot while the session is still resident.
    while manager.queue_depth() > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let text = monitor.metrics().expect("metrics round-trip");
    assert!(
        text.starts_with("# rim-serve metrics v1"),
        "unexpected exposition header:\n{text}"
    );
    for needle in [
        "serve.samples_admitted",
        "serve.batches_scheduled",
        "window.span_s",
    ] {
        assert!(text.contains(needle), "{needle} missing from:\n{text}");
    }
    assert!(
        text.lines()
            .any(|l| l.starts_with("trace ") && l.contains("queue_wait=")),
        "no committed trace with a queue_wait span in:\n{text}"
    );

    driver.finish(3).expect("finish");
    // The snapshot stays well-formed after the session retires.
    let text = monitor.metrics().expect("metrics after finish");
    assert!(text.starts_with("# rim-serve metrics v1"));

    let mut closer = Client::connect(addr).expect("connect");
    closer.shutdown().expect("shutdown handshake");
    server.shutdown();
}
