//! Parallel execution invariants: the pooled pipeline must be
//! bit-identical to the serial one, and `analyze_batch` must equal the
//! same analyses run independently.

use rim_array::ArrayGeometry;
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::{MotionEstimate, Rim};
use rim_csi::recorder::DenseCsi;
use rim_csi::{CsiRecorder, DeviceConfig, RecorderConfig};
use rim_dsp::geom::Point2;
use rim_integration_tests::{config, FS, SPACING};

fn trace(seed: u64) -> (ArrayGeometry, DenseCsi) {
    let sim = ChannelSimulator::open_lab(seed);
    let geo = ArrayGeometry::linear(3, SPACING);
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        1.0,
        1.0,
        FS,
        OrientationMode::FollowPath,
    );
    let dense = CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(geo.offsets().to_vec()),
        RecorderConfig {
            sanitize: true,
            seed,
        },
    )
    .record(&traj)
    .interpolated()
    .expect("interpolable");
    (geo, dense)
}

/// f64 comparison by bit pattern: `speed_mps` legitimately carries NaN,
/// which `==` would reject even when the runs agree exactly.
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

fn assert_estimates_identical(a: &MotionEstimate, b: &MotionEstimate) {
    assert_bits_eq(&a.movement_indicator, &b.movement_indicator, "indicator");
    assert_eq!(a.moving, b.moving, "moving flags");
    assert_bits_eq(&a.speed_mps, &b.speed_mps, "speed");
    assert_eq!(a.heading_device, b.heading_device, "heading");
    assert_bits_eq(&a.angular_rate, &b.angular_rate, "angular rate");
    assert_eq!(a.segments.len(), b.segments.len(), "segment count");
    for (sa, sb) in a.segments.iter().zip(&b.segments) {
        assert_eq!(sa.kind, sb.kind);
        assert_eq!(sa.start, sb.start);
        assert_eq!(sa.end, sb.end);
        assert_eq!(sa.distance_m.to_bits(), sb.distance_m.to_bits());
    }
}

#[test]
fn thread_count_never_changes_a_bit() {
    let (geo, dense) = trace(7);
    let serial = Rim::new(geo.clone(), config(0.3).with_threads(1))
        .expect("valid config")
        .analyze(&dense)
        .expect("analyzable");
    for threads in [2usize, 4, 8] {
        let est = Rim::new(geo.clone(), config(0.3).with_threads(threads))
            .expect("valid config")
            .analyze(&dense)
            .expect("analyzable");
        assert_estimates_identical(&est, &serial);
    }
}

#[test]
fn analyze_batch_equals_independent_analyzes() {
    let (geo, a) = trace(7);
    let (_, b) = trace(21);
    let rim = Rim::new(geo, config(0.3).with_threads(4)).expect("valid config");

    let independent: Vec<MotionEstimate> = [&a, &b, &a]
        .iter()
        .map(|d| rim.analyze(d).expect("analyzable"))
        .collect();
    let batch = rim
        .session()
        .analyze_batch(&[&a, &b, &a])
        .expect("analyzable batch");

    assert_eq!(batch.len(), independent.len());
    for (x, y) in batch.iter().zip(&independent) {
        assert_estimates_identical(x, y);
    }
}

#[test]
fn batch_rejects_any_bad_input_up_front() {
    let (geo, good) = trace(7);
    let bad = DenseCsi {
        antennas: good.antennas[..2].to_vec(),
        ..good.clone()
    };
    let rim = Rim::new(geo, config(0.3)).expect("valid config");
    let err = rim
        .session()
        .analyze_batch(&[&good, &bad])
        .expect_err("mismatched capture must be rejected");
    assert!(
        err.to_string().contains("antenna count mismatch"),
        "unexpected error: {err}"
    );
}
