//! Failure-injection integration tests: the pipeline must degrade
//! gracefully — not collapse — under packet loss, low SNR, heavy timing
//! offsets and cross-NIC loss asymmetry.

use rim_array::ArrayGeometry;
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::{Rim, RimConfig};
use rim_csi::{CsiRecorder, DeviceConfig, HardwareProfile, LossModel, RecorderConfig};
use rim_dsp::geom::Point2;
use rim_integration_tests::{config, FS, SPACING};

fn run_with(
    device: DeviceConfig,
    geometry: &ArrayGeometry,
    cfg: RimConfig,
    seed: u64,
) -> (f64, f64) {
    let sim = ChannelSimulator::open_lab(7);
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        2.0,
        1.0,
        FS,
        OrientationMode::FollowPath,
    );
    let rec = CsiRecorder::new(
        &sim,
        device,
        RecorderConfig {
            sanitize: true,
            seed,
        },
    );
    let recording = rec.record(&traj);
    let dense = recording.interpolated().expect("interpolable");
    let est = Rim::new(geometry.clone(), cfg)
        .unwrap()
        .analyze(&dense)
        .unwrap();
    (est.total_distance(), traj.total_distance())
}

#[test]
fn tolerates_ten_percent_iid_loss() {
    let geo = ArrayGeometry::linear(3, SPACING);
    let device =
        DeviceConfig::single_nic(geo.offsets().to_vec()).with_loss(LossModel::Iid { p: 0.1 });
    let (est, truth) = run_with(device, &geo, config(0.3), 1);
    assert!(
        (est - truth).abs() < 0.2,
        "10% loss: {est:.2} vs {truth:.2}"
    );
}

#[test]
fn tolerates_bursty_loss() {
    let geo = ArrayGeometry::linear(3, SPACING);
    let device =
        DeviceConfig::single_nic(geo.offsets().to_vec()).with_loss(LossModel::GilbertElliott {
            p_enter_bad: 0.02,
            p_exit_bad: 0.3,
            loss_good: 0.01,
            loss_bad: 0.7,
        });
    let (est, truth) = run_with(device, &geo, config(0.3), 2);
    assert!(
        (est - truth).abs() < 0.35,
        "bursty loss: {est:.2} vs {truth:.2}"
    );
}

#[test]
fn tolerates_noisy_front_end() {
    let geo = ArrayGeometry::linear(3, SPACING);
    let device =
        DeviceConfig::single_nic(geo.offsets().to_vec()).with_profile(HardwareProfile::noisy());
    let (est, truth) = run_with(device, &geo, config(0.3), 3);
    assert!(
        (est - truth).abs() < 0.25,
        "noisy NIC: {est:.2} vs {truth:.2}"
    );
}

#[test]
fn degrades_not_explodes_at_low_snr() {
    let geo = ArrayGeometry::linear(3, SPACING);
    let profile = HardwareProfile {
        snr_db: 6.0,
        ..HardwareProfile::noisy()
    };
    let device = DeviceConfig::single_nic(geo.offsets().to_vec()).with_profile(profile);
    let (est, truth) = run_with(device, &geo, config(0.3), 4);
    // At 6 dB the estimate may be rough, but it must stay the right order
    // of magnitude (no runaway integration like an accelerometer's).
    assert!(
        est >= 0.0 && est < 2.0 * truth + 0.5,
        "bounded at 6 dB: {est:.2} vs {truth:.2}"
    );
}

#[test]
fn hexagonal_survives_asymmetric_nic_loss() {
    // NIC 1 clean, NIC 2 lossy: cross-NIC pairs degrade but same-NIC
    // pairs hold the estimate together.
    let geo = ArrayGeometry::hexagonal(SPACING);
    let mut device = DeviceConfig::dual_nic(geo.offsets().to_vec());
    device.nics[1].loss = LossModel::Iid { p: 0.25 };
    let (est, truth) = run_with(device, &geo, config(0.3), 5);
    assert!(
        (est - truth).abs() < 0.3,
        "asymmetric loss: {est:.2} vs {truth:.2}"
    );
}

#[test]
fn interpolation_rejects_dead_antenna() {
    // An antenna that lost every packet cannot be interpolated: the
    // recording reports it instead of fabricating data.
    let geo = ArrayGeometry::linear(3, SPACING);
    let sim = ChannelSimulator::open_lab(7);
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        0.3,
        1.0,
        FS,
        OrientationMode::FollowPath,
    );
    let device = DeviceConfig::single_nic(geo.offsets().to_vec());
    let rec = CsiRecorder::new(&sim, device, RecorderConfig::default());
    let mut recording = rec.record(&traj);
    for slot in &mut recording.antennas[1] {
        *slot = None;
    }
    assert!(recording.interpolated().is_none());
}

#[test]
fn capture_file_round_trip_preserves_analysis() {
    // Storage must be lossless end to end: analyzing a reloaded capture
    // gives bit-identical results.
    let geo = ArrayGeometry::linear(3, SPACING);
    let sim = ChannelSimulator::open_lab(7);
    let traj = line(
        Point2::new(0.0, 2.0),
        0.0,
        1.0,
        1.0,
        FS,
        OrientationMode::FollowPath,
    );
    let device =
        DeviceConfig::single_nic(geo.offsets().to_vec()).with_loss(LossModel::Iid { p: 0.05 });
    let recording = CsiRecorder::new(&sim, device, RecorderConfig::default()).record(&traj);

    let mut buf = Vec::new();
    rim_csi::storage::save_recording(&recording, &mut buf).unwrap();
    let reloaded = rim_csi::storage::load_recording(&buf[..]).unwrap();

    let rim = Rim::new(geo.clone(), config(0.3)).unwrap();
    let a = rim.analyze(&recording.interpolated().unwrap()).unwrap();
    let b = rim.analyze(&reloaded.interpolated().unwrap()).unwrap();
    assert_eq!(a.total_distance(), b.total_distance());
    assert_eq!(a.segments.len(), b.segments.len());
}
