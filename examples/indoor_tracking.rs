//! Indoor tracking across the paper's office floor (paper §6.3.3).
//!
//! Pushes a cart carrying the hexagonal array along a multi-leg route —
//! including a *sideway* leg where the heading changes without the device
//! turning — and reconstructs the trajectory three ways:
//!
//! 1. pure RIM (distance + heading, Fig. 20),
//! 2. RIM distance + gyroscope heading (Fig. 21, "w/o PF"),
//! 3. the same fused track corrected by the map-constrained particle
//!    filter (Fig. 21, "w/ PF").
//!
//! ```sh
//! cargo run --release -p rim-examples --bin indoor_tracking
//! ```

use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::trajectory::{polyline, OrientationMode};
use rim_channel::{office_floorplan, ChannelSimulator};
use rim_core::RimConfig;
use rim_dsp::geom::Point2;
use rim_examples::{ascii_plot, simulate_and_analyze};
use rim_sensors::{ImuConfig, SimulatedImu};
use rim_tracking::metrics::mean_projection_error;
use rim_tracking::{Fuser, MapFusionConfig};

fn main() {
    let fs = 200.0;
    // AP at the far-corner location #0: heavy NLOS for most of the route.
    let sim = ChannelSimulator::office(0, 11);
    let geometry = ArrayGeometry::hexagonal(HALF_WAVELENGTH);

    // A route through the open area with a sideway leg in the middle: the
    // device keeps orientation 0 the whole way.
    let waypoints = [
        Point2::new(6.0, 10.0),
        Point2::new(14.0, 10.0),
        Point2::new(14.0, 14.0), // sideway: heading +90°, orientation unchanged
        Point2::new(24.0, 14.0),
        Point2::new(24.0, 10.0), // sideway back down
        Point2::new(32.0, 10.0),
    ];
    let trajectory = polyline(&waypoints, 1.0, fs, OrientationMode::Fixed(0.0));
    println!(
        "route: {:.1} m over {:.1} s with two sideway legs",
        trajectory.total_distance(),
        trajectory.duration()
    );

    let config = RimConfig::for_sample_rate(fs).with_min_speed(0.3, HALF_WAVELENGTH, fs);
    let estimate = simulate_and_analyze(&sim, &geometry, &trajectory, config, 2);

    // 1. Pure RIM reconstruction.
    let rim_track = estimate.trajectory(waypoints[0], 0.0);
    let truth: Vec<Point2> = trajectory.poses().iter().map(|p| p.pos).collect();
    println!(
        "pure RIM        : distance {:.2} m (truth {:.2}), mean track error {:.2} m",
        estimate.total_distance(),
        trajectory.total_distance(),
        mean_projection_error(&rim_track, &truth)
    );

    // 2/3. Fuse with a consumer-grade gyroscope, with and without the map.
    let imu = SimulatedImu::new(ImuConfig::consumer(), 5).sample(&trajectory);
    let (floorplan, _) = office_floorplan();
    let fused = Fuser::builder()
        .initial_position(waypoints[0])
        .build()
        .expect("default fusion knobs are valid")
        .fuse_with_map(
            &estimate,
            &imu.gyro_z,
            &floorplan,
            &MapFusionConfig::default(),
        );
    println!(
        "RIM + gyro      : mean track error {:.2} m",
        mean_projection_error(&fused.dead_reckoned, &truth)
    );
    println!(
        "RIM + gyro + PF : mean track error {:.2} m",
        mean_projection_error(&fused.filtered, &truth)
    );

    println!("\ntruth (*) vs pure RIM (o):");
    print!("{}", ascii_plot(&[&truth, &rim_track], 72, 18));
}
