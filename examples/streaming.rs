//! Real-time streaming RIM: CSI samples are pushed one at a time into a
//! bounded-memory engine that emits movement events as they resolve —
//! the architecture of the paper's online C++ system (§5).
//!
//! ```sh
//! cargo run --release -p rim-examples --bin streaming
//! ```

use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::trajectory::{dwell, line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::stream::{RimStream, StreamAggregate, StreamEvent};
use rim_core::RimConfig;
use rim_csi::{CsiRecorder, DeviceConfig, RecorderConfig};
use rim_dsp::geom::Point2;

fn main() {
    let fs = 200.0;
    let sim = ChannelSimulator::open_lab(7);
    let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);

    // A stop-and-go session: idle, 2 m push, idle, 1 m pull back, idle.
    let mut traj = dwell(Point2::new(0.0, 2.0), 0.0, 0.8, fs);
    traj.extend(&line(
        Point2::new(0.0, 2.0),
        0.0,
        2.0,
        1.0,
        fs,
        OrientationMode::Fixed(0.0),
    ));
    traj.extend(&dwell(Point2::new(2.0, 2.0), 0.0, 0.8, fs));
    traj.extend(&line(
        Point2::new(2.0, 2.0),
        std::f64::consts::PI,
        1.0,
        1.0,
        fs,
        OrientationMode::Fixed(0.0),
    ));
    traj.extend(&dwell(Point2::new(1.0, 2.0), 0.0, 0.8, fs));

    let dense = CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(geometry.offsets().to_vec()),
        RecorderConfig::default(),
    )
    .record(&traj)
    .interpolated()
    .unwrap();

    let config = RimConfig::for_sample_rate(fs).with_min_speed(0.3, HALF_WAVELENGTH, fs);
    let mut stream = RimStream::new(geometry, config).expect("valid config");
    let mut agg = StreamAggregate::default();

    println!("pushing {} CSI samples one at a time…\n", dense.n_samples());
    for i in 0..dense.n_samples() {
        let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
        let events = stream.ingest(snaps).expect("matching antenna count");
        for e in &events {
            let t = i as f64 / fs;
            match e {
                StreamEvent::MovementStarted { at } => {
                    println!(
                        "[{t:6.2}s] movement started (backdated to {:.2}s)",
                        *at as f64 / fs
                    )
                }
                StreamEvent::Segment(s) => println!(
                    "[{t:6.2}s] segment resolved: {:?}, {:.2} m, heading {}",
                    s.kind,
                    s.distance_m,
                    s.heading_device
                        .map(|h| format!("{:.0}°", h.to_degrees()))
                        .unwrap_or_else(|| "n/a".into())
                ),
                StreamEvent::Provisional {
                    distance_so_far, ..
                } => println!("[{t:6.2}s] provisional: {distance_so_far:.2} m so far"),
                StreamEvent::MovementStopped { .. } => println!("[{t:6.2}s] movement stopped"),
                StreamEvent::Degraded { reason, .. } => {
                    println!("[{t:6.2}s] DEGRADED: {reason:?}")
                }
                StreamEvent::Recovered { .. } => println!("[{t:6.2}s] recovered"),
                other => println!("[{t:6.2}s] {}", other.kind().name()),
            }
        }
        agg.absorb(&events);
    }
    agg.absorb(&stream.finish());

    println!(
        "\ntotal travelled distance : {:.2} m (truth {:.2} m)",
        agg.total_distance(),
        traj.total_distance()
    );
    println!(
        "peak ring occupancy      : {} samples (bounded, trace was {})",
        stream.ring_len().max(1),
        dense.n_samples()
    );
}
