//! Desktop handwriting (paper §6.3.1, Fig. 18): write the letters
//! "R I M" with the antenna array on a desk and reconstruct the strokes
//! from CSI alone.
//!
//! ```sh
//! cargo run --release -p rim-examples --bin handwriting
//! ```

use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::ChannelSimulator;
use rim_core::RimConfig;
use rim_dsp::geom::Point2;
use rim_examples::{ascii_plot, simulate_and_analyze};
use rim_tracking::handwriting::write_letter;
use rim_tracking::metrics::mean_projection_error;

fn main() {
    let fs = 200.0;
    let sim = ChannelSimulator::open_lab(7);
    let geometry = ArrayGeometry::hexagonal(HALF_WAVELENGTH);

    println!("writing \"RIM\" in 20 cm letters at 0.3 m/s\n");
    let mut errors = Vec::new();
    for (k, letter) in ['R', 'I', 'M'].into_iter().enumerate() {
        let origin = Point2::new(0.5 + 0.35 * k as f64, 2.0);
        let run = write_letter(letter, origin, 0.20, 0.3, fs).expect("supported letter");
        // Handwriting speeds are low: widen the lag window accordingly.
        let config = RimConfig::for_sample_rate(fs).with_min_speed(0.12, HALF_WAVELENGTH, fs);
        let estimate = simulate_and_analyze(&sim, &geometry, &run.trajectory, config, 3 + k as u64);
        let track = estimate.trajectory(run.truth[0], 0.0);
        let err = mean_projection_error(&track, &run.truth);
        errors.push(err);
        println!(
            "letter {letter}: {:.2} m of strokes, mean trajectory error {:.1} cm",
            run.trajectory.total_distance(),
            err * 100.0
        );
        println!("{}", ascii_plot(&[&run.truth, &track], 40, 14));
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    println!(
        "mean trajectory error over letters: {:.1} cm (paper: 2.4 cm)",
        mean * 100.0
    );
}
