//! Observability: instrument a pipeline run with `rim-obs` and inspect
//! where the time goes, stage by stage.
//!
//! ```sh
//! cargo run --release -p rim-examples --bin observability
//! ```
//!
//! The pipeline is written against the [`rim_obs::Probe`] trait. The
//! default `NullProbe` costs nothing — the hooks monomorphise away — while
//! a `Recorder` aggregates per-stage wall time, call counts, counters,
//! and value distributions, and snapshots into a `RunReport` that renders
//! as text or round-trips through JSON.

use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::{Rim, RimConfig};
use rim_csi::{CsiRecorder, DeviceConfig, RecorderConfig};
use rim_dsp::geom::Point2;
use rim_obs::{Recorder, RunReport};

fn main() {
    let sim = ChannelSimulator::open_lab(7);
    let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);
    let trajectory = line(
        Point2::new(0.0, 2.0),
        0.0,
        1.0,
        1.0,
        200.0,
        OrientationMode::FollowPath,
    );

    // One recorder observes both acquisition and analysis.
    let recorder = Recorder::new();
    let dense = CsiRecorder::new(
        &sim,
        DeviceConfig::single_nic(geometry.offsets().to_vec()),
        RecorderConfig {
            sanitize: true,
            seed: 7,
        },
    )
    .record_probed(&trajectory, &recorder)
    .interpolated()
    .expect("interpolable recording");

    let config = RimConfig::for_sample_rate(200.0).with_min_speed(0.2, HALF_WAVELENGTH, 200.0);
    let rim = Rim::new(geometry, config).expect("valid config");
    let estimate = rim
        .session()
        .probe(&recorder)
        .analyze(&dense)
        .expect("analyzable recording");
    println!(
        "measured {:.3} m over a 1.000 m push; per-stage profile:\n",
        estimate.total_distance()
    );

    // Human-readable table…
    let report = recorder.report();
    print!("{}", report.render());

    // …and the same data as machine-readable JSON, which round-trips.
    let json = report.to_json();
    let parsed = RunReport::from_json(&json).expect("report JSON round-trips");
    let slowest = parsed
        .stages
        .iter()
        .max_by(|a, b| a.total_ms.total_cmp(&b.total_ms))
        .expect("stages recorded");
    println!(
        "\nslowest stage: {} ({:.2} ms over {} calls)",
        slowest.name, slowest.total_ms, slowest.calls
    );
}
