//! Gesture control with a pointer-like unit (paper §6.3.2, Fig. 19): an
//! L-shaped 3-antenna array performs left/right/up/down flicks that RIM
//! detects and classifies — enough to turn a phone into a presentation
//! pointer.
//!
//! ```sh
//! cargo run --release -p rim-examples --bin gesture_control
//! ```

use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::ChannelSimulator;
use rim_core::RimConfig;
use rim_dsp::geom::Point2;
use rim_examples::simulate_and_analyze;
use rim_tracking::gesture::{detect_gesture, gesture_trajectory, Gesture, GestureConfig};

fn main() {
    let fs = 200.0;
    let sim = ChannelSimulator::open_lab(7);
    // The compact pointer unit: one NIC, three antennas in an "L".
    let geometry = ArrayGeometry::l_shape(HALF_WAVELENGTH);
    let det_cfg = GestureConfig::default();

    println!("performing each gesture 5 times (20 cm flick at 0.5 m/s)\n");
    let mut correct = 0usize;
    let mut missed = 0usize;
    let mut total = 0usize;
    for gesture in Gesture::ALL {
        print!("{gesture:>6?}: ");
        for rep in 0..5 {
            let traj = gesture_trajectory(
                gesture,
                Point2::new(0.4 + 0.05 * rep as f64, 1.8),
                0.20,
                0.5,
                fs,
            );
            let config = RimConfig::for_sample_rate(fs).with_min_speed(0.2, HALF_WAVELENGTH, fs);
            let estimate = simulate_and_analyze(&sim, &geometry, &traj, config, 40 + total as u64);
            total += 1;
            match detect_gesture(&estimate, &det_cfg) {
                Some(g) if g == gesture => {
                    correct += 1;
                    print!("✓ ");
                }
                Some(g) => print!("✗({g:?}) "),
                None => {
                    missed += 1;
                    print!("– ");
                }
            }
        }
        println!();
    }
    println!(
        "\ndetected {}/{} ({:.0}%), {} missed (paper: 96.25% detection, 0 misclassified)",
        correct,
        total,
        100.0 * correct as f64 / total as f64,
        missed
    );
}
