//! Shared helpers for the runnable examples: simulate → record → analyze
//! plumbing and a small ASCII plotter for trajectories.

use rim_array::ArrayGeometry;
use rim_channel::trajectory::Trajectory;
use rim_channel::ChannelSimulator;
use rim_core::{MotionEstimate, Rim, RimConfig};
use rim_csi::{CsiRecorder, DeviceConfig, RecorderConfig};
use rim_dsp::geom::Point2;

/// Builds the device configuration matching an array geometry (one NIC per
/// geometry NIC group).
pub fn device_for(geometry: &ArrayGeometry) -> DeviceConfig {
    if geometry.nic_groups().len() == 2 {
        DeviceConfig::dual_nic(geometry.offsets().to_vec())
    } else {
        DeviceConfig::single_nic(geometry.offsets().to_vec())
    }
}

/// Records a trajectory and runs the full RIM pipeline on it.
pub fn simulate_and_analyze(
    sim: &ChannelSimulator,
    geometry: &ArrayGeometry,
    trajectory: &Trajectory,
    config: RimConfig,
    seed: u64,
) -> MotionEstimate {
    let device = device_for(geometry);
    let recorder = CsiRecorder::new(
        sim,
        device,
        RecorderConfig {
            sanitize: true,
            seed,
        },
    );
    let dense = recorder
        .record(trajectory)
        .interpolated()
        .expect("recording is interpolable");
    let rim = Rim::new(geometry.clone(), config).expect("valid config");
    rim.analyze(&dense).expect("analyzable recording")
}

/// Renders one or two point tracks as an ASCII plot (`*` = first track,
/// `o` = second, `#` = both in the same cell).
pub fn ascii_plot(tracks: &[&[Point2]], width: usize, height: usize) -> String {
    let points: Vec<Point2> = tracks.iter().flat_map(|t| t.iter().copied()).collect();
    if points.is_empty() {
        return String::from("(empty plot)\n");
    }
    let min_x = points.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    let max_x = points.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
    let min_y = points.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
    let max_y = points.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let mut grid = vec![vec![b' '; width]; height];
    for (idx, track) in tracks.iter().enumerate() {
        let mark = if idx == 0 { b'*' } else { b'o' };
        for p in track.iter() {
            let cx = (((p.x - min_x) / span_x) * (width - 1) as f64).round() as usize;
            let cy = (((p.y - min_y) / span_y) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            let cell = &mut grid[row][cx];
            *cell = match (*cell, mark) {
                (b' ', m) => m,
                (c, m) if c == m => m,
                _ => b'#',
            };
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push_str(std::str::from_utf8(&row).unwrap());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_plot_marks_tracks() {
        let a = [Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        let b = [Point2::new(0.0, 1.0)];
        let plot = ascii_plot(&[&a, &b], 10, 5);
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert_eq!(plot.lines().count(), 5);
        assert_eq!(ascii_plot(&[], 5, 5), "(empty plot)\n");
    }
}
