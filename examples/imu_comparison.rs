//! RIM vs dedicated inertial sensors, head to head — the paper's core
//! motivation (§1: MEMS IMUs "suffer from significant errors and drifts").
//!
//! One trajectory, three observers:
//!  * RIM on a 3-antenna WiFi NIC (distance + heading from CSI alone),
//!  * a consumer accelerometer, double-integrated (strapdown),
//!  * a consumer gyroscope + step-length dead reckoning.
//!
//! ```sh
//! cargo run --release -p rim-examples --bin imu_comparison
//! ```

use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::trajectory::{line_ramped, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::RimConfig;
use rim_dsp::geom::Point2;
use rim_examples::simulate_and_analyze;
use rim_sensors::{double_integrate_accel, track_length, ImuConfig, SimulatedImu};

fn main() {
    let fs = 200.0;
    let sim = ChannelSimulator::open_lab(7);
    let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);

    println!("10 m push with realistic acceleration/deceleration\n");
    let traj = line_ramped(
        Point2::new(-4.0, 2.0),
        0.0,
        10.0,
        1.0,
        1.5,
        fs,
        OrientationMode::FollowPath,
    );
    let truth = traj.total_distance();

    // RIM.
    let config = RimConfig::for_sample_rate(fs).with_min_speed(0.25, HALF_WAVELENGTH, fs);
    let estimate = simulate_and_analyze(&sim, &geometry, &traj, config, 1);
    let rim_err = (estimate.total_distance() - truth).abs();

    // Accelerometer dead reckoning (consumer MEMS error model).
    let imu = SimulatedImu::new(ImuConfig::consumer(), 5).sample(&traj);
    let orient: Vec<f64> = traj.poses().iter().map(|p| p.orientation).collect();
    let accel_track = double_integrate_accel(&imu.accel_body, &orient, fs, Point2::new(-4.0, 2.0));
    let accel_dist = track_length(&accel_track);
    let accel_end_err = accel_track
        .last()
        .unwrap()
        .distance(traj.poses().last().unwrap().pos);

    println!("truth               : {truth:.2} m");
    println!(
        "RIM                 : {:.2} m  (error {:.1} cm)",
        estimate.total_distance(),
        rim_err * 100.0
    );
    println!(
        "accelerometer (2x∫) : {accel_dist:.2} m of apparent path, endpoint off by {accel_end_err:.2} m"
    );
    println!();
    println!("movement detection on the same trace:");
    let rim_moving =
        estimate.moving.iter().filter(|&&m| m).count() as f64 / estimate.moving.len() as f64;
    println!(
        "  RIM sees motion during {:.0}% of samples; the accelerometer only",
        rim_moving * 100.0
    );
    println!("  registers the start/stop transients — constant velocity is");
    println!("  invisible to it (paper Fig. 7).");
}
