//! Quickstart: turn a simulated 3-antenna WiFi NIC into an inertial
//! measurement unit and measure a 1 m desk push.
//!
//! ```sh
//! cargo run --release -p rim-examples --bin quickstart
//! ```

use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
use rim_channel::trajectory::{line, OrientationMode};
use rim_channel::ChannelSimulator;
use rim_core::RimConfig;
use rim_dsp::geom::Point2;
use rim_examples::simulate_and_analyze;

fn main() {
    // A rich indoor environment with one AP at an unknown location — RIM
    // never uses the AP position.
    let sim = ChannelSimulator::open_lab(7);

    // The antennas already on a commodity NIC: 3 in a line, λ/2 apart.
    let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);

    // Ground truth: push the device 1 m along its array axis at 1 m/s,
    // CSI sampled at 200 Hz (the AP's broadcast rate).
    let trajectory = line(
        Point2::new(0.0, 2.0),
        0.0,
        1.0,
        1.0,
        200.0,
        OrientationMode::FollowPath,
    );

    // Configure RIM for the sample rate; bound the lag search window by
    // the slowest speed we expect (0.2 m/s).
    let config = RimConfig::for_sample_rate(200.0).with_min_speed(0.2, HALF_WAVELENGTH, 200.0);

    let estimate = simulate_and_analyze(&sim, &geometry, &trajectory, config, 1);

    println!("RIM quickstart — 1 m desk push, 3-antenna linear array");
    println!("------------------------------------------------------");
    println!("true distance      : {:.3} m", trajectory.total_distance());
    println!("estimated distance : {:.3} m", estimate.total_distance());
    println!(
        "distance error     : {:.1} cm",
        (estimate.total_distance() - trajectory.total_distance()).abs() * 100.0
    );
    for seg in &estimate.segments {
        println!(
            "segment [{:.2}s..{:.2}s] {:?}: {:.3} m, heading {}",
            seg.start as f64 / 200.0,
            seg.end as f64 / 200.0,
            seg.kind,
            seg.distance_m,
            seg.heading_device
                .map(|h| format!("{:.1}°", h.to_degrees()))
                .unwrap_or_else(|| "n/a".into()),
        );
    }
    let moving = estimate.moving.iter().filter(|&&m| m).count();
    println!(
        "movement detected  : {:.0}% of samples",
        100.0 * moving as f64 / estimate.moving.len() as f64
    );
}
