//! Offline stand-in for `serde`.
//!
//! This container has no registry access, so the workspace vendors the
//! tiny subset it actually relies on: the `Serialize` / `Deserialize`
//! *marker* traits and derives that accept the usual attribute grammar.
//! Nothing in the workspace serialises through serde at runtime — binary
//! capture files go through `rim_csi::storage` and observability JSON
//! through `rim_obs::json` — so no-op derives are sufficient and keep
//! every `#[derive(Serialize, Deserialize)]` annotation compiling
//! unchanged for the day a real registry is available.

/// Marker for types that declare themselves serialisable.
pub trait Serialize {}

/// Marker for types that declare themselves deserialisable.
pub trait Deserialize<'de> {}

/// Marker for types deserialisable without borrowing from the input.
pub trait DeserializeOwned {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
