//! Offline stand-in for the `rand` crate.
//!
//! The container building this workspace has no crates.io access, so the
//! subset of `rand` the repo actually uses is vendored here: a seedable
//! deterministic generator (`rngs::StdRng`, xoshiro256++ seeded via
//! SplitMix64) and the [`Rng`] methods `gen`, `gen_range` over the
//! float / integer range types that appear in the codebase. The
//! distributions match `rand`'s semantics (uniform, half-open or
//! inclusive per the range type); the exact streams differ, which is fine
//! everywhere the workspace uses randomness (scatterer fields, impairment
//! draws, loss processes — all seed-deterministic but value-agnostic).

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        // Uniform over [lo, hi]; the closed upper end has measure zero, so
        // half-open sampling scaled to the closed span is adequate.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (uniform_u128(rng, span)) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (uniform_u128(rng, span)) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply (span ≥ 1).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    // 64 random bits scaled into the span; bias is ≤ span/2^64, negligible
    // for every range used in this workspace.
    ((rng.next_u64() as u128) * span) >> 64
}

/// Core entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64 (the reference seeding procedure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_range_respects_bounds_and_spreads() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo_half = 0usize;
        for _ in 0..2000 {
            let v = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v));
            if v < 0.5 {
                lo_half += 1;
            }
        }
        // Uniform ⇒ roughly half below the midpoint.
        assert!((800..1200).contains(&lo_half), "{lo_half}");
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        // Inclusive ranges can hit the top value.
        let mut top = false;
        for _ in 0..200 {
            if rng.gen_range(0u64..=3) == 3 {
                top = true;
            }
        }
        assert!(top);
        // Degenerate inclusive range is fine.
        assert_eq!(rng.gen_range(5i32..=5), 5);
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
