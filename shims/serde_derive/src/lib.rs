//! No-op `Serialize` / `Deserialize` derives for the offline `serde`
//! stand-in: they accept the same attribute grammar (`#[serde(...)]`)
//! but emit nothing — the workspace's types only *tag* themselves as
//! serialisable; actual wire formats are hand-rolled (`rim_csi::storage`,
//! `rim_obs::json`).

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
