//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the CSI wire formats use: a growable
//! [`BytesMut`] with big-endian `put_*` writers, an immutable [`Bytes`]
//! produced by [`BytesMut::freeze`], and a [`Buf`] reader implementation
//! over `&[u8]` with big-endian `get_*` accessors. Backed by plain
//! `Vec<u8>` — no refcounted slab sharing, which nothing here needs.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            inner: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

/// Big-endian writers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Big-endian readers over a shrinking cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Copies out exactly `dst.len()` bytes.
    ///
    /// # Panics
    /// Panics if not enough bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0x0102);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_i32(-5);
        buf.put_f64(std::f64::consts::PI);
        buf.put_slice(b"xy");
        // Big-endian layout: u16 0x0102 serialises high byte first.
        assert_eq!(buf[1..3], [0x01, 0x02]);
        let frozen = buf.freeze();
        let mut cur = &frozen[..];
        assert_eq!(cur.remaining(), 1 + 2 + 4 + 8 + 4 + 8 + 2);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16(), 0x0102);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64(), 42);
        assert_eq!(cur.get_i32(), -5);
        assert_eq!(cur.get_f64(), std::f64::consts::PI);
        cur.advance(1);
        assert_eq!(cur, b"y");
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn reading_past_end_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32();
    }
}
