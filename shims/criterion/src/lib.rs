//! Offline stand-in for the `criterion` crate.
//!
//! The container building this workspace has no crates.io access, so this
//! vendors the harness subset the repo's benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`finish`, plus the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a plain wall-clock loop —
//! warm-up, then timed batches reported as mean ns/iter — with none of
//! real criterion's statistics, HTML reports, or regression tracking.

use std::time::{Duration, Instant};

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `f` repeatedly until the sample budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (fills caches, faults pages).
        std::hint::black_box(f());
        let mut iters = 0u64;
        let mut batch = 1u64;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            iters += batch;
            // Grow batches so cheap bodies don't spend the budget on
            // `Instant::now` calls.
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters_done == 0 {
        println!("{name:<40} (no samples)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    println!("{name:<40} {:>12.1} ns/iter  ({} iters)", ns, b.iters_done);
}

/// Top-level benchmark registry/driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget: self.budget,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    /// Final-summary hook (no-op here).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; accepted for API compatibility (the shim's
    /// budget is time-based, so this does not change measurement).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget: self.parent.budget,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Re-export for benches that import it from criterion rather than
/// `std::hint`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runner group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_counts() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
