//! Offline stand-in for the `proptest` crate.
//!
//! The container building this workspace has no crates.io access, so this
//! vendors the property-testing subset the repo's tests rely on: the
//! [`proptest!`] macro, `prop_assert*` / `prop_assume!`, [`Strategy`] with
//! `prop_map` / `prop_filter_map`, range and tuple strategies,
//! `prop::collection::vec`, `prop::option::weighted`, and `any::<T>()`.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases from a
//! generator seeded deterministically per test name, so failures are
//! reproducible run-to-run. Unlike real proptest there is **no shrinking**
//! — a failing case panics with the generated inputs' debug rendering via
//! the assertion message instead of a minimised counterexample.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

pub mod strategy {
    //! Value-generation strategies.

    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Maps through a fallible `f`, retrying until it accepts (the
        /// `reason` names the constraint in the give-up panic).
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            for _ in 0..1000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map rejected 1000 candidates: {}", self.reason);
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod sample {
    //! Uniform selection from an explicit value list
    //! (`prop::sample::select`).

    use super::strategy::Strategy;
    use super::*;

    /// Picks one of the given values uniformly at random.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select(values)
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — whole-domain strategies for primitive types.

    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite-only: the workspace's numeric properties assume
            // finite inputs unless they opt into NaN explicitly.
            rng.gen_range(-1e12f64..1e12)
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// Length ranges accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive bounds `(min, max)`.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::*;

    /// Generates `Some(inner)` with probability `p_some`, else `None`.
    pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy { p_some, inner }
    }

    /// See [`weighted`].
    pub struct OptionStrategy<S> {
        p_some: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(self.p_some) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! Runner configuration and deterministic seeding.

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic per-test seed (FNV-1a over the test name), so a
    /// failing case reproduces on re-run without a persistence file.
    /// Builds the per-test generator (macro plumbing; consumer crates
    /// need not depend on `rand` themselves).
    pub fn new_rng(seed: u64) -> rand::rngs::StdRng {
        <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed)
    }

    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::new_rng(
                    $crate::test_runner::seed_for(stringify!($name)),
                );
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    (move || $body)();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property violated: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// The `prop::` module path used by strategy expressions.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..3.0, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_honoured(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn map_and_filter_map_compose(
            p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b),
            q in (0.0f64..1.0).prop_filter_map("nonzero", |v| (v > 0.1).then_some(v)),
        ) {
            prop_assert!((0.0..=2.0).contains(&p));
            prop_assert!(q > 0.1);
        }

        #[test]
        fn assume_skips(mut v in prop::collection::vec(-1.0f64..1.0, 0..4)) {
            prop_assume!(!v.is_empty());
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(v[0] <= v[v.len() - 1]);
        }

        #[test]
        fn option_weighted_mixes(xs in prop::collection::vec(
            prop::option::weighted(0.5, 0i32..10), 64..=64))
        {
            let somes = xs.iter().filter(|v| v.is_some()).count();
            prop_assert!(somes > 8 && somes < 56, "somes {}", somes);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        use crate::test_runner::seed_for;
        assert_ne!(seed_for("a"), seed_for("b"));
        assert_eq!(seed_for("a"), seed_for("a"));
    }
}
