//! # rim-simd
//!
//! Dependency-free portable SIMD for the TRRS hot loops: fixed-width lane
//! types ([`lanes::f64x4`], [`lanes::f32x8`]) and the cross-TRRS *row*
//! kernels that consume the structure-of-arrays CSI layout built by
//! `rim-core`.
//!
//! ## Why lanes run across *positions*, not within a dot product
//!
//! The f64 reference pipeline must stay bit-identical to the historical
//! scalar code at any thread count and on any machine. A conventional
//! SIMD dot product splits one accumulation across several partial sums
//! and re-associates the final reduction, which changes the rounding of
//! every result. These kernels instead assign each SIMD lane one *whole*
//! TRRS value — the dot products for `v` consecutive time positions run
//! side by side, and every lane performs exactly the per-element sequence
//! of `rim_dsp::complex::inner_product`:
//!
//! ```text
//! re += (a.re·b.re) − ((−a.im)·b.im)      (one rounding per · and per ±,
//! im += (a.re·b.im) + ((−a.im)·b.re)       in this order — never fused)
//! ```
//!
//! followed by the scalar `hypot`/square/clamp tail. Multiplication and
//! addition are lane-wise IEEE-754 operations, so the vectorised lane is
//! bit-identical to the scalar loop; no fused multiply-add is ever
//! emitted (Rust does not contract float expressions).
//!
//! ## Dispatch tiers
//!
//! [`trrs_row_f64`]/[`trrs_row_f32`] dispatch at runtime between
//! [`Tier::Scalar`] (the generic body compiled at the crate's baseline
//! target features) and [`Tier::Avx2`] (the same body monomorphised under
//! `#[target_feature(enable = "avx2")]`). Both tiers execute the same
//! per-lane operation sequence, so *tier choice never changes results* —
//! it only changes speed. The tier can be pinned for benchmarks and tests
//! via [`force_tier`] or the `RIM_SIMD` environment variable
//! (`scalar`/`avx2`/`auto`).
//!
//! This crate is the workspace's second `unsafe` island (after
//! rim-serve's `poll(2)` FFI): the only unsafe code is the pair of calls
//! into the `#[target_feature]` clones, guarded by
//! `is_x86_feature_detected!`.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub mod lanes {
    //! Fixed-width lane types with element-wise IEEE-754 arithmetic.
    //!
    //! The types are plain aligned arrays; every operator applies the
    //! scalar operation per lane, so LLVM vectorises them at whatever
    //! target features the enclosing function was compiled with while the
    //! numeric results stay exactly those of the scalar loop.
    // Lowercase names follow the standard SIMD vocabulary (`f64x4` et al.,
    // as in `std::simd`); scoped inner allow so the lint stays on for the
    // rest of the crate.
    #![allow(non_camel_case_types)]

    macro_rules! lane_type {
        ($(#[$doc:meta])* $name:ident, $elem:ty, $n:expr) => {
            $(#[$doc])*
            #[derive(Debug, Clone, Copy, PartialEq)]
            #[repr(C, align(32))]
            pub struct $name(pub [$elem; $n]);

            impl $name {
                /// Number of lanes.
                pub const LANES: usize = $n;
                /// All lanes zero.
                pub const ZERO: Self = Self([0.0; $n]);

                /// Broadcasts one value to every lane.
                #[inline(always)]
                pub fn splat(v: $elem) -> Self {
                    Self([v; $n])
                }

                /// Loads the first `LANES` elements of `s`.
                ///
                /// # Panics
                /// Panics when `s` is shorter than `LANES`.
                #[inline(always)]
                pub fn from_slice(s: &[$elem]) -> Self {
                    let mut o = [0.0; $n];
                    o.copy_from_slice(&s[..$n]);
                    Self(o)
                }

                /// The lanes as a plain array.
                #[inline(always)]
                pub fn to_array(self) -> [$elem; $n] {
                    self.0
                }
            }

            impl std::ops::Add for $name {
                type Output = Self;
                #[inline(always)]
                fn add(self, rhs: Self) -> Self {
                    let mut o = [0.0; $n];
                    for ((o, a), b) in o.iter_mut().zip(self.0).zip(rhs.0) {
                        *o = a + b;
                    }
                    Self(o)
                }
            }

            impl std::ops::Sub for $name {
                type Output = Self;
                #[inline(always)]
                fn sub(self, rhs: Self) -> Self {
                    let mut o = [0.0; $n];
                    for ((o, a), b) in o.iter_mut().zip(self.0).zip(rhs.0) {
                        *o = a - b;
                    }
                    Self(o)
                }
            }

            impl std::ops::Mul for $name {
                type Output = Self;
                #[inline(always)]
                fn mul(self, rhs: Self) -> Self {
                    let mut o = [0.0; $n];
                    for ((o, a), b) in o.iter_mut().zip(self.0).zip(rhs.0) {
                        *o = a * b;
                    }
                    Self(o)
                }
            }

            impl std::ops::Div for $name {
                type Output = Self;
                #[inline(always)]
                fn div(self, rhs: Self) -> Self {
                    let mut o = [0.0; $n];
                    for ((o, a), b) in o.iter_mut().zip(self.0).zip(rhs.0) {
                        *o = a / b;
                    }
                    Self(o)
                }
            }
        };
    }

    lane_type!(
        /// Four `f64` lanes.
        f64x4,
        f64,
        4
    );
    lane_type!(
        /// Eight `f32` lanes.
        f32x8,
        f32,
        8
    );
}

use lanes::{f32x8, f64x4};

/// The time-fixed operand of a cross-TRRS row: one gathered snapshot as
/// two contiguous real arrays of `n_tx · n_sub` elements each, laid out
/// `[tx0·sub0, tx0·sub1, …, tx1·sub0, …]`.
#[derive(Debug, Clone, Copy)]
pub struct Fixed<'a, T> {
    /// Real parts, `n_tx · n_sub` long.
    pub re: &'a [T],
    /// Imaginary parts, `n_tx · n_sub` long.
    pub im: &'a [T],
}

/// The lane operand: a structure-of-arrays series where row
/// `i = tx · n_sub + k` occupies `re[i · stride ..]`, and lane `v` of the
/// kernel reads time position `off + v` of each row.
#[derive(Debug, Clone, Copy)]
pub struct Lanes<'a, T> {
    /// Real parts, `n_rows · stride` long.
    pub re: &'a [T],
    /// Imaginary parts, `n_rows · stride` long.
    pub im: &'a [T],
    /// Distance between consecutive rows, in elements (the series
    /// capacity).
    pub stride: usize,
    /// Offset of lane 0 within each row.
    pub off: usize,
}

/// A dispatch tier. Both tiers run the identical per-lane operation
/// sequence; only throughput differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The generic lane body at the build's baseline target features.
    Scalar,
    /// The same body monomorphised under AVX2 (x86-64 only; selected at
    /// runtime when the CPU supports it).
    Avx2,
}

// 0 = no override, 1 = Scalar, 2 = Avx2.
static TIER_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static TIER_DETECTED: OnceLock<Tier> = OnceLock::new();

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn detect() -> Tier {
    // "avx2"/"auto"/unset all resolve to AVX2 only when the CPU has it —
    // an environment variable must never cause an illegal instruction.
    if std::env::var("RIM_SIMD").ok().as_deref() == Some("scalar") {
        return Tier::Scalar;
    }
    if avx2_available() {
        Tier::Avx2
    } else {
        Tier::Scalar
    }
}

/// The tier the kernels will dispatch to right now: the [`force_tier`]
/// override if set, else the `RIM_SIMD`-aware runtime detection (cached
/// after the first call).
pub fn active_tier() -> Tier {
    match TIER_OVERRIDE.load(Ordering::Relaxed) {
        1 => Tier::Scalar,
        2 if avx2_available() => Tier::Avx2,
        2 => Tier::Scalar,
        _ => *TIER_DETECTED.get_or_init(detect),
    }
}

/// Pins the dispatch tier process-wide (`None` returns to automatic
/// detection). For benchmarks and equivalence tests; requesting
/// [`Tier::Avx2`] on a machine without AVX2 stays on the scalar tier
/// rather than faulting. Tier choice never affects results.
pub fn force_tier(tier: Option<Tier>) {
    let v = match tier {
        None => 0,
        Some(Tier::Scalar) => 1,
        Some(Tier::Avx2) => 2,
    };
    TIER_OVERRIDE.store(v, Ordering::Relaxed);
}

/// One whole TRRS value, scalar: lane `lane` of what [`trrs_row_f64`]
/// computes. This *is* the reference semantics — the mean over TX chains
/// of `min(|⟨a, b_lane⟩|², 1)` with the inner product accumulated in
/// subcarrier order, exactly as `rim_core::trrs::trrs_norm` does on
/// unit-normalised snapshots.
#[inline(always)]
pub fn trrs_lane_f64(
    a: Fixed<'_, f64>,
    b: Lanes<'_, f64>,
    lane: usize,
    dims: (usize, usize),
) -> f64 {
    let (n_tx, n_sub) = dims;
    let mut sum = 0.0f64;
    for tx in 0..n_tx {
        let mut acc_re = 0.0f64;
        let mut acc_im = 0.0f64;
        for k in 0..n_sub {
            let i = tx * n_sub + k;
            let ar = a.re[i];
            let nai = -a.im[i];
            let p = i * b.stride + b.off + lane;
            let br = b.re[p];
            let bi = b.im[p];
            acc_re += ar * br - nai * bi;
            acc_im += ar * bi + nai * br;
        }
        sum += lane_mag_f64(acc_re, acc_im);
    }
    sum / n_tx as f64
}

/// Scalar f32 lane: the reduced-precision semantics. Differs from the f64
/// lane in two documented ways — arithmetic in `f32`, and the magnitude
/// squared computed directly as `re² + im²` (the operands are unit-norm,
/// so the overflow guard `hypot` buys nothing). The accumulation order is
/// plain subcarrier order, like the f64 lane — the vector bodies hide the
/// accumulator latency by working several lane groups per splat, not by
/// reordering any lane's sum.
#[inline(always)]
pub fn trrs_lane_f32(
    a: Fixed<'_, f32>,
    b: Lanes<'_, f32>,
    lane: usize,
    dims: (usize, usize),
) -> f32 {
    let (n_tx, n_sub) = dims;
    let mut sum = 0.0f32;
    for tx in 0..n_tx {
        let mut acc_re = 0.0f32;
        let mut acc_im = 0.0f32;
        for k in 0..n_sub {
            let i = tx * n_sub + k;
            let ar = a.re[i];
            let nai = -a.im[i];
            let p = i * b.stride + b.off + lane;
            let br = b.re[p];
            let bi = b.im[p];
            acc_re += ar * br - nai * bi;
            acc_im += ar * bi + nai * br;
        }
        sum += lane_mag_f32(acc_re, acc_im);
    }
    sum / n_tx as f32
}

// The vector bodies below process lanes in wide blocks of four vector
// groups. Inside a block the subcarrier loop is outermost-sequential and
// every splat of the fixed operand feeds all four groups, which quarters
// the scalar-load/broadcast traffic per lane, and the four independent
// accumulator pairs keep the adds from serialising on one chain's
// latency. Each lane still accumulates its own inner product in plain
// subcarrier order with a single accumulator pair, so block width is
// invisible in the results: wide block, single group, and the scalar
// lane functions are bit-identical — which also licenses the tail
// strategy of re-running an overlapping block aligned to the row's end
// (overlapped lanes are recomputed to the same bits) instead of falling
// off the vector path. Accumulators are named variables (not indexed
// arrays) so they stay in registers.

/// Per-lane magnitude finish, f64 semantics: `min(|z|², 1)` via `hypot`.
#[inline(always)]
fn lane_mag_f64(re: f64, im: f64) -> f64 {
    let ip = re.hypot(im);
    (ip * ip).min(1.0)
}

/// Per-lane magnitude finish, f32 semantics: `min(re² + im², 1)` — the
/// operands are unit-norm, so `hypot`'s overflow guard buys nothing.
#[inline(always)]
fn lane_mag_f32(re: f32, im: f32) -> f32 {
    (re * re + im * im).min(1.0)
}

macro_rules! row_kernel {
    ($body:ident, $block4:ident, $block1:ident, $vec:ident, $elem:ty, $lane_fn:ident, $mag:ident) => {
        /// One four-group block: fills `out[v0 .. v0 + 4·LANES]`.
        #[inline(always)]
        fn $block4(
            a: Fixed<'_, $elem>,
            b: Lanes<'_, $elem>,
            dims: (usize, usize),
            v0: usize,
            out: &mut [$elem],
        ) {
            let (n_tx, n_sub) = dims;
            let mut sum = [0.0 as $elem; 4 * $vec::LANES];
            for tx in 0..n_tx {
                let (mut re0, mut re1, mut re2, mut re3) =
                    ($vec::ZERO, $vec::ZERO, $vec::ZERO, $vec::ZERO);
                let (mut im0, mut im1, mut im2, mut im3) =
                    ($vec::ZERO, $vec::ZERO, $vec::ZERO, $vec::ZERO);
                for k in 0..n_sub {
                    let i = tx * n_sub + k;
                    let ar = $vec::splat(a.re[i]);
                    let nai = $vec::splat(-a.im[i]);
                    let p = i * b.stride + b.off + v0;
                    let br = $vec::from_slice(&b.re[p..]);
                    let bi = $vec::from_slice(&b.im[p..]);
                    re0 = re0 + (ar * br - nai * bi);
                    im0 = im0 + (ar * bi + nai * br);
                    let br = $vec::from_slice(&b.re[p + $vec::LANES..]);
                    let bi = $vec::from_slice(&b.im[p + $vec::LANES..]);
                    re1 = re1 + (ar * br - nai * bi);
                    im1 = im1 + (ar * bi + nai * br);
                    let br = $vec::from_slice(&b.re[p + 2 * $vec::LANES..]);
                    let bi = $vec::from_slice(&b.im[p + 2 * $vec::LANES..]);
                    re2 = re2 + (ar * br - nai * bi);
                    im2 = im2 + (ar * bi + nai * br);
                    let br = $vec::from_slice(&b.re[p + 3 * $vec::LANES..]);
                    let bi = $vec::from_slice(&b.im[p + 3 * $vec::LANES..]);
                    re3 = re3 + (ar * br - nai * bi);
                    im3 = im3 + (ar * bi + nai * br);
                }
                let groups = [(re0, im0), (re1, im1), (re2, im2), (re3, im3)];
                for (g, (vre, vim)) in groups.into_iter().enumerate() {
                    let re = vre.to_array();
                    let im = vim.to_array();
                    let s0 = g * $vec::LANES;
                    for ((s, r), m) in sum[s0..s0 + $vec::LANES].iter_mut().zip(re).zip(im) {
                        *s += $mag(r, m);
                    }
                }
            }
            for (o, s) in out[v0..v0 + 4 * $vec::LANES].iter_mut().zip(sum) {
                *o = s / n_tx as $elem;
            }
        }

        /// One single-group block: fills `out[v0 .. v0 + LANES]`.
        #[inline(always)]
        fn $block1(
            a: Fixed<'_, $elem>,
            b: Lanes<'_, $elem>,
            dims: (usize, usize),
            v0: usize,
            out: &mut [$elem],
        ) {
            let (n_tx, n_sub) = dims;
            let mut sum = [0.0 as $elem; $vec::LANES];
            for tx in 0..n_tx {
                let mut acc_re = $vec::ZERO;
                let mut acc_im = $vec::ZERO;
                for k in 0..n_sub {
                    let i = tx * n_sub + k;
                    let ar = $vec::splat(a.re[i]);
                    let nai = $vec::splat(-a.im[i]);
                    let p = i * b.stride + b.off + v0;
                    let br = $vec::from_slice(&b.re[p..]);
                    let bi = $vec::from_slice(&b.im[p..]);
                    acc_re = acc_re + (ar * br - nai * bi);
                    acc_im = acc_im + (ar * bi + nai * br);
                }
                let re = acc_re.to_array();
                let im = acc_im.to_array();
                for ((s, r), m) in sum.iter_mut().zip(re).zip(im) {
                    *s += $mag(r, m);
                }
            }
            for (o, s) in out[v0..v0 + $vec::LANES].iter_mut().zip(sum) {
                *o = s / n_tx as $elem;
            }
        }

        #[inline(always)]
        fn $body(
            a: Fixed<'_, $elem>,
            b: Lanes<'_, $elem>,
            dims: (usize, usize),
            out: &mut [$elem],
        ) {
            let n = out.len();
            if n < $vec::LANES {
                for (lane, o) in out.iter_mut().enumerate() {
                    *o = $lane_fn(a, b, lane, dims);
                }
                return;
            }
            let wide = 4 * $vec::LANES;
            let mut v0 = 0usize;
            while v0 + wide <= n {
                $block4(a, b, dims, v0, out);
                v0 += wide;
            }
            let tail = n - v0;
            if tail == 0 {
                // Row length was a multiple of the wide block.
            } else if tail <= $vec::LANES {
                // One end-aligned group; lanes shared with the previous
                // block recompute to the same bits.
                $block1(a, b, dims, n - $vec::LANES, out);
            } else if n >= wide {
                // End-aligned wide block: cheaper than walking the tail
                // in latency-bound single groups.
                $block4(a, b, dims, n - wide, out);
            } else {
                // Short row (LANES < n < 4·LANES): single groups, then an
                // end-aligned group for the remainder.
                while v0 + $vec::LANES <= n {
                    $block1(a, b, dims, v0, out);
                    v0 += $vec::LANES;
                }
                if v0 < n {
                    $block1(a, b, dims, n - $vec::LANES, out);
                }
            }
        }
    };
}

row_kernel!(
    row_f64_body,
    block4_f64,
    block1_f64,
    f64x4,
    f64,
    trrs_lane_f64,
    lane_mag_f64
);
row_kernel!(
    row_f32_body,
    block4_f32,
    block1_f32,
    f32x8,
    f32,
    trrs_lane_f32,
    lane_mag_f32
);

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn row_f64_avx2(
    a: Fixed<'_, f64>,
    b: Lanes<'_, f64>,
    dims: (usize, usize),
    out: &mut [f64],
) {
    row_f64_body(a, b, dims, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn row_f32_avx2(
    a: Fixed<'_, f32>,
    b: Lanes<'_, f32>,
    dims: (usize, usize),
    out: &mut [f32],
) {
    row_f32_body(a, b, dims, out);
}

/// Computes `out.len()` consecutive f64 TRRS values: `out[v]` compares
/// the gathered snapshot `a` against lane position `off + v` of `b`, with
/// `dims = (n_tx, n_sub)` chains × subcarriers. Every lane is
/// bit-identical to [`trrs_lane_f64`] on the same operands, on every
/// dispatch tier.
///
/// # Panics
/// Panics when the operand slices are shorter than the layout implies
/// (`a`: `n_tx·n_sub`; `b`: row `n_tx·n_sub − 1` must reach position
/// `off + out.len() − 1`).
pub fn trrs_row_f64(a: Fixed<'_, f64>, b: Lanes<'_, f64>, dims: (usize, usize), out: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if active_tier() == Tier::Avx2 {
        // SAFETY: Tier::Avx2 is only reported when AVX2 was detected on
        // this CPU (see `active_tier`).
        unsafe { row_f64_avx2(a, b, dims, out) };
        return;
    }
    row_f64_body(a, b, dims, out);
}

/// The f32 counterpart of [`trrs_row_f64`]: every lane is bit-identical
/// to [`trrs_lane_f32`] on the same operands, on every dispatch tier.
///
/// # Panics
/// Same bounds contract as [`trrs_row_f64`].
pub fn trrs_row_f32(a: Fixed<'_, f32>, b: Lanes<'_, f32>, dims: (usize, usize), out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if active_tier() == Tier::Avx2 {
        // SAFETY: Tier::Avx2 is only reported when AVX2 was detected on
        // this CPU (see `active_tier`).
        unsafe { row_f32_avx2(a, b, dims, out) };
        return;
    }
    row_f32_body(a, b, dims, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises the tests that touch the process-wide tier override.
    static TIER_LOCK: Mutex<()> = Mutex::new(());

    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit(seed: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| {
                let x = (mix(seed.wrapping_mul(0x9E3779B9).wrapping_add(k as u64)) >> 11) as f64
                    / (1u64 << 53) as f64;
                x * 2.0 - 1.0
            })
            .collect()
    }

    /// A random SoA block: `rows` rows of `stride` positions.
    fn block(seed: u64, rows: usize, stride: usize) -> (Vec<f64>, Vec<f64>) {
        (
            unit(seed, rows * stride),
            unit(seed ^ 0xABCD, rows * stride),
        )
    }

    fn check_row_matches_lanes(n_tx: usize, n_sub: usize, n_lanes: usize, off: usize) {
        let rows = n_tx * n_sub;
        let stride = off + n_lanes + 3;
        let a_re = unit(1, rows);
        let a_im = unit(2, rows);
        let (b_re, b_im) = block(3, rows, stride);
        let a = Fixed {
            re: &a_re,
            im: &a_im,
        };
        let b = Lanes {
            re: &b_re,
            im: &b_im,
            stride,
            off,
        };
        let dims = (n_tx, n_sub);
        let mut out = vec![0.0f64; n_lanes];
        trrs_row_f64(a, b, dims, &mut out);
        for (lane, &got) in out.iter().enumerate() {
            let want = trrs_lane_f64(a, b, lane, dims);
            assert_eq!(got.to_bits(), want.to_bits(), "lane {lane}");
        }

        let a32_re: Vec<f32> = a_re.iter().map(|&v| v as f32).collect();
        let a32_im: Vec<f32> = a_im.iter().map(|&v| v as f32).collect();
        let b32_re: Vec<f32> = b_re.iter().map(|&v| v as f32).collect();
        let b32_im: Vec<f32> = b_im.iter().map(|&v| v as f32).collect();
        let a32 = Fixed {
            re: &a32_re,
            im: &a32_im,
        };
        let b32 = Lanes {
            re: &b32_re,
            im: &b32_im,
            stride,
            off,
        };
        let mut out32 = vec![0.0f32; n_lanes];
        trrs_row_f32(a32, b32, dims, &mut out32);
        for (lane, &got) in out32.iter().enumerate() {
            let want = trrs_lane_f32(a32, b32, lane, dims);
            assert_eq!(got.to_bits(), want.to_bits(), "f32 lane {lane}");
            let want64 = trrs_lane_f64(a, b, lane, dims);
            assert!(
                (got as f64 - want64).abs() < 1e-4,
                "f32 lane {lane} drifted: {got} vs {want64}"
            );
        }
    }

    #[test]
    fn vector_lanes_match_scalar_lane_bitwise() {
        // Full blocks, tails, single lane, multi-TX, tiny subcarrier
        // counts, nonzero offsets.
        check_row_matches_lanes(1, 56, 101, 0);
        check_row_matches_lanes(2, 17, 9, 5);
        check_row_matches_lanes(3, 1, 4, 1);
        check_row_matches_lanes(1, 2, 1, 0);
        check_row_matches_lanes(2, 30, 23, 7);
    }

    #[test]
    fn tiers_agree_bitwise() {
        let _guard = TIER_LOCK.lock().unwrap();
        let n_tx = 2;
        let n_sub = 24;
        let rows = n_tx * n_sub;
        let stride = 40;
        let a_re = unit(7, rows);
        let a_im = unit(8, rows);
        let (b_re, b_im) = block(9, rows, stride);
        let a = Fixed {
            re: &a_re,
            im: &a_im,
        };
        let b = Lanes {
            re: &b_re,
            im: &b_im,
            stride,
            off: 2,
        };
        let dims = (n_tx, n_sub);
        let mut scalar = vec![0.0f64; 33];
        let mut auto = vec![0.0f64; 33];
        force_tier(Some(Tier::Scalar));
        trrs_row_f64(a, b, dims, &mut scalar);
        force_tier(Some(Tier::Avx2));
        trrs_row_f64(a, b, dims, &mut auto);
        force_tier(None);
        for (s, v) in scalar.iter().zip(&auto) {
            assert_eq!(s.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn forced_tier_is_reported() {
        let _guard = TIER_LOCK.lock().unwrap();
        force_tier(Some(Tier::Scalar));
        assert_eq!(active_tier(), Tier::Scalar);
        force_tier(None);
        let auto = active_tier();
        force_tier(Some(Tier::Avx2));
        // Honoured when the CPU has AVX2, degraded to Scalar otherwise.
        let forced = active_tier();
        force_tier(None);
        assert!(forced == Tier::Avx2 || (forced == Tier::Scalar && auto == Tier::Scalar));
    }

    #[test]
    fn lane_arithmetic_is_elementwise() {
        let a = lanes::f64x4([1.0, 2.0, 3.0, 4.0]);
        let b = lanes::f64x4::splat(2.0);
        assert_eq!((a + b).to_array(), [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a - b).to_array(), [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!((a * b).to_array(), [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a / b).to_array(), [0.5, 1.0, 1.5, 2.0]);
        let c = lanes::f32x8::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 99.0]);
        assert_eq!((c + lanes::f32x8::ZERO).to_array()[7], 8.0);
    }
}
