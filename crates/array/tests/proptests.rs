//! Property-based tests of array-geometry invariants.

use proptest::prelude::*;
use rim_array::ArrayGeometry;
use rim_dsp::geom::Vec2;
use rim_dsp::stats::angle_diff;

/// Random non-degenerate antenna layouts on one NIC.
fn arrays() -> impl Strategy<Value = ArrayGeometry> {
    prop::collection::vec((-0.1f64..0.1, -0.1f64..0.1), 2..6).prop_filter_map(
        "antennas must be pairwise distinct",
        |pts| {
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    let d = ((pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2)).sqrt();
                    if d < 1e-4 {
                        return None;
                    }
                }
            }
            let offsets: Vec<Vec2> = pts.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
            let n = offsets.len();
            Some(ArrayGeometry::custom(offsets, vec![(0..n).collect()]))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pair_count_is_n_choose_2(a in arrays()) {
        let n = a.n_antennas();
        prop_assert_eq!(a.pairs().len(), n * (n - 1) / 2);
    }

    #[test]
    fn pair_directions_are_canonical(a in arrays()) {
        for p in a.pairs() {
            prop_assert!(p.direction > -std::f64::consts::FRAC_PI_2 - 1e-9);
            prop_assert!(p.direction <= std::f64::consts::FRAC_PI_2 + 1e-9);
            prop_assert!(p.separation > 0.0);
            // The stored direction matches the separation vector.
            let v = a.separation(p.pair);
            prop_assert!(angle_diff(v.angle(), p.direction) < 1e-9);
            prop_assert!((v.norm() - p.separation).abs() < 1e-12);
        }
    }

    #[test]
    fn directions_come_in_opposite_pairs(a in arrays()) {
        let dirs = a.directions();
        for &d in &dirs {
            let opposite = rim_dsp::stats::wrap_angle(d + std::f64::consts::PI);
            prop_assert!(
                dirs.iter().any(|&e| angle_diff(e, opposite) < 1e-6),
                "direction {} missing its opposite", d
            );
        }
    }

    #[test]
    fn parallel_groups_partition_pairs(a in arrays()) {
        let groups = a.parallel_groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, a.pairs().len());
        // Within a group: same direction and separation.
        for g in &groups {
            for p in g {
                prop_assert!(angle_diff(p.direction, g[0].direction) < 1e-5);
                prop_assert!((p.separation - g[0].separation).abs() < 1e-6 * g[0].separation);
            }
        }
    }

    #[test]
    fn orientation_resolution_bounds(a in arrays()) {
        let r = a.orientation_resolution();
        prop_assert!(r > 0.0 && r <= std::f64::consts::TAU + 1e-9);
    }
}
