//! Antenna pairs and their geometry.

use serde::{Deserialize, Serialize};

/// An ordered pair of antenna indices. The order carries meaning: the
/// *leading/following* relationship of virtual antenna retracing — when
/// the device moves in the pair's direction, antenna `j` leads and `i`
/// retraces its footprints (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AntennaPair {
    /// Following antenna index.
    pub i: usize,
    /// Leading antenna index.
    pub j: usize,
}

impl AntennaPair {
    /// Creates a pair.
    pub const fn new(i: usize, j: usize) -> Self {
        Self { i, j }
    }

    /// The reversed pair (swapped roles).
    pub const fn flipped(self) -> Self {
        Self {
            i: self.j,
            j: self.i,
        }
    }
}

impl std::fmt::Display for AntennaPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // 1-based like the paper's figures.
        write!(f, "{}v{}", self.i + 1, self.j + 1)
    }
}

/// Geometry of an antenna pair within an array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairGeometry {
    /// The pair (order: from following `i` to leading `j`).
    pub pair: AntennaPair,
    /// Separation distance Δd between the two antennas, metres.
    pub separation: f64,
    /// Device-frame direction of the ray from antenna `i` to antenna `j`,
    /// radians.
    pub direction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_swaps_roles() {
        let p = AntennaPair::new(2, 5);
        let f = p.flipped();
        assert_eq!(f, AntennaPair::new(5, 2));
        assert_eq!(f.flipped(), p);
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(AntennaPair::new(0, 2).to_string(), "1v3");
    }
}
