//! # rim-array
//!
//! Antenna-array geometry for RIM: the arrays the paper builds (3-antenna
//! linear, L-shaped pointer unit, 6-element hexagonal from two NICs) and
//! the geometric queries the algorithms need — pair enumeration, supported
//! heading directions, parallel-isometric pair grouping for matrix
//! averaging (§4.2), and ring geometry for rotation sensing (§4.4).
//!
//! All offsets are in the *device frame*; world positions come from
//! composing with the device pose.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometry;
pub mod pairs;

pub use geometry::ArrayGeometry;
pub use pairs::{AntennaPair, PairGeometry};

/// Carrier wavelength of the 5.8 GHz band the prototype uses, metres.
pub const WAVELENGTH_5_8GHZ: f64 = 299_792_458.0 / 5.8e9;

/// The λ/2 antenna spacing of the prototype (≈2.58 cm, paper §5).
pub const HALF_WAVELENGTH: f64 = WAVELENGTH_5_8GHZ / 2.0;
