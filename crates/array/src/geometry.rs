//! Array geometries and geometric queries.

use crate::pairs::{AntennaPair, PairGeometry};
use rim_dsp::geom::Vec2;
use rim_dsp::stats::{angle_diff, wrap_angle};

/// Tolerance for treating two directions as equal (radians) and two
/// lengths as equal (relative).
const DIR_TOL: f64 = 1e-6;
const LEN_TOL: f64 = 1e-6;

/// An antenna array: device-frame offsets plus the NIC grouping (antennas
/// on one NIC share clocks and lose packets together).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayGeometry {
    offsets: Vec<Vec2>,
    nic_groups: Vec<Vec<usize>>,
}

impl ArrayGeometry {
    /// Builds a custom array.
    ///
    /// # Panics
    /// Panics if the NIC grouping does not partition `0..offsets.len()`.
    pub fn custom(offsets: Vec<Vec2>, nic_groups: Vec<Vec<usize>>) -> Self {
        let mut seen = vec![false; offsets.len()];
        for g in &nic_groups {
            for &a in g {
                assert!(a < offsets.len(), "antenna index out of range");
                assert!(!seen[a], "antenna assigned to two NICs");
                seen[a] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "every antenna must belong to a NIC"
        );
        Self {
            offsets,
            nic_groups,
        }
    }

    /// Uniform linear array of `n` antennas along the device x-axis,
    /// centred on the origin — the COTS 3-antenna NIC when `n = 3`.
    ///
    /// # Panics
    /// Panics for `n < 2` or non-positive spacing.
    pub fn linear(n: usize, spacing: f64) -> Self {
        assert!(n >= 2, "a linear array needs at least two antennas");
        assert!(spacing > 0.0, "spacing must be positive");
        let mid = (n as f64 - 1.0) / 2.0;
        let offsets = (0..n)
            .map(|k| Vec2::new((k as f64 - mid) * spacing, 0.0))
            .collect();
        Self {
            offsets,
            nic_groups: vec![(0..n).collect()],
        }
    }

    /// The paper's 6-element hexagonal array (Fig. 2): two 3-antenna NICs
    /// placed together on a circle of radius `spacing` (adjacent antennas
    /// then sit `spacing` apart, the hexagon side equalling its
    /// circumradius). Antenna numbering matches the paper: antennas 1–3
    /// (indices 0–2) are NIC 1 on the upper arc at 150°/90°/30°, antennas
    /// 4–6 (indices 3–5) are NIC 2 on the lower arc at 210°/270°/330°, so
    /// that (1,4) ∥ (3,6) and (2,4) ∥ (3,5) as §4.2 states.
    ///
    /// ```
    /// use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
    ///
    /// let hex = ArrayGeometry::hexagonal(HALF_WAVELENGTH);
    /// assert_eq!(hex.n_antennas(), 6);
    /// assert_eq!(hex.directions().len(), 12); // 30° resolution (§3.1)
    /// assert_eq!(hex.nic_groups().len(), 2);  // two unsynchronised NICs
    /// ```
    ///
    /// # Panics
    /// Panics for non-positive spacing.
    pub fn hexagonal(spacing: f64) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        let deg = |d: f64| d.to_radians();
        let at = |ang: f64| Vec2::from_angle(ang) * spacing;
        let offsets = vec![
            at(deg(150.0)),
            at(deg(90.0)),
            at(deg(30.0)),
            at(deg(210.0)),
            at(deg(270.0)),
            at(deg(330.0)),
        ];
        Self {
            offsets,
            nic_groups: vec![vec![0, 1, 2], vec![3, 4, 5]],
        }
    }

    /// The L-shaped 3-antenna pointer unit of the gesture application
    /// (§6.3.2): origin, +x and +y.
    ///
    /// # Panics
    /// Panics for non-positive spacing.
    pub fn l_shape(spacing: f64) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        Self {
            offsets: vec![Vec2::ZERO, Vec2::new(spacing, 0.0), Vec2::new(0.0, spacing)],
            nic_groups: vec![vec![0, 1, 2]],
        }
    }

    /// Equilateral-triangle array (paper Fig. 3b).
    ///
    /// # Panics
    /// Panics for non-positive spacing.
    pub fn triangle(spacing: f64) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        let h = spacing * 3f64.sqrt() / 2.0;
        Self {
            offsets: vec![
                Vec2::new(-spacing / 2.0, -h / 3.0),
                Vec2::new(spacing / 2.0, -h / 3.0),
                Vec2::new(0.0, 2.0 * h / 3.0),
            ],
            nic_groups: vec![vec![0, 1, 2]],
        }
    }

    /// Square array (a quadrangle per paper Fig. 3c, with two parallel
    /// side pairs).
    ///
    /// # Panics
    /// Panics for non-positive spacing.
    pub fn square(spacing: f64) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        let h = spacing / 2.0;
        Self {
            offsets: vec![
                Vec2::new(-h, -h),
                Vec2::new(h, -h),
                Vec2::new(h, h),
                Vec2::new(-h, h),
            ],
            nic_groups: vec![vec![0, 1, 2, 3]],
        }
    }

    /// Number of antennas.
    pub fn n_antennas(&self) -> usize {
        self.offsets.len()
    }

    /// Device-frame antenna offsets.
    pub fn offsets(&self) -> &[Vec2] {
        &self.offsets
    }

    /// NIC grouping (each inner vec lists the antenna indices of one NIC).
    pub fn nic_groups(&self) -> &[Vec<usize>] {
        &self.nic_groups
    }

    /// Antenna offsets of one NIC, in that NIC's antenna order.
    pub fn nic_offsets(&self, nic: usize) -> Vec<Vec2> {
        self.nic_groups[nic]
            .iter()
            .map(|&a| self.offsets[a])
            .collect()
    }

    /// All unordered pairs, each reported once in the orientation whose
    /// direction lies in `(-π/2, π/2]` (canonical form).
    pub fn pairs(&self) -> Vec<PairGeometry> {
        let mut out = Vec::new();
        for i in 0..self.offsets.len() {
            for j in i + 1..self.offsets.len() {
                let v = self.offsets[j] - self.offsets[i];
                let sep = v.norm();
                if sep < 1e-12 {
                    continue; // Coincident antennas form no usable pair.
                }
                let ang = v.angle();
                // Canonicalise to (-π/2, π/2].
                let (pair, direction) = if ang > std::f64::consts::FRAC_PI_2 + DIR_TOL
                    || ang <= -std::f64::consts::FRAC_PI_2 + DIR_TOL
                {
                    (
                        AntennaPair::new(j, i),
                        wrap_angle(ang + std::f64::consts::PI),
                    )
                } else {
                    (AntennaPair::new(i, j), ang)
                };
                out.push(PairGeometry {
                    pair,
                    separation: sep,
                    direction,
                });
            }
        }
        out
    }

    /// Separation vector from antenna `i` to antenna `j` (device frame).
    pub fn separation(&self, pair: AntennaPair) -> Vec2 {
        self.offsets[pair.j] - self.offsets[pair.i]
    }

    /// All device-frame heading directions the array can resolve: for
    /// every pair, both the `i→j` and `j→i` directions, deduplicated and
    /// sorted into `(-π, π]`.
    pub fn directions(&self) -> Vec<f64> {
        let mut dirs: Vec<f64> = Vec::new();
        for p in self.pairs() {
            for d in [p.direction, wrap_angle(p.direction + std::f64::consts::PI)] {
                if !dirs.iter().any(|&e| angle_diff(e, d) < DIR_TOL) {
                    dirs.push(d);
                }
            }
        }
        dirs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        dirs
    }

    /// Worst-case angular gap between adjacent resolvable directions —
    /// 30° for the hexagonal array (paper §3.1).
    pub fn orientation_resolution(&self) -> f64 {
        let dirs = self.directions();
        if dirs.len() < 2 {
            return std::f64::consts::TAU;
        }
        let mut max_gap: f64 = 0.0;
        for k in 0..dirs.len() {
            let next = if k + 1 < dirs.len() {
                dirs[k + 1]
            } else {
                dirs[0] + std::f64::consts::TAU
            };
            max_gap = max_gap.max(next - dirs[k]);
        }
        max_gap
    }

    /// Groups pairs that are parallel *and* isometric (same separation
    /// vector up to sign): their alignment matrices share the same delays
    /// and are averaged for robustness (§4.2). Each group's pairs are
    /// oriented consistently (same canonical direction).
    pub fn parallel_groups(&self) -> Vec<Vec<PairGeometry>> {
        let mut groups: Vec<Vec<PairGeometry>> = Vec::new();
        for p in self.pairs() {
            match groups.iter_mut().find(|g| {
                let r = &g[0];
                angle_diff(r.direction, p.direction) < DIR_TOL
                    && (r.separation - p.separation).abs()
                        <= LEN_TOL * r.separation.max(p.separation)
            }) {
                Some(g) => g.push(p),
                None => groups.push(vec![p]),
            }
        }
        groups
    }

    /// For circular arrays: the antennas ordered around the ring, or
    /// `None` when the antennas are not equidistant from their centroid.
    pub fn ring_order(&self) -> Option<Vec<usize>> {
        let n = self.offsets.len();
        if n < 3 {
            return None;
        }
        let centroid = self.offsets.iter().fold(Vec2::ZERO, |a, &b| a + b) * (1.0 / n as f64);
        let radii: Vec<f64> = self
            .offsets
            .iter()
            .map(|&o| (o - centroid).norm())
            .collect();
        let r0 = radii[0];
        if r0 < 1e-12 || radii.iter().any(|&r| (r - r0).abs() > 1e-9 * r0.max(1e-9)) {
            return None;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            (self.offsets[a] - centroid)
                .angle()
                .partial_cmp(&(self.offsets[b] - centroid).angle())
                .unwrap()
        });
        Some(order)
    }

    /// Ring radius (distance of antennas from the centroid), or `None`
    /// for non-circular arrays.
    pub fn ring_radius(&self) -> Option<f64> {
        self.ring_order()?;
        let n = self.offsets.len() as f64;
        let centroid = self.offsets.iter().fold(Vec2::ZERO, |a, &b| a + b) * (1.0 / n);
        Some((self.offsets[0] - centroid).norm())
    }

    /// Adjacent pairs around the ring, oriented in ring order
    /// (counter-clockwise): during an in-place CCW rotation each listed
    /// pair's *following* antenna sweeps onto its *leading* antenna.
    pub fn adjacent_ring_pairs(&self) -> Option<Vec<AntennaPair>> {
        let order = self.ring_order()?;
        let n = order.len();
        Some(
            (0..n)
                .map(|k| AntennaPair::new(order[k], order[(k + 1) % n]))
                .collect(),
        )
    }

    /// Arc length an antenna travels during in-place rotation before it
    /// reaches its ring neighbour's previous position — the *effective*
    /// separation for rotation speed (π/3 · Δd for the hexagon, §4.4).
    pub fn rotation_arc_separation(&self) -> Option<f64> {
        let r = self.ring_radius()?;
        let n = self.offsets.len() as f64;
        Some(std::f64::consts::TAU / n * r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HALF_WAVELENGTH;

    #[test]
    fn linear_array_geometry() {
        let a = ArrayGeometry::linear(3, 0.0258);
        assert_eq!(a.n_antennas(), 3);
        let pairs = a.pairs();
        assert_eq!(pairs.len(), 3);
        // 2 resolvable directions (±x) — paper Fig. 3a.
        assert_eq!(a.directions().len(), 2);
        // Separations: d, d, 2d.
        let mut seps: Vec<f64> = pairs.iter().map(|p| p.separation).collect();
        seps.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((seps[0] - 0.0258).abs() < 1e-12);
        assert!((seps[2] - 0.0516).abs() < 1e-12);
        assert!(a.ring_order().is_none(), "a line is not a ring");
    }

    #[test]
    fn triangle_directions() {
        let a = ArrayGeometry::triangle(0.03);
        // 3 pairs → 6 directions (paper Fig. 3b).
        assert_eq!(a.pairs().len(), 3);
        assert_eq!(a.directions().len(), 6);
    }

    #[test]
    fn square_has_8_directions() {
        let a = ArrayGeometry::square(0.03);
        // 6 pairs → 12 rays, but two side pairs are parallel: 8 unique
        // directions (paper §3.1).
        assert_eq!(a.pairs().len(), 6);
        assert_eq!(a.directions().len(), 8);
        // Two parallel-isometric groups of two (the opposite sides).
        let doubled = a
            .parallel_groups()
            .into_iter()
            .filter(|g| g.len() == 2)
            .count();
        assert_eq!(doubled, 2);
    }

    #[test]
    fn hexagon_basic_shape() {
        let a = ArrayGeometry::hexagonal(HALF_WAVELENGTH);
        assert_eq!(a.n_antennas(), 6);
        assert_eq!(a.pairs().len(), 15);
        // 12 directions, 30° resolution (paper §3.1).
        assert_eq!(a.directions().len(), 12);
        assert!((a.orientation_resolution().to_degrees() - 30.0).abs() < 1e-6);
        // Adjacent antennas are spaced by the circumradius.
        let ring = a.adjacent_ring_pairs().unwrap();
        assert_eq!(ring.len(), 6);
        for p in &ring {
            assert!((a.separation(*p).norm() - HALF_WAVELENGTH).abs() < 1e-9);
        }
        assert!((a.ring_radius().unwrap() - HALF_WAVELENGTH).abs() < 1e-12);
        assert!(
            (a.rotation_arc_separation().unwrap() - std::f64::consts::FRAC_PI_3 * HALF_WAVELENGTH)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn hexagon_paper_parallel_pairs() {
        // §4.2: (1,4) ∥ (3,6) and (2,4) ∥ (3,5), 1-based.
        let a = ArrayGeometry::hexagonal(HALF_WAVELENGTH);
        let v14 = a.separation(AntennaPair::new(0, 3));
        let v36 = a.separation(AntennaPair::new(2, 5));
        assert!(
            (v14 - v36).norm() < 1e-9,
            "(1,4) ∥ (3,6): {v14:?} vs {v36:?}"
        );
        let v24 = a.separation(AntennaPair::new(1, 3));
        let v35 = a.separation(AntennaPair::new(2, 4));
        assert!((v24 - v35).norm() < 1e-9, "(2,4) ∥ (3,5)");
        // And the grouping discovers them.
        let groups = a.parallel_groups();
        let find = |i: usize, j: usize| {
            groups
                .iter()
                .find(|g| {
                    g.iter().any(|p| {
                        (p.pair.i == i && p.pair.j == j) || (p.pair.i == j && p.pair.j == i)
                    })
                })
                .expect("pair in some group")
        };
        let g14 = find(0, 3);
        assert!(g14
            .iter()
            .any(|p| { (p.pair.i == 2 && p.pair.j == 5) || (p.pair.i == 5 && p.pair.j == 2) }));
    }

    #[test]
    fn hexagon_every_direction_has_multiple_pairs() {
        // §3.1: "For each possible direction, there will be at least two
        // pairs of antennas being aligned."
        let a = ArrayGeometry::hexagonal(HALF_WAVELENGTH);
        let multi = a.parallel_groups().iter().filter(|g| g.len() >= 2).count();
        assert!(multi >= 3, "several augmented groups exist, got {multi}");
    }

    #[test]
    fn hexagon_nic_split() {
        let a = ArrayGeometry::hexagonal(HALF_WAVELENGTH);
        assert_eq!(a.nic_groups().len(), 2);
        assert_eq!(a.nic_offsets(0).len(), 3);
        // NIC 1 antennas all on the upper half-plane.
        assert!(a.nic_offsets(0).iter().all(|o| o.y > 0.0));
        assert!(a.nic_offsets(1).iter().all(|o| o.y < 0.0));
    }

    #[test]
    fn l_shape_directions() {
        let a = ArrayGeometry::l_shape(0.02);
        // 3 pairs, none parallel: 6 directions, including ±x and ±y.
        let dirs = a.directions();
        assert_eq!(dirs.len(), 6);
        assert!(dirs.iter().any(|&d| angle_diff(d, 0.0) < 1e-9));
        assert!(dirs
            .iter()
            .any(|&d| angle_diff(d, std::f64::consts::FRAC_PI_2) < 1e-9));
    }

    #[test]
    fn ring_order_is_ccw() {
        let a = ArrayGeometry::hexagonal(1.0);
        let order = a.ring_order().unwrap();
        // Angles must increase around the circle.
        let angles: Vec<f64> = order.iter().map(|&i| a.offsets()[i].angle()).collect();
        for w in angles.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn custom_validation() {
        let offs = vec![Vec2::ZERO, Vec2::new(1.0, 0.0)];
        let ok = ArrayGeometry::custom(offs.clone(), vec![vec![0, 1]]);
        assert_eq!(ok.n_antennas(), 2);
        assert!(std::panic::catch_unwind(|| {
            ArrayGeometry::custom(offs.clone(), vec![vec![0]])
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            ArrayGeometry::custom(offs.clone(), vec![vec![0, 0], vec![1]])
        })
        .is_err());
    }

    #[test]
    fn pair_canonical_direction_range() {
        for a in [
            ArrayGeometry::linear(3, 0.02),
            ArrayGeometry::hexagonal(0.0258),
            ArrayGeometry::square(0.03),
            ArrayGeometry::l_shape(0.02),
        ] {
            for p in a.pairs() {
                assert!(
                    p.direction > -std::f64::consts::FRAC_PI_2 - 1e-9
                        && p.direction <= std::f64::consts::FRAC_PI_2 + 1e-9,
                    "canonical direction in (-π/2, π/2]: {}",
                    p.direction
                );
                assert!(p.separation > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linear_needs_two() {
        let _ = ArrayGeometry::linear(1, 0.02);
    }
}
