//! The readiness-driven I/O event loop.
//!
//! A small fixed set of reactor threads owns every client socket: each
//! runs a `poll(2)` loop ([`crate::sys`]) over its connections, reading
//! nonblockingly into per-connection buffers until a length-prefixed
//! frame completes, dispatching the request against the shared
//! [`SessionManager`], and draining responses through per-connection
//! backpressure queues. No thread is ever parked on a socket: a slow
//! peer costs one pollfd entry and a bounded write queue, not an OS
//! thread.
//!
//! Reactor 0 additionally owns the listener and distributes accepted
//! connections round-robin across the reactor set through small inbox
//! vectors, picked up within one poll timeout.
//!
//! Backpressure: when a connection's queued responses exceed
//! [`ServeConfig::write_buf_cap`], further `Ingest` requests are
//! answered [`RejectReason::Backpressure`] without touching admission,
//! `Metrics` requests get a one-line suppressed snapshot, and the
//! connection stops reading new bytes until the queue drains below half
//! the watermark — the buffer is bounded by construction.
//!
//! [`ServeConfig::write_buf_cap`]: crate::ServeConfig::write_buf_cap
//! [`RejectReason::Backpressure`]: crate::RejectReason::Backpressure

use crate::manager::{Admit, RejectReason, SessionManager};
use crate::sys::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use crate::wire::{Request, Response, MAX_FRAME_LEN};
use bytes::Bytes;
use rim_obs::{reactor_metric, stage, Recorder};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Poll timeout: the upper bound on stop-flag and inbox pickup latency.
const POLL_TIMEOUT_MS: i32 = 5;
/// Per-readiness-event read bound, so one firehose connection cannot
/// starve its reactor siblings.
const READ_BATCH_MAX: usize = 256 * 1024;
/// How long a stopping reactor keeps flushing queued responses (the
/// shutdown `Bye` included) before closing everything.
const SHUTDOWN_FLUSH: Duration = Duration::from_millis(500);
/// Reactor-counter flush cadence onto the manager recorder.
const STATS_FLUSH: Duration = Duration::from_millis(100);

/// The text answered to a `Metrics` request while the connection is
/// over its write-queue watermark (a full snapshot would only deepen
/// the backlog). Still a well-formed exposition.
const SUPPRESSED_SNAPSHOT: &str = "# rim-serve metrics v1\nbackpressure.suppressed 1\n";

/// State shared between the server handle and its reactor threads.
pub(crate) struct ReactorShared {
    pub(crate) manager: Arc<SessionManager>,
    pub(crate) stop: AtomicBool,
    /// Accepted connections awaiting pickup, one inbox per reactor.
    pub(crate) inboxes: Vec<Mutex<Vec<TcpStream>>>,
}

/// Locally batched [`stage::REACTOR`] counters, flushed onto the
/// manager recorder on a coarse cadence so the hot loop never takes the
/// recorder lock per frame.
#[derive(Default)]
struct Stats {
    wakeups: u64,
    ready_events: u64,
    frames_in: u64,
    frames_out: u64,
    write_stalls: u64,
    backpressure_rejected: u64,
    conns_opened: u64,
    conns_closed: u64,
}

impl Stats {
    fn flush(&mut self, recorder: &Recorder) {
        for (name, v) in [
            (reactor_metric::WAKEUPS, self.wakeups),
            (reactor_metric::READY_EVENTS, self.ready_events),
            (reactor_metric::FRAMES_IN, self.frames_in),
            (reactor_metric::FRAMES_OUT, self.frames_out),
            (reactor_metric::WRITE_STALLS, self.write_stalls),
            (
                reactor_metric::BACKPRESSURE_REJECTED,
                self.backpressure_rejected,
            ),
            (reactor_metric::CONNS_OPENED, self.conns_opened),
            (reactor_metric::CONNS_CLOSED, self.conns_closed),
        ] {
            if v > 0 {
                recorder.count(stage::REACTOR, name, v);
            }
        }
        *self = Stats::default();
    }
}

/// One nonblocking connection: an assembly buffer on the read side, a
/// bounded frame queue on the write side.
struct Conn {
    stream: TcpStream,
    /// Unparsed inbound bytes (at most one partial frame after a parse).
    read_buf: Vec<u8>,
    /// Encoded response frames not yet fully written.
    write_queue: VecDeque<Bytes>,
    /// Offset into the queue's front frame.
    write_pos: usize,
    /// Bytes pending across the whole write queue.
    queued_bytes: usize,
    /// High watermark, from [`crate::ServeConfig::write_buf_cap`].
    write_buf_cap: usize,
    /// Reading is suspended until the write queue drains below half the
    /// watermark.
    paused: bool,
    /// Peer sent a clean EOF; close once the write queue is flushed.
    peer_done: bool,
    /// Protocol violation or I/O error; close immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, write_buf_cap: usize) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_queue: VecDeque::new(),
            write_pos: 0,
            queued_bytes: 0,
            write_buf_cap,
            paused: false,
            peer_done: false,
            dead: false,
        }
    }

    fn done(&self) -> bool {
        self.dead || (self.peer_done && self.write_queue.is_empty())
    }

    /// Drains readable bytes (bounded), then parses and dispatches every
    /// complete frame. A clean EOF at a frame boundary flags the
    /// connection for close-after-flush; an EOF mid-frame is a protocol
    /// violation and closes immediately.
    fn read_ready(&mut self, shared: &ReactorShared, stats: &mut Stats) {
        let mut chunk = [0u8; 16 * 1024];
        let mut total = 0;
        let mut eof = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    total += n;
                    if total >= READ_BATCH_MAX {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.parse_frames(shared, stats);
        if eof && !self.dead {
            if self.read_buf.is_empty() {
                self.peer_done = true;
            } else {
                // Half-close mid-frame: the remainder can never arrive.
                self.dead = true;
            }
        }
    }

    /// Parses every complete frame in the assembly buffer; a partial
    /// tail survives until the next readiness event completes it.
    fn parse_frames(&mut self, shared: &ReactorShared, stats: &mut Stats) {
        let mut pos = 0usize;
        loop {
            let buf = &self.read_buf[pos..];
            if buf.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
            if len > MAX_FRAME_LEN {
                self.dead = true;
                break;
            }
            let len = len as usize;
            if buf.len() < 4 + len {
                break;
            }
            let body = self.read_buf[pos + 4..pos + 4 + len].to_vec();
            pos += 4 + len;
            stats.frames_in += 1;
            self.handle_request(&body, shared, stats);
            if self.dead {
                break;
            }
        }
        if pos > 0 {
            self.read_buf.drain(..pos);
        }
    }

    /// Decodes and answers one request. Over the write-queue watermark,
    /// ingests are rejected with [`RejectReason::Backpressure`] and
    /// metrics snapshots are suppressed — cheap bounded answers instead
    /// of unbounded buffering for a peer that is not reading.
    fn handle_request(&mut self, body: &[u8], shared: &ReactorShared, stats: &mut Stats) {
        let Ok(request) = Request::decode(body) else {
            // A garbled frame leaves the stream unframed; drop the
            // connection rather than guess at a resync point.
            self.dead = true;
            return;
        };
        let manager = &shared.manager;
        let over_cap = self.queued_bytes > self.write_buf_cap;
        let (response, carries_events, stop_after) = match request {
            Request::Ingest { session_id, sample } => {
                if over_cap {
                    stats.backpressure_rejected += 1;
                    (
                        Response::Admit {
                            admit: Admit::Rejected {
                                reason: RejectReason::Backpressure,
                            },
                            events: Vec::new(),
                        },
                        false,
                        false,
                    )
                } else {
                    let admit = manager.ingest(session_id, sample);
                    let events = manager.drain_events(session_id);
                    let has_events = !events.is_empty();
                    (Response::Admit { admit, events }, has_events, false)
                }
            }
            Request::IngestImu {
                session_id,
                samples,
            } => {
                if over_cap {
                    stats.backpressure_rejected += 1;
                    (
                        Response::Admit {
                            admit: Admit::Rejected {
                                reason: RejectReason::Backpressure,
                            },
                            events: Vec::new(),
                        },
                        false,
                        false,
                    )
                } else {
                    let admit = manager.ingest_imu(session_id, samples);
                    let events = manager.drain_events(session_id);
                    let has_events = !events.is_empty();
                    (Response::Admit { admit, events }, has_events, false)
                }
            }
            Request::Finish { session_id } => {
                let events = manager.finish(session_id);
                let has_events = !events.is_empty();
                (Response::Finished { events }, has_events, false)
            }
            Request::Metrics => {
                let text = if over_cap {
                    stats.backpressure_rejected += 1;
                    SUPPRESSED_SNAPSHOT.to_string()
                } else {
                    manager.metrics_text()
                };
                (Response::MetricsSnapshot { text }, false, false)
            }
            Request::Shutdown => {
                manager.shutdown();
                (Response::Bye, false, true)
            }
        };
        // Event-bearing responses carry estimates back to the client:
        // time their encode+first-write so the tracer can close the
        // `event_wire_out` span of the trace that produced them.
        let wire_start = Instant::now();
        let frame = response.encode();
        self.send(frame, stats);
        if carries_events {
            manager.note_wire_out(wire_start.elapsed().as_micros() as u64);
        }
        if stop_after {
            shared.stop.store(true, Ordering::Release);
        }
        if self.queued_bytes > self.write_buf_cap {
            self.paused = true;
        }
    }

    /// Writes a frame immediately when nothing is queued ahead of it,
    /// queueing whatever the socket would not take.
    fn send(&mut self, frame: Bytes, stats: &mut Stats) {
        let mut written = 0usize;
        if self.write_queue.is_empty() {
            loop {
                match self.stream.write(&frame[written..]) {
                    Ok(0) => {
                        self.dead = true;
                        return;
                    }
                    Ok(n) => {
                        written += n;
                        if written == frame.len() {
                            stats.frames_out += 1;
                            return;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.dead = true;
                        return;
                    }
                }
            }
            stats.write_stalls += 1;
            self.write_pos = written;
        }
        self.queued_bytes += frame.len() - written;
        self.write_queue.push_back(frame);
    }

    /// Drains the write queue while the socket accepts bytes; lifts the
    /// read pause once the backlog halves.
    fn write_ready(&mut self, stats: &mut Stats) {
        while let Some(front) = self.write_queue.front() {
            match self.stream.write(&front[self.write_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.write_pos += n;
                    self.queued_bytes -= n;
                    if self.write_pos == front.len() {
                        self.write_queue.pop_front();
                        self.write_pos = 0;
                        stats.frames_out += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.paused && self.queued_bytes <= self.write_buf_cap / 2 {
            self.paused = false;
        }
    }
}

/// One reactor thread. Reactor 0 receives the listener and accepts;
/// every reactor serves the connections it owns until the stop flag.
pub(crate) fn reactor_loop(shared: &Arc<ReactorShared>, idx: usize, listener: Option<TcpListener>) {
    use std::os::fd::AsRawFd;
    let write_buf_cap = shared.manager.serve_config().write_buf_cap();
    let recorder = shared.manager.recorder();
    let mut conns: Vec<Conn> = Vec::new();
    let mut stats = Stats::default();
    let mut next_reactor = 0usize;
    let mut last_flush = Instant::now();

    while !shared.stop.load(Ordering::Acquire) {
        for stream in lock(&shared.inboxes[idx]).drain(..) {
            conns.push(Conn::new(stream, write_buf_cap));
        }
        let mut fds = Vec::with_capacity(conns.len() + 1);
        if let Some(l) = &listener {
            fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
        }
        let base = fds.len();
        for c in &conns {
            let mut events = 0i16;
            if !c.paused && !c.peer_done {
                events |= POLLIN;
            }
            if !c.write_queue.is_empty() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(c.stream.as_raw_fd(), events));
        }
        let ready = poll_fds(&mut fds, POLL_TIMEOUT_MS).unwrap_or(0);
        if ready > 0 {
            stats.wakeups += 1;
            stats.ready_events += ready as u64;
            if let Some(l) = &listener {
                if fds[0].revents & POLLIN != 0 {
                    accept_ready(l, shared, idx, &mut next_reactor, &mut conns, &mut stats);
                    // The accept may have grown `conns` past the pollfd
                    // set; new entries are polled next iteration.
                }
            }
            for (i, fd) in fds[base..].iter().enumerate() {
                let Some(c) = conns.get_mut(i) else { break };
                let re = fd.revents;
                if re == 0 {
                    continue;
                }
                if re & (POLLERR | POLLNVAL) != 0 {
                    c.dead = true;
                    continue;
                }
                if re & POLLOUT != 0 {
                    c.write_ready(&mut stats);
                }
                if re & (POLLIN | POLLHUP) != 0 && !c.paused && !c.peer_done && !c.dead {
                    c.read_ready(shared, &mut stats);
                }
            }
        }
        conns.retain(|c| {
            if c.done() {
                stats.conns_closed += 1;
                false
            } else {
                true
            }
        });
        if last_flush.elapsed() >= STATS_FLUSH {
            stats.flush(recorder);
            last_flush = Instant::now();
        }
    }

    // Stopping: flush what the peers are still reading (the shutdown
    // `Bye` in particular), bounded, then close everything.
    let deadline = Instant::now() + SHUTDOWN_FLUSH;
    loop {
        conns.retain(|c| {
            if c.dead || c.write_queue.is_empty() {
                stats.conns_closed += 1;
                false
            } else {
                true
            }
        });
        if conns.is_empty() || Instant::now() >= deadline {
            break;
        }
        let mut fds: Vec<PollFd> = conns
            .iter()
            .map(|c| {
                use std::os::fd::AsRawFd;
                PollFd::new(c.stream.as_raw_fd(), POLLOUT)
            })
            .collect();
        if poll_fds(&mut fds, 10).unwrap_or(0) > 0 {
            for (i, fd) in fds.iter().enumerate() {
                if fd.revents & POLLOUT != 0 {
                    if let Some(c) = conns.get_mut(i) {
                        c.write_ready(&mut stats);
                    }
                }
            }
        }
    }
    stats.conns_closed += conns.len() as u64;
    stats.flush(recorder);
}

/// Accepts every pending connection, distributing round-robin across
/// the reactor set (own connections are kept directly; others go
/// through an inbox and are picked up within one poll timeout).
fn accept_ready(
    listener: &TcpListener,
    shared: &ReactorShared,
    idx: usize,
    next_reactor: &mut usize,
    conns: &mut Vec<Conn>,
    stats: &mut Stats,
) {
    let write_buf_cap = shared.manager.serve_config().write_buf_cap();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                stats.conns_opened += 1;
                let target = *next_reactor % shared.inboxes.len();
                *next_reactor += 1;
                if target == idx {
                    conns.push(Conn::new(stream, write_buf_cap));
                } else {
                    lock(&shared.inboxes[target]).push(stream);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
