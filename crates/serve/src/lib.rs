//! Multi-session RIM serving.
//!
//! The paper pitches inertial sensing from commodity WiFi that fleets of
//! devices could stream CSI into; this crate is the process-level serving
//! layer that makes one engine instance do that. A [`SessionManager`]
//! owns N independent [`rim_core::RimStream`] states sharded by session
//! id, admits samples into bounded per-session ingress queues with
//! explicit backpressure ([`Admit`]), and drains them with a
//! cross-session batch scheduler that fans *different* sessions onto one
//! shared [`rim_par::Pool`] as independent tiles. Each session is still
//! analysed with its own state and a serial inner pool, so every
//! session's output is bit-identical to a standalone stream fed the same
//! samples — the repo's central determinism invariant survives
//! multi-tenancy.
//!
//! On top of the manager sits a small length-prefixed binary wire
//! protocol over TCP ([`wire`]), a blocking [`Server`] accept loop with a
//! background scheduler thread, and a [`Client`] used by the CLI's
//! `serve` subcommand, the integration tests, and the bench. Per-session
//! [`rim_obs::Recorder`]s capture stream/pipeline stages for each tenant,
//! and a manager-wide recorder captures the `serve` stage (admission
//! counters, queue depth, active/evicted sessions, ingest→estimate
//! latency).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod manager;
mod server;
pub mod wire;

pub use client::Client;
pub use manager::{Admit, RejectReason, ServeConfig, SessionManager};
pub use server::Server;
