//! Multi-session RIM serving.
//!
//! The paper pitches inertial sensing from commodity WiFi that fleets of
//! devices could stream CSI into; this crate is the process-level serving
//! layer that makes one engine instance do that. A [`SessionManager`]
//! owns N independent [`rim_core::RimStream`] states sharded by session
//! id, admits samples into bounded per-session ingress queues with
//! explicit backpressure ([`Admit`]) — throttling by *predicted latency
//! budget violation* ([`ServeConfig::latency_budget_us`]), not just raw
//! queue depth — and drains them with a deadline-ordered (EDF)
//! cross-session batch scheduler that fans *different* sessions onto one
//! shared [`rim_par::Pool`] as independent tiles. Each session is still
//! analysed with its own state and a serial inner pool, so every
//! session's output is bit-identical to a standalone stream fed the same
//! samples — the repo's central determinism invariant survives
//! multi-tenancy.
//!
//! On top of the manager sits a small length-prefixed binary wire
//! protocol over TCP ([`wire`]) served by a readiness-driven `poll(2)`
//! event loop: a fixed set of reactor threads owns all client sockets,
//! assembles frames from nonblocking reads, and drains responses through
//! per-connection backpressure queues — no thread is ever parked on a
//! socket, so thousands of concurrent sessions cost pollfd entries, not
//! OS threads. A blocking [`Client`] is used by the CLI's `serve`
//! subcommand, the integration tests, and the bench. Per-session
//! [`rim_obs::Recorder`]s capture stream/pipeline stages for each tenant,
//! and a manager-wide recorder captures the `serve` stage (admission
//! counters, queue depth, active/evicted sessions, ingest→estimate
//! latency) plus the `reactor` stage (wakeups, ready events, frames,
//! write stalls, backpressure rejections).
//!
//! Configuration flows through one validated constructor path:
//! [`ServeConfig::builder`], shared by [`Server::bind`], the CLI, and
//! self-drive.
// `sys` is the one module allowed to use unsafe: the dependency-free
// `poll(2)` FFI declaration the reactor is built on.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod manager;
mod reactor;
mod server;
mod sys;
pub mod wire;

pub use client::Client;
pub use manager::{Admit, RejectReason, ServeConfig, ServeConfigBuilder, SessionManager};
pub use server::Server;
