//! The sharded session manager and cross-session batch scheduler.
//!
//! Admission (`ingest`) is cheap and lock-light: hash the session id to
//! a shard, find or create the session, push onto its bounded ingress
//! queue. Analysis happens on the scheduler's clock: each [`process`]
//! tick collects every session with pending samples and fans them across
//! the shared [`Pool`] as independent tiles — one worker advances one
//! session at a time, so per-session state needs no finer locking and
//! every session's arithmetic is exactly a standalone stream's.
//!
//! [`process`]: SessionManager::process

use rim_array::ArrayGeometry;
use rim_core::{Error, Rim, RimConfig, RimStream, StreamEvent};
use rim_csi::sync::SyncedSample;
use rim_obs::{
    serve_metric, stage, Probe, Recorder, RunReport, SpanKind, TraceRecord, Tracer, WindowSnapshot,
};
use rim_par::Pool;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Serving-layer knobs. All limits are per process; zero values are
/// clamped to their minimum at construction where a zero would be
/// meaningless ([`ServeConfig::shards`], [`ServeConfig::queue_capacity`],
/// [`ServeConfig::max_sessions`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shards the session table is split across. Purely a
    /// contention knob: shard choice never affects results.
    pub shards: usize,
    /// Bounded ingress-queue length per session; a full queue throttles.
    pub queue_capacity: usize,
    /// Maximum resident sessions; beyond this, new sessions are
    /// rejected until one is finished or evicted.
    pub max_sessions: usize,
    /// Evict a session after this many scheduler ticks without activity
    /// (no admit, no processed sample). `0` disables eviction.
    pub idle_evict_ticks: u64,
    /// Retry hint returned with [`Admit::Throttled`], milliseconds.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 256,
            max_sessions: 1024,
            idle_evict_ticks: 0,
            retry_after_ms: 5,
        }
    }
}

/// The admission decision for one offered sample — the backpressure
/// contract a client must observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Queued for analysis.
    Accepted,
    /// The session's ingress queue is full; retry after the hint. The
    /// sample was **not** queued.
    Throttled {
        /// Suggested client backoff, milliseconds.
        retry_after: u64,
    },
    /// Not admitted and retrying soon will not help.
    Rejected {
        /// Why admission failed outright.
        reason: RejectReason,
    },
}

/// Why a sample was rejected outright (vs. throttled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The session table is at [`ServeConfig::max_sessions`] and the
    /// sample would have created a new session.
    SessionTableFull,
    /// The manager is shutting down and no longer accepts samples.
    ShuttingDown,
}

/// One admitted sample waiting for a scheduler tick.
#[derive(Debug)]
struct Pending {
    sample: SyncedSample,
    admitted: Instant,
    /// Per-request trace, when this admission fell on the sampling
    /// cadence ([`rim_core::RimConfig::trace_sample_every`]). Carries the
    /// open `queue_wait` span across the queue.
    trace: Option<rim_obs::ActiveTrace>,
}

/// The part of a session only the scheduler (or `finish`) touches.
#[derive(Debug)]
struct SessionWork {
    stream: RimStream,
    recorder: Recorder,
    /// Events accumulated since the last drain, in emission order.
    events: Vec<StreamEvent>,
}

/// One resident session: a lock-light ingress queue in front of the
/// analysis state. The two mutexes are held by at most one ingress call
/// and one scheduler worker respectively, and the queue lock is never
/// held across analysis.
#[derive(Debug)]
struct SessionState {
    queue: Mutex<VecDeque<Pending>>,
    work: Mutex<SessionWork>,
    /// Scheduler tick of the last admit or processed batch.
    last_active: AtomicU64,
}

/// Owns every resident session, sharded by session id, and schedules
/// cross-session batches onto one shared pool.
///
/// All methods take `&self`; the manager is designed to sit behind an
/// `Arc` with ingress threads and a scheduler thread calling in
/// concurrently.
#[derive(Debug)]
pub struct SessionManager {
    shards: Vec<Mutex<HashMap<u64, Arc<SessionState>>>>,
    /// Shared cross-session pool; per-session analysis stays serial.
    pool: Pool,
    /// Template engine cloned per session (serial inner pool, so the
    /// only parallelism is across sessions — results stay bit-identical
    /// to standalone streams at any worker count).
    engine: Rim,
    cfg: ServeConfig,
    /// Manager-wide recorder for the [`stage::SERVE`] stage.
    recorder: Recorder,
    tick: AtomicU64,
    resident: AtomicUsize,
    accepting: AtomicBool,
    /// Raw samples backing the ingest→estimate histogram; the report
    /// keeps p50/p95, so tail percentiles come from these.
    latencies: Mutex<Vec<f64>>,
    /// Per-request trace allocation, sampling, and retention (cadence
    /// from [`RimConfig::trace_sample_every`]; `0` = tracing off).
    tracer: Tracer,
}

impl SessionManager {
    /// Creates a manager for the given array geometry and engine
    /// configuration. `config.threads` sizes the shared cross-session
    /// pool (0 = `RIM_THREADS` or available parallelism); each session's
    /// own analysis is serial regardless, so thread count never changes
    /// any session's output bits.
    ///
    /// # Errors
    /// The same validation as [`Rim::new`].
    pub fn new(
        geometry: ArrayGeometry,
        config: RimConfig,
        serve: ServeConfig,
    ) -> Result<Self, Error> {
        let pool = Pool::new(config.threads, 0);
        let tracer = Tracer::new(config.trace_sample_every);
        let engine = Rim::new(geometry, config.with_threads(1))?;
        let mut cfg = serve;
        cfg.shards = cfg.shards.max(1);
        cfg.queue_capacity = cfg.queue_capacity.max(1);
        cfg.max_sessions = cfg.max_sessions.max(1);
        Ok(Self {
            shards: (0..cfg.shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            pool,
            engine,
            cfg,
            recorder: Recorder::new(),
            tick: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            latencies: Mutex::new(Vec::new()),
            tracer,
        })
    }

    /// Shard index for a session id (Fibonacci multiplicative hash, so
    /// adjacent ids spread out). Deterministic, and irrelevant to
    /// results either way.
    fn shard_of(&self, session_id: u64) -> usize {
        let h = session_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize) % self.shards.len()
    }

    /// Offers one synced sample to a session, creating the session on
    /// first contact. Returns the admission decision immediately; the
    /// sample is analysed on a later [`SessionManager::process`] tick.
    pub fn ingest(&self, session_id: u64, sample: SyncedSample) -> Admit {
        if !self.accepting.load(Ordering::Acquire) {
            self.recorder.count(stage::SERVE, serve_metric::REJECTED, 1);
            return Admit::Rejected {
                reason: RejectReason::ShuttingDown,
            };
        }
        // Start the per-request trace (if this admission falls on the
        // sampling cadence): the admission span covers shard lookup,
        // session creation, and the queue push. Rejected or throttled
        // samples drop their trace — only admitted work is attributed.
        let mut trace = self.tracer.try_start(session_id, sample.seq);
        let admission_span = trace.as_mut().map(|t| t.open(SpanKind::Admission));
        let state = {
            let mut shard = self.lock_shard(self.shard_of(session_id));
            match shard.get(&session_id) {
                Some(state) => Arc::clone(state),
                None => {
                    if self.resident.load(Ordering::Acquire) >= self.cfg.max_sessions {
                        drop(shard);
                        self.recorder.count(stage::SERVE, serve_metric::REJECTED, 1);
                        return Admit::Rejected {
                            reason: RejectReason::SessionTableFull,
                        };
                    }
                    let state = Arc::new(SessionState {
                        queue: Mutex::new(VecDeque::new()),
                        work: Mutex::new(SessionWork {
                            stream: RimStream::with_engine(self.engine.clone()),
                            recorder: Recorder::new(),
                            events: Vec::new(),
                        }),
                        last_active: AtomicU64::new(self.tick.load(Ordering::Acquire)),
                    });
                    shard.insert(session_id, Arc::clone(&state));
                    let n = self.resident.fetch_add(1, Ordering::AcqRel) + 1;
                    self.recorder
                        .gauge(stage::SERVE, serve_metric::SESSIONS_ACTIVE, n as f64);
                    state
                }
            }
        };
        state
            .last_active
            .store(self.tick.load(Ordering::Acquire), Ordering::Release);
        let admitted = {
            let mut queue = lock(&state.queue);
            if queue.len() >= self.cfg.queue_capacity {
                false
            } else {
                if let Some(t) = trace.as_mut() {
                    if let Some(id) = admission_span {
                        t.close(id);
                    }
                    // Left open across the queue; closed at pickup.
                    t.open(SpanKind::QueueWait);
                }
                queue.push_back(Pending {
                    sample,
                    admitted: Instant::now(),
                    trace: trace.take(),
                });
                true
            }
        };
        if admitted {
            self.recorder.count(stage::SERVE, serve_metric::ADMITTED, 1);
            Admit::Accepted
        } else {
            self.recorder
                .count(stage::SERVE, serve_metric::THROTTLED, 1);
            Admit::Throttled {
                retry_after: self.cfg.retry_after_ms,
            }
        }
    }

    /// Runs one scheduler tick: drains every session with pending
    /// samples, fanning the per-session batches across the shared pool
    /// as independent tiles, then applies the idle-eviction policy.
    /// Returns the number of samples analysed.
    pub fn process(&self) -> usize {
        let now = self.tick.fetch_add(1, Ordering::AcqRel) + 1;
        // Batch-schedule spans measure from the tick's start to each
        // sample's worker pickup: fan-out cost plus cross-session
        // contention.
        let tick_start = Instant::now();
        let mut busy: Vec<Arc<SessionState>> = Vec::new();
        let mut depth = 0usize;
        for shard in &self.shards {
            for state in lock(shard).values() {
                let queued = lock(&state.queue).len();
                if queued > 0 {
                    depth += queued;
                    busy.push(Arc::clone(state));
                }
            }
        }
        self.recorder
            .gauge(stage::SERVE, serve_metric::QUEUE_DEPTH, depth as f64);
        let mut analysed = 0;
        if !busy.is_empty() {
            let _span = self.recorder.span(stage::SERVE);
            let counts = self
                .pool
                .map(&busy, |state| self.process_session(state, now, tick_start));
            analysed = counts.iter().sum();
            self.recorder.count(stage::SERVE, serve_metric::BATCHES, 1);
        }
        self.evict_idle(now);
        analysed
    }

    /// Drains one session's queued samples through its stream, in FIFO
    /// order, under the session's work lock. Runs on a pool worker.
    fn process_session(&self, state: &SessionState, now: u64, tick_start: Instant) -> usize {
        let mut work = lock(&state.work);
        // Take the queue snapshot under the work lock so concurrent
        // drainers (scheduler tick vs. `finish`) cannot reorder a
        // session's samples.
        let pending: Vec<Pending> = lock(&state.queue).drain(..).collect();
        if pending.is_empty() {
            return 0;
        }
        state.last_active.store(now, Ordering::Release);
        let work = &mut *work;
        let mut n = 0;
        for mut p in pending {
            if let Some(t) = p.trace.as_mut() {
                t.close_open(SpanKind::QueueWait);
                t.record_since(SpanKind::BatchSchedule, tick_start);
            }
            let result = {
                let mut session = work.stream.session().probe(&work.recorder);
                if let Some(t) = p.trace.as_mut() {
                    session = session.trace(t);
                }
                session.ingest(p.sample)
            };
            match result {
                Ok(events) => {
                    if events.iter().any(|e| matches!(e, StreamEvent::Segment(_))) {
                        let us = p.admitted.elapsed().as_secs_f64() * 1e6;
                        self.recorder.observe(
                            stage::SERVE,
                            serve_metric::INGEST_TO_ESTIMATE_US,
                            us,
                        );
                        // Deprecated millisecond alias, kept one release
                        // for report consumers pinned to the old key.
                        self.recorder.observe(
                            stage::SERVE,
                            serve_metric::INGEST_TO_ESTIMATE_MS,
                            us / 1e3,
                        );
                        lock(&self.latencies).push(us / 1e3);
                    }
                    work.events.extend(events);
                    n += 1;
                }
                Err(_) => {
                    // A malformed sample poisons only itself; the
                    // session keeps its state and its neighbours never
                    // notice.
                    self.recorder.count(stage::SERVE, "samples_errored", 1);
                }
            }
            if let Some(t) = p.trace.take() {
                self.tracer.commit(t, &self.recorder);
            }
        }
        n
    }

    /// Removes sessions idle for longer than the configured tick budget.
    /// Evicted sessions are dropped as-is: pending undrained events are
    /// discarded (the tenant went away without finishing).
    fn evict_idle(&self, now: u64) {
        let budget = self.cfg.idle_evict_ticks;
        if budget == 0 {
            return;
        }
        let mut evicted = 0u64;
        for shard in &self.shards {
            let mut shard = lock(shard);
            shard.retain(|_, state| {
                let idle = now.saturating_sub(state.last_active.load(Ordering::Acquire));
                let stale = idle > budget && lock(&state.queue).is_empty();
                if stale {
                    evicted += 1;
                }
                !stale
            });
        }
        if evicted > 0 {
            let n = self.resident.fetch_sub(evicted as usize, Ordering::AcqRel) - evicted as usize;
            self.recorder
                .count(stage::SERVE, serve_metric::SESSIONS_EVICTED, evicted);
            self.recorder
                .gauge(stage::SERVE, serve_metric::SESSIONS_ACTIVE, n as f64);
        }
    }

    /// Takes the events a session has emitted since the last drain (or
    /// an empty vec for an unknown session), preserving emission order.
    pub fn drain_events(&self, session_id: u64) -> Vec<StreamEvent> {
        let Some(state) = self.find(session_id) else {
            return Vec::new();
        };
        let events = std::mem::take(&mut lock(&state.work).events);
        events
    }

    /// Finishes a session: analyses anything still queued, flushes the
    /// open segment, removes the session, and returns every undrained
    /// event. The result is bit-identical to a standalone
    /// [`RimStream`] fed the same admitted samples and finished.
    pub fn finish(&self, session_id: u64) -> Vec<StreamEvent> {
        let Some(state) = self.remove(session_id) else {
            return Vec::new();
        };
        let now = self.tick.load(Ordering::Acquire);
        self.process_session(&state, now, Instant::now());
        let mut work = lock(&state.work);
        let work = &mut *work;
        let final_events = work.stream.session().probe(&work.recorder).finish();
        work.events.extend(final_events);
        std::mem::take(&mut work.events)
    }

    /// Stops admitting new samples (subsequent [`SessionManager::ingest`]
    /// calls are rejected with [`RejectReason::ShuttingDown`]); already
    /// queued samples can still be processed and finished.
    pub fn shutdown(&self) {
        self.accepting.store(false, Ordering::Release);
    }

    /// Whether the manager still admits samples.
    pub fn accepting(&self) -> bool {
        self.accepting.load(Ordering::Acquire)
    }

    /// Sessions currently resident.
    pub fn sessions_active(&self) -> usize {
        self.resident.load(Ordering::Acquire)
    }

    /// Total samples queued across all sessions right now.
    pub fn queue_depth(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock(s)
                    .values()
                    .map(|st| lock(&st.queue).len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// The manager-wide [`stage::SERVE`] report (admission counters,
    /// queue depth, active/evicted sessions, ingest→estimate latency).
    pub fn report(&self) -> RunReport {
        self.recorder.report()
    }

    /// One session's own stream/pipeline-stage report, if resident.
    pub fn session_report(&self, session_id: u64) -> Option<RunReport> {
        let state = self.find(session_id)?;
        let report = lock(&state.work).recorder.report();
        Some(report)
    }

    /// The shared cross-session pool (for stats and sizing assertions).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Drains the raw ingest→estimate latency samples (milliseconds,
    /// one per sample whose analysis emitted a segment). The run report
    /// aggregates these to p50/p95; callers wanting deeper tails (p99)
    /// compute them from this.
    pub fn take_latencies(&self) -> Vec<f64> {
        std::mem::take(&mut *lock(&self.latencies))
    }

    /// Records the wall-clock cost of encoding + writing one
    /// event-bearing response frame: feeds the `wire_us` attribution
    /// distribution and attaches an `event_wire_out` span to the newest
    /// trace still lacking one (events leave on the response after their
    /// trace committed). Called by the server; no-op when tracing is off.
    pub fn note_wire_out(&self, dur_us: u64) {
        self.tracer.attach_wire_out(dur_us, &self.recorder);
    }

    /// The most recent committed per-request traces, oldest first (empty
    /// unless [`RimConfig::trace_sample_every`] is nonzero).
    pub fn traces(&self, n: usize) -> Vec<TraceRecord> {
        self.tracer.recent(n)
    }

    /// Live sliding-window view of the manager-wide recorder (see
    /// [`Recorder::window_snapshot`]).
    pub fn window_snapshot(&self) -> WindowSnapshot {
        self.recorder.window_snapshot()
    }

    /// Renders the read-only text exposition served over the wire's
    /// `Metrics` frame: flat `stage.metric value` lines (cumulative,
    /// then the sliding window under a `window.` prefix), live session
    /// gauges, and one `trace …` summary line per recent trace.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("# rim-serve metrics v1\n");
        let _ = writeln!(out, "sessions_active {}", self.sessions_active());
        let _ = writeln!(out, "queue_depth {}", self.queue_depth());
        let report = self.recorder.report();
        for s in &report.stages {
            let _ = writeln!(out, "{}.calls {}", s.name, s.calls);
            let _ = writeln!(out, "{}.total_ms {}", s.name, s.total_ms);
            let _ = writeln!(out, "{}.p50_ms {}", s.name, s.p50_ms);
            let _ = writeln!(out, "{}.p95_ms {}", s.name, s.p95_ms);
            for (k, v) in &s.counters {
                let _ = writeln!(out, "{}.{k} {v}", s.name);
            }
            for (k, v) in &s.gauges {
                let _ = writeln!(out, "{}.{k} {v}", s.name);
            }
            for d in &s.distributions {
                let _ = writeln!(out, "{}.{}.count {}", s.name, d.name, d.count);
                let _ = writeln!(out, "{}.{}.p50 {}", s.name, d.name, d.p50);
                let _ = writeln!(out, "{}.{}.p99 {}", s.name, d.name, d.p99);
                let _ = writeln!(out, "{}.{}.p999 {}", s.name, d.name, d.p999);
            }
        }
        let window = self.recorder.window_snapshot();
        let _ = writeln!(out, "window.span_s {}", window.span_s);
        for s in &window.stages {
            let _ = writeln!(out, "window.{}.calls {}", s.name, s.calls);
            let _ = writeln!(out, "window.{}.p50_ms {}", s.name, s.p50_ms);
            let _ = writeln!(out, "window.{}.p95_ms {}", s.name, s.p95_ms);
            for (k, v) in &s.counters {
                let _ = writeln!(out, "window.{}.{k} {v}", s.name);
            }
            for (k, v) in &s.gauges {
                let _ = writeln!(out, "window.{}.{k} {v}", s.name);
            }
        }
        for trace in self.tracer.recent(16) {
            let _ = writeln!(out, "{}", trace.summary());
        }
        out
    }

    fn lock_shard(&self, idx: usize) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<SessionState>>> {
        lock(&self.shards[idx])
    }

    fn find(&self, session_id: u64) -> Option<Arc<SessionState>> {
        self.lock_shard(self.shard_of(session_id))
            .get(&session_id)
            .map(Arc::clone)
    }

    fn remove(&self, session_id: u64) -> Option<Arc<SessionState>> {
        let state = self
            .lock_shard(self.shard_of(session_id))
            .remove(&session_id)?;
        let n = self.resident.fetch_sub(1, Ordering::AcqRel) - 1;
        self.recorder
            .gauge(stage::SERVE, serve_metric::SESSIONS_ACTIVE, n as f64);
        Some(state)
    }
}

/// Locks a mutex, riding through poisoning: per-session state is only
/// ever mutated by one worker at a time, so a panicked worker leaves the
/// state exactly as consistent as a panicked standalone stream would.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_csi::frame::CsiSnapshot;
    use rim_dsp::complex::Complex64;

    fn geometry() -> ArrayGeometry {
        ArrayGeometry::linear(3, 0.0258)
    }

    fn config() -> RimConfig {
        RimConfig::for_sample_rate(100.0)
    }

    fn sample(seq: u64) -> SyncedSample {
        let snap = |tag: f64| CsiSnapshot {
            per_tx: vec![vec![Complex64::new(tag, -tag); 8]],
        };
        SyncedSample {
            seq,
            antennas: (0..3).map(|a| Some(snap(seq as f64 + a as f64))).collect(),
        }
    }

    fn manager(serve: ServeConfig) -> SessionManager {
        SessionManager::new(geometry(), config(), serve).unwrap()
    }

    #[test]
    fn manager_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SessionManager>();
        assert_send_sync::<RimStream>();
    }

    #[test]
    fn admits_until_queue_full_then_throttles() {
        let m = manager(ServeConfig {
            queue_capacity: 3,
            ..ServeConfig::default()
        });
        for seq in 0..3 {
            assert_eq!(m.ingest(9, sample(seq)), Admit::Accepted);
        }
        assert_eq!(m.ingest(9, sample(3)), Admit::Throttled { retry_after: 5 });
        assert_eq!(m.queue_depth(), 3);
        // Processing frees the queue.
        assert_eq!(m.process(), 3);
        assert_eq!(m.queue_depth(), 0);
        assert_eq!(m.ingest(9, sample(3)), Admit::Accepted);
    }

    #[test]
    fn rejects_when_session_table_full_and_after_shutdown() {
        let m = manager(ServeConfig {
            max_sessions: 2,
            ..ServeConfig::default()
        });
        assert_eq!(m.ingest(1, sample(0)), Admit::Accepted);
        assert_eq!(m.ingest(2, sample(0)), Admit::Accepted);
        assert_eq!(
            m.ingest(3, sample(0)),
            Admit::Rejected {
                reason: RejectReason::SessionTableFull
            }
        );
        // An existing session is still served.
        assert_eq!(m.ingest(1, sample(1)), Admit::Accepted);
        // Finishing frees a slot.
        let _ = m.finish(2);
        assert_eq!(m.ingest(3, sample(0)), Admit::Accepted);
        m.shutdown();
        assert_eq!(
            m.ingest(1, sample(2)),
            Admit::Rejected {
                reason: RejectReason::ShuttingDown
            }
        );
    }

    #[test]
    fn idle_sessions_are_evicted_on_schedule() {
        let m = manager(ServeConfig {
            idle_evict_ticks: 2,
            ..ServeConfig::default()
        });
        assert_eq!(m.ingest(5, sample(0)), Admit::Accepted);
        assert_eq!(m.sessions_active(), 1);
        m.process(); // tick 1: analyses, session active at tick 1
        m.process(); // tick 2: idle 1
        m.process(); // tick 3: idle 2
        assert_eq!(m.sessions_active(), 1, "within budget");
        m.process(); // tick 4: idle 3 > 2 → evicted
        assert_eq!(m.sessions_active(), 0);
        let report = m.report();
        let stage = report.stage(stage::SERVE).unwrap();
        assert!(stage
            .counters
            .iter()
            .any(|(k, v)| k == serve_metric::SESSIONS_EVICTED && *v == 1));
    }

    #[test]
    fn malformed_sample_poisons_only_itself() {
        let m = manager(ServeConfig::default());
        assert_eq!(m.ingest(1, sample(0)), Admit::Accepted);
        // Wrong antenna count: analysis rejects it, session survives.
        let bad = SyncedSample {
            seq: 1,
            antennas: vec![None],
        };
        assert_eq!(m.ingest(1, bad), Admit::Accepted);
        assert_eq!(m.ingest(1, sample(1)), Admit::Accepted);
        assert_eq!(m.process(), 2, "two good samples analysed");
        assert_eq!(m.sessions_active(), 1);
        let report = m.report();
        let stage = report.stage(stage::SERVE).unwrap();
        assert!(stage
            .counters
            .iter()
            .any(|(k, v)| k == "samples_errored" && *v == 1));
    }

    #[test]
    fn traced_samples_decompose_into_spans_and_feed_attribution() {
        let m = SessionManager::new(
            geometry(),
            config().with_trace_sampling(1),
            ServeConfig::default(),
        )
        .unwrap();
        for seq in 0..5 {
            assert_eq!(m.ingest(3, sample(seq)), Admit::Accepted);
        }
        m.process();
        let traces = m.traces(16);
        assert_eq!(traces.len(), 5, "every admission traced at cadence 1");
        for t in &traces {
            assert_eq!(t.session_id, 3);
            assert!(t.span_us(SpanKind::Admission).is_some(), "admission span");
            assert!(t.span_us(SpanKind::QueueWait).is_some(), "queue_wait span");
            assert!(
                t.span_us(SpanKind::BatchSchedule).is_some(),
                "batch_schedule span"
            );
            assert!(
                t.span_us(SpanKind::IncrementalIngest).is_some(),
                "ingest span"
            );
        }
        m.note_wire_out(37);
        assert_eq!(
            m.traces(16).last().unwrap().span_us(SpanKind::EventWireOut),
            Some(37)
        );
        let report = m.report();
        let attr = report
            .stage(stage::LATENCY_ATTRIBUTION)
            .expect("attribution stage");
        for name in [
            rim_obs::attribution_metric::ADMISSION_US,
            rim_obs::attribution_metric::QUEUE_WAIT_US,
            rim_obs::attribution_metric::BATCH_SCHEDULE_US,
            rim_obs::attribution_metric::COMPUTE_US,
            rim_obs::attribution_metric::TOTAL_US,
        ] {
            assert!(
                attr.distributions
                    .iter()
                    .any(|d| d.name == name && d.count == 5),
                "{name} fed once per traced sample"
            );
        }
        // The exposition text carries the flat metric lines and traces.
        let text = m.metrics_text();
        assert!(text.starts_with("# rim-serve metrics v1\n"), "{text}");
        assert!(text.contains("serve.samples_admitted 5"), "{text}");
        assert!(text.contains("window.span_s "), "{text}");
        assert!(text.contains("queue_wait="), "{text}");
    }

    #[test]
    fn tracing_off_keeps_the_serve_path_traceless() {
        let m = manager(ServeConfig::default());
        for seq in 0..3 {
            m.ingest(1, sample(seq));
        }
        m.process();
        m.note_wire_out(10);
        assert!(m.traces(16).is_empty());
        assert!(m.report().stage(stage::LATENCY_ATTRIBUTION).is_none());
    }

    #[test]
    fn per_session_reports_are_isolated() {
        let m = manager(ServeConfig::default());
        for seq in 0..4 {
            m.ingest(1, sample(seq));
        }
        m.ingest(2, sample(0));
        m.process();
        let r1 = m.session_report(1).unwrap();
        let r2 = m.session_report(2).unwrap();
        let pushed = |r: &RunReport| {
            r.stage(stage::STREAM)
                .and_then(|s| {
                    s.counters
                        .iter()
                        .find(|(k, _)| k == "samples_pushed")
                        .map(|(_, v)| *v)
                })
                .unwrap_or(0)
        };
        assert_eq!(pushed(&r1), 4);
        assert_eq!(pushed(&r2), 1);
        assert!(m.session_report(99).is_none());
    }
}
