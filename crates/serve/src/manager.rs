//! The sharded session manager and deadline-aware batch scheduler.
//!
//! Admission (`ingest`) is cheap and O(1) beyond the shard lookup: hash
//! the session id to a shard, find or create the session, check the
//! latency-budget predictor (two atomic loads and a multiply), push onto
//! the session's bounded ingress queue. Analysis happens on the
//! scheduler's clock: each [`process`] tick collects every session with
//! pending samples, orders them by the earliest front-of-queue deadline
//! (EDF), and fans them across the shared [`Pool`] as independent tiles —
//! one worker advances one session at a time, so per-session state needs
//! no finer locking and every session's arithmetic is exactly a
//! standalone stream's.
//!
//! [`process`]: SessionManager::process

use rim_array::ArrayGeometry;
use rim_core::{Error, ImuSample, Rim, RimConfig, RimStream, StreamEvent, StreamInput};
use rim_csi::sync::SyncedSample;
use rim_obs::{
    serve_metric, stage, Probe, Recorder, RunReport, SpanKind, TraceRecord, Tracer, WindowSnapshot,
};
use rim_par::Pool;
use rim_tracking::{FusedStream, Fuser};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Validated serving-layer configuration. All limits are per process.
///
/// Constructed through [`ServeConfig::builder`] — the one constructor
/// path shared by [`crate::Server::bind`], the CLI's `rim serve`, and
/// self-drive — or [`ServeConfig::default`] for the stock limits.
/// Invalid combinations fail [`ServeConfigBuilder::build`] with
/// [`Error::Config`] instead of being silently clamped.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    shards: usize,
    queue_depth: usize,
    max_sessions: usize,
    idle_evict_ticks: u64,
    retry_after_ms: u64,
    latency_budget_us: u64,
    trace_every: usize,
    metrics_every_ms: u64,
    io_threads: usize,
    write_buf_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_depth: 256,
            max_sessions: 1024,
            idle_evict_ticks: 0,
            retry_after_ms: 5,
            latency_budget_us: 250_000,
            trace_every: 0,
            metrics_every_ms: 0,
            io_threads: 1,
            write_buf_cap: 1 << 20,
        }
    }
}

impl ServeConfig {
    /// Starts a builder seeded with the default limits.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::default(),
        }
    }

    /// Number of shards the session table is split across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Bounded ingress-queue length per session; a full queue throttles.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Maximum resident sessions before new sessions are rejected.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// Scheduler ticks of inactivity before eviction (`0` = never).
    pub fn idle_evict_ticks(&self) -> u64 {
        self.idle_evict_ticks
    }

    /// Retry hint returned with [`Admit::Throttled`], milliseconds.
    pub fn retry_after_ms(&self) -> u64 {
        self.retry_after_ms
    }

    /// Per-sample latency budget, microseconds (`0` = unbounded). Sets
    /// each admitted sample's deadline and arms the admission predictor.
    pub fn latency_budget_us(&self) -> u64 {
        self.latency_budget_us
    }

    /// Per-request trace cadence (`0` = fall back to
    /// [`RimConfig::trace_sample_every`]).
    pub fn trace_every(&self) -> usize {
        self.trace_every
    }

    /// Telemetry digest cadence for self-drive, milliseconds (`0` = off).
    pub fn metrics_every_ms(&self) -> u64 {
        self.metrics_every_ms
    }

    /// Reactor (I/O event loop) threads the server runs.
    pub fn io_threads(&self) -> usize {
        self.io_threads
    }

    /// Per-connection write-queue high watermark, bytes. A connection
    /// whose pending responses exceed this is answered with
    /// [`RejectReason::Backpressure`] until it drains.
    pub fn write_buf_cap(&self) -> usize {
        self.write_buf_cap
    }
}

/// Builder for [`ServeConfig`]. Setters take the builder by value so
/// configuration reads as one chained expression; [`build`] validates
/// the combination.
///
/// [`build`]: ServeConfigBuilder::build
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl Default for ServeConfigBuilder {
    fn default() -> Self {
        ServeConfig::builder()
    }
}

impl ServeConfigBuilder {
    /// Session-table shard count (contention knob; never affects bits).
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards;
        self
    }

    /// Bounded ingress-queue length per session.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.cfg.queue_depth = depth;
        self
    }

    /// Maximum resident sessions.
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.cfg.max_sessions = n;
        self
    }

    /// Scheduler ticks of inactivity before eviction (`0` = never).
    pub fn idle_evict_ticks(mut self, ticks: u64) -> Self {
        self.cfg.idle_evict_ticks = ticks;
        self
    }

    /// Retry hint returned with [`Admit::Throttled`], milliseconds.
    pub fn retry_after_ms(mut self, ms: u64) -> Self {
        self.cfg.retry_after_ms = ms;
        self
    }

    /// Per-sample latency budget, microseconds (`0` = unbounded).
    pub fn latency_budget_us(mut self, us: u64) -> Self {
        self.cfg.latency_budget_us = us;
        self
    }

    /// Per-request trace cadence (`0` = fall back to the engine's
    /// [`RimConfig::trace_sample_every`]).
    pub fn trace_every(mut self, every: usize) -> Self {
        self.cfg.trace_every = every;
        self
    }

    /// Telemetry digest cadence for self-drive, milliseconds (`0` = off).
    pub fn metrics_every_ms(mut self, ms: u64) -> Self {
        self.cfg.metrics_every_ms = ms;
        self
    }

    /// Reactor (I/O event loop) threads the server runs.
    pub fn io_threads(mut self, n: usize) -> Self {
        self.cfg.io_threads = n;
        self
    }

    /// Per-connection write-queue high watermark, bytes.
    pub fn write_buf_cap(mut self, bytes: usize) -> Self {
        self.cfg.write_buf_cap = bytes;
        self
    }

    /// Validates the combination and returns the config.
    ///
    /// # Errors
    /// [`Error::Config`] when a limit is out of range (zero where zero is
    /// meaningless, `io_threads` > 64, `write_buf_cap` < 1024,
    /// `latency_budget_us` in `1..1000`) or the combination is
    /// inconsistent (a retry hint longer than the latency budget would
    /// make every throttled retry blow its deadline).
    pub fn build(self) -> Result<ServeConfig, Error> {
        let c = &self.cfg;
        if c.shards == 0 {
            return Err(Error::Config("serve: shards must be >= 1".into()));
        }
        if c.queue_depth == 0 {
            return Err(Error::Config("serve: queue_depth must be >= 1".into()));
        }
        if c.max_sessions == 0 {
            return Err(Error::Config("serve: max_sessions must be >= 1".into()));
        }
        if c.retry_after_ms == 0 {
            return Err(Error::Config("serve: retry_after_ms must be >= 1".into()));
        }
        if c.latency_budget_us > 0 && c.latency_budget_us < 1000 {
            return Err(Error::Config(
                "serve: latency_budget_us must be 0 (unbounded) or >= 1000".into(),
            ));
        }
        if c.io_threads == 0 || c.io_threads > 64 {
            return Err(Error::Config("serve: io_threads must be in 1..=64".into()));
        }
        if c.write_buf_cap < 1024 {
            return Err(Error::Config(
                "serve: write_buf_cap must be >= 1024 bytes".into(),
            ));
        }
        if c.latency_budget_us > 0 && c.retry_after_ms.saturating_mul(1000) > c.latency_budget_us {
            return Err(Error::Config(format!(
                "serve: retry_after_ms ({} ms) exceeds latency_budget_us ({} us); \
                 a throttled retry could never meet its deadline",
                c.retry_after_ms, c.latency_budget_us
            )));
        }
        Ok(self.cfg)
    }
}

/// The admission decision for one offered sample — the backpressure
/// contract a client must observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Queued for analysis.
    Accepted,
    /// The session's ingress queue is full, or the latency predictor
    /// expects the sample to blow its budget; retry after the hint. The
    /// sample was **not** queued.
    Throttled {
        /// Suggested client backoff, milliseconds.
        retry_after: u64,
    },
    /// Not admitted and retrying soon will not help.
    Rejected {
        /// Why admission failed outright.
        reason: RejectReason,
    },
}

/// Why a sample was rejected outright (vs. throttled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The session table is at [`ServeConfig::max_sessions`] and the
    /// sample would have created a new session.
    SessionTableFull,
    /// The manager is shutting down and no longer accepts samples.
    ShuttingDown,
    /// The connection's write queue is over its high watermark
    /// ([`ServeConfig::write_buf_cap`]): the peer is not reading its
    /// responses fast enough for more work to be useful.
    Backpressure,
}

/// One admitted unit of input (a synced CSI sample or an IMU batch)
/// waiting for a scheduler tick.
#[derive(Debug)]
struct Pending {
    input: StreamInput,
    admitted: Instant,
    /// EDF key: admission time plus the latency budget (admission time
    /// itself when the budget is unbounded, so EDF degrades to
    /// earliest-arrival order).
    deadline: Instant,
    /// Per-request trace, when this admission fell on the sampling
    /// cadence. Carries the open `queue_wait` span across the queue.
    trace: Option<rim_obs::ActiveTrace>,
}

/// The part of a session only the scheduler (or `finish`) touches.
#[derive(Debug)]
struct SessionWork {
    stream: FusedStream,
    recorder: Recorder,
    /// Events accumulated since the last drain, in emission order.
    events: Vec<StreamEvent>,
}

/// One resident session: a lock-light ingress queue in front of the
/// analysis state. The two mutexes are held by at most one ingress call
/// and one scheduler worker respectively, and the queue lock is never
/// held across analysis.
#[derive(Debug)]
struct SessionState {
    queue: Mutex<VecDeque<Pending>>,
    work: Mutex<SessionWork>,
    /// Scheduler tick of the last admit or processed batch.
    last_active: AtomicU64,
}

/// Owns every resident session, sharded by session id, and schedules
/// cross-session batches onto one shared pool in earliest-deadline
/// order.
///
/// All methods take `&self`; the manager is designed to sit behind an
/// `Arc` with reactor threads and a scheduler thread calling in
/// concurrently.
#[derive(Debug)]
pub struct SessionManager {
    shards: Vec<Mutex<HashMap<u64, Arc<SessionState>>>>,
    /// Shared cross-session pool; per-session analysis stays serial.
    pool: Pool,
    /// Template engine cloned per session (serial inner pool, so the
    /// only parallelism is across sessions — results stay bit-identical
    /// to standalone streams at any worker count).
    engine: Rim,
    /// Template fusion engine; each session's stream wraps a clone of
    /// the CSI engine in this fuser's error-state filter.
    fuser: Fuser,
    cfg: ServeConfig,
    /// Manager-wide recorder for the [`stage::SERVE`] and
    /// [`stage::REACTOR`] stages.
    recorder: Recorder,
    tick: AtomicU64,
    resident: AtomicUsize,
    accepting: AtomicBool,
    /// Samples admitted but not yet drained by a scheduler worker,
    /// across all sessions. One of the predictor's two inputs.
    queued_total: AtomicUsize,
    /// EMA of per-sample analysis cost, nanoseconds (`0` until the first
    /// batch completes). The predictor's other input: predicted queue
    /// wait = queued_total x ema / pool workers.
    compute_ema_ns: AtomicU64,
    /// Raw samples backing the ingest→estimate histogram (microseconds);
    /// the report keeps p50/p95, so tail percentiles come from these.
    latencies: Mutex<Vec<f64>>,
    /// Per-request trace allocation, sampling, and retention (cadence
    /// from [`ServeConfig::trace_every`], falling back to
    /// [`RimConfig::trace_sample_every`]; `0` = tracing off).
    tracer: Tracer,
}

impl SessionManager {
    /// Creates a manager for the given array geometry and engine
    /// configuration. `config.threads` sizes the shared cross-session
    /// pool (0 = `RIM_THREADS` or available parallelism); each session's
    /// own analysis is serial regardless, so thread count never changes
    /// any session's output bits.
    ///
    /// # Errors
    /// The same validation as [`Rim::new`].
    pub fn new(
        geometry: ArrayGeometry,
        config: RimConfig,
        serve: ServeConfig,
    ) -> Result<Self, Error> {
        Self::with_fuser(geometry, config, serve, Fuser::builder().build()?)
    }

    /// [`SessionManager::new`] with an explicit fusion engine instead of
    /// the default [`Fuser`] configuration; every session's stream runs
    /// this fuser's error-state filter over its RIM and IMU input.
    ///
    /// # Errors
    /// The same validation as [`Rim::new`].
    pub fn with_fuser(
        geometry: ArrayGeometry,
        config: RimConfig,
        serve: ServeConfig,
        fuser: Fuser,
    ) -> Result<Self, Error> {
        let pool = Pool::new(config.threads, 0);
        let cadence = if serve.trace_every > 0 {
            serve.trace_every
        } else {
            config.trace_sample_every
        };
        let tracer = Tracer::new(cadence);
        let engine = Rim::new(geometry, config.with_threads(1))?;
        Ok(Self {
            shards: (0..serve.shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            pool,
            engine,
            fuser,
            cfg: serve,
            recorder: Recorder::new(),
            tick: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            queued_total: AtomicUsize::new(0),
            compute_ema_ns: AtomicU64::new(0),
            latencies: Mutex::new(Vec::new()),
            tracer,
        })
    }

    /// Shard index for a session id (Fibonacci multiplicative hash, so
    /// adjacent ids spread out). Deterministic, and irrelevant to
    /// results either way.
    fn shard_of(&self, session_id: u64) -> usize {
        let h = session_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize) % self.shards.len()
    }

    /// Predicted ingress-queue wait for a sample admitted now,
    /// microseconds: everything already queued, at the observed
    /// per-sample cost, spread over the pool's workers. Two relaxed
    /// atomic loads and a multiply — O(1) however many sessions exist.
    /// `0` until the first batch calibrates the cost EMA.
    fn predicted_wait_us(&self) -> u64 {
        let ema_ns = self.compute_ema_ns.load(Ordering::Relaxed);
        if ema_ns == 0 {
            return 0;
        }
        let queued = self.queued_total.load(Ordering::Relaxed) as u64;
        let workers = (self.pool.threads().max(1)) as u64;
        queued.saturating_mul((ema_ns / 1000).max(1)) / workers
    }

    /// Offers one synced sample to a session, creating the session on
    /// first contact. Returns the admission decision immediately; the
    /// sample is analysed on a later [`SessionManager::process`] tick.
    ///
    /// Beyond the per-session queue bound, admission throttles when the
    /// latency-budget predictor says the sample would wait longer than
    /// [`ServeConfig::latency_budget_us`] before a worker picks it up —
    /// backpressure keyed to the deadline contract, not just to memory.
    pub fn ingest(&self, session_id: u64, sample: SyncedSample) -> Admit {
        let seq = sample.seq;
        self.admit(session_id, sample.into(), Some(seq))
    }

    /// Offers one batch of IMU samples to a session, creating the
    /// session on first contact. The batch occupies one ingress-queue
    /// slot and is run through the session's fusion filter on a later
    /// scheduler tick, emitting one [`StreamEvent::Fused`] estimate —
    /// the same admission contract (and backpressure) as
    /// [`SessionManager::ingest`]. IMU batches are not traced: they
    /// never touch the alignment pipeline.
    pub fn ingest_imu(&self, session_id: u64, samples: Vec<ImuSample>) -> Admit {
        self.admit(session_id, StreamInput::Imu(samples), None)
    }

    /// The admission body shared by the CSI and IMU entry points;
    /// `trace_seq` arms per-request tracing (CSI only).
    fn admit(&self, session_id: u64, input: StreamInput, trace_seq: Option<u64>) -> Admit {
        if !self.accepting.load(Ordering::Acquire) {
            self.recorder.count(stage::SERVE, serve_metric::REJECTED, 1);
            return Admit::Rejected {
                reason: RejectReason::ShuttingDown,
            };
        }
        let budget_us = self.cfg.latency_budget_us;
        if budget_us > 0 && self.predicted_wait_us() > budget_us {
            self.recorder
                .count(stage::SERVE, serve_metric::THROTTLED, 1);
            self.recorder
                .count(stage::SERVE, serve_metric::THROTTLED_PREDICTED, 1);
            return Admit::Throttled {
                retry_after: self.cfg.retry_after_ms,
            };
        }
        // Start the per-request trace (if this admission falls on the
        // sampling cadence): the admission span covers shard lookup,
        // session creation, and the queue push. Rejected or throttled
        // samples drop their trace — only admitted work is attributed.
        let mut trace = trace_seq.and_then(|seq| self.tracer.try_start(session_id, seq));
        let admission_span = trace.as_mut().map(|t| t.open(SpanKind::Admission));
        let state = {
            let mut shard = self.lock_shard(self.shard_of(session_id));
            match shard.get(&session_id) {
                Some(state) => Arc::clone(state),
                None => {
                    if self.resident.load(Ordering::Acquire) >= self.cfg.max_sessions {
                        drop(shard);
                        self.recorder.count(stage::SERVE, serve_metric::REJECTED, 1);
                        return Admit::Rejected {
                            reason: RejectReason::SessionTableFull,
                        };
                    }
                    let state = Arc::new(SessionState {
                        queue: Mutex::new(VecDeque::new()),
                        work: Mutex::new(SessionWork {
                            stream: self
                                .fuser
                                .stream(RimStream::with_engine(self.engine.clone())),
                            recorder: Recorder::new(),
                            events: Vec::new(),
                        }),
                        last_active: AtomicU64::new(self.tick.load(Ordering::Acquire)),
                    });
                    shard.insert(session_id, Arc::clone(&state));
                    let n = self.resident.fetch_add(1, Ordering::AcqRel) + 1;
                    self.recorder
                        .gauge(stage::SERVE, serve_metric::SESSIONS_ACTIVE, n as f64);
                    state
                }
            }
        };
        state
            .last_active
            .store(self.tick.load(Ordering::Acquire), Ordering::Release);
        let admitted = {
            let mut queue = lock(&state.queue);
            if queue.len() >= self.cfg.queue_depth {
                false
            } else {
                if let Some(t) = trace.as_mut() {
                    if let Some(id) = admission_span {
                        t.close(id);
                    }
                    // Left open across the queue; closed at pickup.
                    t.open(SpanKind::QueueWait);
                }
                let now = Instant::now();
                let deadline = if budget_us > 0 {
                    now + Duration::from_micros(budget_us)
                } else {
                    now
                };
                queue.push_back(Pending {
                    input,
                    admitted: now,
                    deadline,
                    trace: trace.take(),
                });
                true
            }
        };
        if admitted {
            self.queued_total.fetch_add(1, Ordering::Relaxed);
            self.recorder.count(stage::SERVE, serve_metric::ADMITTED, 1);
            Admit::Accepted
        } else {
            self.recorder
                .count(stage::SERVE, serve_metric::THROTTLED, 1);
            Admit::Throttled {
                retry_after: self.cfg.retry_after_ms,
            }
        }
    }

    /// Sessions with pending samples, ordered by their front-of-queue
    /// deadline (earliest first). [`Pool::map`] preserves index order in
    /// its fan-out, so this ordering is the EDF schedule.
    fn busy_sessions(&self) -> (Vec<Arc<SessionState>>, usize) {
        let mut busy: Vec<(Instant, Arc<SessionState>)> = Vec::new();
        let mut depth = 0usize;
        for shard in &self.shards {
            for state in lock(shard).values() {
                let queue = lock(&state.queue);
                if let Some(front) = queue.front() {
                    depth += queue.len();
                    busy.push((front.deadline, Arc::clone(state)));
                }
            }
        }
        busy.sort_by_key(|(deadline, _)| *deadline);
        (busy.into_iter().map(|(_, s)| s).collect(), depth)
    }

    /// Runs one scheduler tick: drains every session with pending
    /// samples in earliest-deadline order, fanning the per-session
    /// batches across the shared pool as independent tiles, then applies
    /// the idle-eviction policy. Returns the number of samples analysed.
    pub fn process(&self) -> usize {
        let now = self.tick.fetch_add(1, Ordering::AcqRel) + 1;
        // Batch-schedule spans measure from the tick's start to each
        // sample's worker pickup: fan-out cost plus cross-session
        // contention.
        let tick_start = Instant::now();
        let (busy, depth) = self.busy_sessions();
        self.recorder
            .gauge(stage::SERVE, serve_metric::QUEUE_DEPTH, depth as f64);
        let mut analysed = 0;
        if !busy.is_empty() {
            let _span = self.recorder.span(stage::SERVE);
            let counts = self
                .pool
                .map(&busy, |state| self.process_session(state, now, tick_start));
            analysed = counts.iter().sum();
            self.recorder.count(stage::SERVE, serve_metric::BATCHES, 1);
        }
        self.evict_idle(now);
        analysed
    }

    /// Drains one session's queued samples through its stream, in FIFO
    /// order, under the session's work lock. Runs on a pool worker.
    fn process_session(&self, state: &SessionState, now: u64, tick_start: Instant) -> usize {
        let mut work = lock(&state.work);
        // Take the queue snapshot under the work lock so concurrent
        // drainers (scheduler tick vs. `finish`) cannot reorder a
        // session's samples.
        let pending: Vec<Pending> = lock(&state.queue).drain(..).collect();
        if pending.is_empty() {
            return 0;
        }
        self.queued_total
            .fetch_sub(pending.len(), Ordering::Relaxed);
        state.last_active.store(now, Ordering::Release);
        let work = &mut *work;
        let batch = pending.len();
        let batch_start = Instant::now();
        let mut n = 0;
        for mut p in pending {
            if let Some(t) = p.trace.as_mut() {
                t.close_open(SpanKind::QueueWait);
                t.record_since(SpanKind::BatchSchedule, tick_start);
            }
            let result = {
                let mut session = work.stream.session().probe(&work.recorder);
                if let Some(t) = p.trace.as_mut() {
                    session = session.trace(t);
                }
                session.ingest(p.input)
            };
            match result {
                Ok(events) => {
                    if events.iter().any(|e| matches!(e, StreamEvent::Segment(_))) {
                        let us = p.admitted.elapsed().as_secs_f64() * 1e6;
                        self.recorder.observe(
                            stage::SERVE,
                            serve_metric::INGEST_TO_ESTIMATE_US,
                            us,
                        );
                        lock(&self.latencies).push(us);
                    }
                    work.events.extend(events);
                    n += 1;
                }
                Err(_) => {
                    // A malformed sample poisons only itself; the
                    // session keeps its state and its neighbours never
                    // notice.
                    self.recorder.count(stage::SERVE, "samples_errored", 1);
                }
            }
            if let Some(t) = p.trace.take() {
                self.tracer.commit(t, &self.recorder);
            }
        }
        // Recalibrate the admission predictor from this batch's
        // per-sample cost. Last-write-wins across workers is fine: every
        // batch on this box observes the same engine.
        let per_sample_ns = (batch_start.elapsed().as_nanos() as u64 / batch as u64).max(1);
        let old = self.compute_ema_ns.load(Ordering::Relaxed);
        let ema = if old == 0 {
            per_sample_ns
        } else {
            old - old / 8 + per_sample_ns / 8
        };
        self.compute_ema_ns.store(ema, Ordering::Relaxed);
        n
    }

    /// Removes sessions idle for longer than the configured tick budget.
    /// Evicted sessions are dropped as-is: pending undrained events are
    /// discarded (the tenant went away without finishing).
    fn evict_idle(&self, now: u64) {
        let budget = self.cfg.idle_evict_ticks;
        if budget == 0 {
            return;
        }
        let mut evicted = 0u64;
        for shard in &self.shards {
            let mut shard = lock(shard);
            shard.retain(|_, state| {
                let idle = now.saturating_sub(state.last_active.load(Ordering::Acquire));
                let stale = idle > budget && lock(&state.queue).is_empty();
                if stale {
                    evicted += 1;
                }
                !stale
            });
        }
        if evicted > 0 {
            let n = saturating_release(&self.resident, evicted as usize);
            self.recorder
                .count(stage::SERVE, serve_metric::SESSIONS_EVICTED, evicted);
            self.recorder
                .gauge(stage::SERVE, serve_metric::SESSIONS_ACTIVE, n as f64);
        }
    }

    /// Takes the events a session has emitted since the last drain (or
    /// an empty vec for an unknown session), preserving emission order.
    pub fn drain_events(&self, session_id: u64) -> Vec<StreamEvent> {
        let Some(state) = self.find(session_id) else {
            return Vec::new();
        };
        let events = std::mem::take(&mut lock(&state.work).events);
        events
    }

    /// Finishes a session: analyses anything still queued, flushes the
    /// open segment, removes the session, and returns every undrained
    /// event. The result is bit-identical to a standalone
    /// [`RimStream`] fed the same admitted samples and finished.
    pub fn finish(&self, session_id: u64) -> Vec<StreamEvent> {
        let Some(state) = self.remove(session_id) else {
            return Vec::new();
        };
        let now = self.tick.load(Ordering::Acquire);
        self.process_session(&state, now, Instant::now());
        let mut work = lock(&state.work);
        let work = &mut *work;
        let final_events = work.stream.session().probe(&work.recorder).finish();
        work.events.extend(final_events);
        std::mem::take(&mut work.events)
    }

    /// Stops admitting new samples (subsequent [`SessionManager::ingest`]
    /// calls are rejected with [`RejectReason::ShuttingDown`]); already
    /// queued samples can still be processed and finished.
    pub fn shutdown(&self) {
        self.accepting.store(false, Ordering::Release);
    }

    /// Whether the manager still admits samples.
    pub fn accepting(&self) -> bool {
        self.accepting.load(Ordering::Acquire)
    }

    /// Sessions currently resident.
    pub fn sessions_active(&self) -> usize {
        self.resident.load(Ordering::Acquire)
    }

    /// Total samples queued across all sessions right now.
    pub fn queue_depth(&self) -> usize {
        self.queued_total.load(Ordering::Relaxed)
    }

    /// The validated serving configuration this manager runs with.
    pub fn serve_config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The manager-wide [`stage::SERVE`] / [`stage::REACTOR`] report
    /// (admission counters, queue depth, active/evicted sessions,
    /// ingest→estimate latency, reactor I/O counters).
    pub fn report(&self) -> RunReport {
        self.recorder.report()
    }

    /// One session's own stream/pipeline-stage report, if resident.
    pub fn session_report(&self, session_id: u64) -> Option<RunReport> {
        let state = self.find(session_id)?;
        let report = lock(&state.work).recorder.report();
        Some(report)
    }

    /// The shared cross-session pool (for stats and sizing assertions).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The manager-wide recorder, for the reactor's I/O counters.
    pub(crate) fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Drains the raw ingest→estimate latency samples (microseconds,
    /// one per sample whose analysis emitted a segment). The run report
    /// aggregates these to p50/p95; callers wanting deeper tails
    /// (p99/p999) compute them from this.
    pub fn take_latencies(&self) -> Vec<f64> {
        std::mem::take(&mut *lock(&self.latencies))
    }

    /// Records the wall-clock cost of encoding + writing one
    /// event-bearing response frame: feeds the `wire_us` attribution
    /// distribution and attaches an `event_wire_out` span to the newest
    /// trace still lacking one (events leave on the response after their
    /// trace committed). Called by the reactor; no-op when tracing is off.
    pub fn note_wire_out(&self, dur_us: u64) {
        self.tracer.attach_wire_out(dur_us, &self.recorder);
    }

    /// The most recent committed per-request traces, oldest first (empty
    /// unless tracing is enabled).
    pub fn traces(&self, n: usize) -> Vec<TraceRecord> {
        self.tracer.recent(n)
    }

    /// Live sliding-window view of the manager-wide recorder (see
    /// [`Recorder::window_snapshot`]).
    pub fn window_snapshot(&self) -> WindowSnapshot {
        self.recorder.window_snapshot()
    }

    /// Renders the read-only text exposition served over the wire's
    /// `Metrics` frame: flat `stage.metric value` lines (cumulative,
    /// then the sliding window under a `window.` prefix), live session
    /// gauges, and one `trace …` summary line per recent trace.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("# rim-serve metrics v1\n");
        let _ = writeln!(out, "sessions_active {}", self.sessions_active());
        let _ = writeln!(out, "queue_depth {}", self.queue_depth());
        let report = self.recorder.report();
        for s in &report.stages {
            let _ = writeln!(out, "{}.calls {}", s.name, s.calls);
            let _ = writeln!(out, "{}.total_ms {}", s.name, s.total_ms);
            let _ = writeln!(out, "{}.p50_ms {}", s.name, s.p50_ms);
            let _ = writeln!(out, "{}.p95_ms {}", s.name, s.p95_ms);
            for (k, v) in &s.counters {
                let _ = writeln!(out, "{}.{k} {v}", s.name);
            }
            for (k, v) in &s.gauges {
                let _ = writeln!(out, "{}.{k} {v}", s.name);
            }
            for d in &s.distributions {
                let _ = writeln!(out, "{}.{}.count {}", s.name, d.name, d.count);
                let _ = writeln!(out, "{}.{}.p50 {}", s.name, d.name, d.p50);
                let _ = writeln!(out, "{}.{}.p99 {}", s.name, d.name, d.p99);
                let _ = writeln!(out, "{}.{}.p999 {}", s.name, d.name, d.p999);
            }
        }
        let window = self.recorder.window_snapshot();
        let _ = writeln!(out, "window.span_s {}", window.span_s);
        for s in &window.stages {
            let _ = writeln!(out, "window.{}.calls {}", s.name, s.calls);
            let _ = writeln!(out, "window.{}.p50_ms {}", s.name, s.p50_ms);
            let _ = writeln!(out, "window.{}.p95_ms {}", s.name, s.p95_ms);
            for (k, v) in &s.counters {
                let _ = writeln!(out, "window.{}.{k} {v}", s.name);
            }
            for (k, v) in &s.gauges {
                let _ = writeln!(out, "window.{}.{k} {v}", s.name);
            }
        }
        for trace in self.tracer.recent(16) {
            let _ = writeln!(out, "{}", trace.summary());
        }
        out
    }

    fn lock_shard(&self, idx: usize) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<SessionState>>> {
        lock(&self.shards[idx])
    }

    fn find(&self, session_id: u64) -> Option<Arc<SessionState>> {
        self.lock_shard(self.shard_of(session_id))
            .get(&session_id)
            .map(Arc::clone)
    }

    fn remove(&self, session_id: u64) -> Option<Arc<SessionState>> {
        let state = self
            .lock_shard(self.shard_of(session_id))
            .remove(&session_id)?;
        let n = saturating_release(&self.resident, 1);
        self.recorder
            .gauge(stage::SERVE, serve_metric::SESSIONS_ACTIVE, n as f64);
        Some(state)
    }
}

/// Releases `n` residency slots and returns the new count, saturating at
/// zero. `fetch_sub(n) - n` is not safe here: eviction counts its victims
/// under per-shard locks, then settles the global counter — a session
/// removed and re-admitted by another thread in between can leave the
/// counter smaller than the eviction tally, and the plain subtraction
/// would wrap the gauge to ~2^64 (and panic in debug builds).
fn saturating_release(resident: &AtomicUsize, n: usize) -> usize {
    let mut prev = resident.load(Ordering::Acquire);
    loop {
        let next = prev.saturating_sub(n);
        match resident.compare_exchange_weak(prev, next, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return next,
            Err(p) => prev = p,
        }
    }
}

/// Locks a mutex, riding through poisoning: per-session state is only
/// ever mutated by one worker at a time, so a panicked worker leaves the
/// state exactly as consistent as a panicked standalone stream would.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_csi::frame::CsiSnapshot;
    use rim_dsp::complex::Complex64;

    fn geometry() -> ArrayGeometry {
        ArrayGeometry::linear(3, 0.0258)
    }

    fn config() -> RimConfig {
        RimConfig::for_sample_rate(100.0)
    }

    fn sample(seq: u64) -> SyncedSample {
        let snap = |tag: f64| CsiSnapshot {
            per_tx: vec![vec![Complex64::new(tag, -tag); 8]],
        };
        SyncedSample {
            seq,
            antennas: (0..3).map(|a| Some(snap(seq as f64 + a as f64))).collect(),
        }
    }

    fn manager(serve: ServeConfig) -> SessionManager {
        SessionManager::new(geometry(), config(), serve).unwrap()
    }

    #[test]
    fn manager_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SessionManager>();
        assert_send_sync::<RimStream>();
        assert_send_sync::<FusedStream>();
    }

    #[test]
    fn imu_batches_share_the_admission_contract_and_emit_fused_events() {
        let m = manager(ServeConfig::builder().queue_depth(2).build().unwrap());
        let batch: Vec<ImuSample> = (0..40)
            .map(|i| ImuSample {
                t_us: i * 10_000,
                accel_body: rim_dsp::geom::Vec2::new(0.0, 0.0),
                gyro_z: 0.0,
                mag_orientation: None,
            })
            .collect();
        assert_eq!(m.ingest_imu(7, batch.clone()), Admit::Accepted);
        assert_eq!(m.ingest(7, sample(0)), Admit::Accepted);
        // The queue bound covers both input shapes.
        assert_eq!(
            m.ingest_imu(7, batch.clone()),
            Admit::Throttled { retry_after: 5 }
        );
        assert_eq!(m.process(), 2);
        let events = m.drain_events(7);
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind() == rim_core::StreamEventKind::Fused)
                .count(),
            1,
            "one fused estimate per IMU batch: {events:?}"
        );
        m.shutdown();
        assert_eq!(
            m.ingest_imu(7, batch),
            Admit::Rejected {
                reason: RejectReason::ShuttingDown
            }
        );
    }

    #[test]
    fn builder_validates_limits_and_combinations() {
        assert!(ServeConfig::builder().build().is_ok(), "defaults are valid");
        for bad in [
            ServeConfig::builder().shards(0),
            ServeConfig::builder().queue_depth(0),
            ServeConfig::builder().max_sessions(0),
            ServeConfig::builder().retry_after_ms(0),
            ServeConfig::builder().latency_budget_us(500),
            ServeConfig::builder().io_threads(0),
            ServeConfig::builder().io_threads(65),
            ServeConfig::builder().write_buf_cap(16),
            // Retry hint (50 ms) longer than the budget (10 ms).
            ServeConfig::builder()
                .retry_after_ms(50)
                .latency_budget_us(10_000),
        ] {
            assert!(
                matches!(bad.clone().build(), Err(Error::Config(_))),
                "expected Error::Config from {bad:?}"
            );
        }
        // An unbounded budget lifts the retry/budget combination check.
        let cfg = ServeConfig::builder()
            .retry_after_ms(50)
            .latency_budget_us(0)
            .build()
            .unwrap();
        assert_eq!(cfg.retry_after_ms(), 50);
        assert_eq!(cfg.latency_budget_us(), 0);
    }

    #[test]
    fn admits_until_queue_full_then_throttles() {
        let m = manager(ServeConfig::builder().queue_depth(3).build().unwrap());
        for seq in 0..3 {
            assert_eq!(m.ingest(9, sample(seq)), Admit::Accepted);
        }
        assert_eq!(m.ingest(9, sample(3)), Admit::Throttled { retry_after: 5 });
        assert_eq!(m.queue_depth(), 3);
        // Processing frees the queue.
        assert_eq!(m.process(), 3);
        assert_eq!(m.queue_depth(), 0);
        assert_eq!(m.ingest(9, sample(3)), Admit::Accepted);
    }

    #[test]
    fn predictor_throttles_when_budget_would_be_blown() {
        let m = manager(
            ServeConfig::builder()
                .retry_after_ms(1)
                .latency_budget_us(2000)
                .build()
                .unwrap(),
        );
        assert_eq!(m.ingest(1, sample(0)), Admit::Accepted);
        // White-box calibration: pretend a batch measured 10 ms/sample.
        // One queued sample at 10 ms/sample predicts >= 2.5 ms of wait
        // even on a 4-worker pool — over the 2 ms budget.
        m.compute_ema_ns.store(10_000_000, Ordering::Relaxed);
        assert_eq!(m.ingest(1, sample(1)), Admit::Throttled { retry_after: 1 });
        assert_eq!(
            m.queue_depth(),
            1,
            "the predicted-violation sample was not queued"
        );
        let report = m.report();
        let stage = report.stage(stage::SERVE).unwrap();
        assert!(stage
            .counters
            .iter()
            .any(|(k, v)| k == serve_metric::THROTTLED_PREDICTED && *v == 1));
        // Draining the queue clears the prediction.
        m.process();
        assert_eq!(m.ingest(1, sample(1)), Admit::Accepted);
    }

    #[test]
    fn busy_sessions_are_ordered_by_earliest_deadline() {
        let m = manager(
            ServeConfig::builder()
                .latency_budget_us(500_000)
                .build()
                .unwrap(),
        );
        // Session 20 admits first, so its front deadline is earliest no
        // matter how the ids hash across shards.
        assert_eq!(m.ingest(20, sample(0)), Admit::Accepted);
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(m.ingest(10, sample(0)), Admit::Accepted);
        let (busy, depth) = m.busy_sessions();
        assert_eq!(depth, 2);
        assert_eq!(busy.len(), 2);
        assert!(
            Arc::ptr_eq(&busy[0], &m.find(20).unwrap()),
            "earliest-admitted session schedules first"
        );
        assert!(Arc::ptr_eq(&busy[1], &m.find(10).unwrap()));
    }

    #[test]
    fn rejects_when_session_table_full_and_after_shutdown() {
        let m = manager(ServeConfig::builder().max_sessions(2).build().unwrap());
        assert_eq!(m.ingest(1, sample(0)), Admit::Accepted);
        assert_eq!(m.ingest(2, sample(0)), Admit::Accepted);
        assert_eq!(
            m.ingest(3, sample(0)),
            Admit::Rejected {
                reason: RejectReason::SessionTableFull
            }
        );
        // An existing session is still served.
        assert_eq!(m.ingest(1, sample(1)), Admit::Accepted);
        // Finishing frees a slot.
        let _ = m.finish(2);
        assert_eq!(m.ingest(3, sample(0)), Admit::Accepted);
        m.shutdown();
        assert_eq!(
            m.ingest(1, sample(2)),
            Admit::Rejected {
                reason: RejectReason::ShuttingDown
            }
        );
    }

    #[test]
    fn idle_sessions_are_evicted_on_schedule() {
        let m = manager(ServeConfig::builder().idle_evict_ticks(2).build().unwrap());
        assert_eq!(m.ingest(5, sample(0)), Admit::Accepted);
        assert_eq!(m.sessions_active(), 1);
        m.process(); // tick 1: analyses, session active at tick 1
        m.process(); // tick 2: idle 1
        m.process(); // tick 3: idle 2
        assert_eq!(m.sessions_active(), 1, "within budget");
        m.process(); // tick 4: idle 3 > 2 → evicted
        assert_eq!(m.sessions_active(), 0);
        let report = m.report();
        let stage = report.stage(stage::SERVE).unwrap();
        assert!(stage
            .counters
            .iter()
            .any(|(k, v)| k == serve_metric::SESSIONS_EVICTED && *v == 1));
    }

    #[test]
    fn resident_release_saturates_instead_of_wrapping() {
        // The eviction race's post-state: victims were counted under the
        // shard locks, but another thread settled the global counter
        // first (remove + re-admit), leaving it below the tally. The old
        // `fetch_sub(n) - n` wrapped the gauge to ~2^64 here.
        let resident = AtomicUsize::new(1);
        assert_eq!(saturating_release(&resident, 3), 0);
        assert_eq!(resident.load(Ordering::Acquire), 0);
        // The normal path still subtracts exactly.
        let resident = AtomicUsize::new(5);
        assert_eq!(saturating_release(&resident, 3), 2);
        assert_eq!(resident.load(Ordering::Acquire), 2);
    }

    #[test]
    fn eviction_race_with_readmission_keeps_the_gauge_sane() {
        // Hammer evict/ingest/finish from three threads; whatever the
        // interleaving, the resident count must stay a sane small number
        // (a wrap would read as ~2^64) and the manager must not panic.
        let m = std::sync::Arc::new(manager(
            ServeConfig::builder().idle_evict_ticks(1).build().unwrap(),
        ));
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let m = std::sync::Arc::clone(&m);
            let stop = std::sync::Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut seq = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let id = 100 + t;
                    let _ = m.ingest(id, sample(seq));
                    m.process();
                    let _ = m.finish(id);
                    seq += 1;
                }
            }));
        }
        for _ in 0..200 {
            m.process(); // ticks the clock → evict_idle races the workers
            assert!(
                m.sessions_active() <= 16,
                "resident gauge wrapped: {}",
                m.sessions_active()
            );
        }
        stop.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        assert!(m.sessions_active() <= 3);
    }

    #[test]
    fn malformed_sample_poisons_only_itself() {
        let m = manager(ServeConfig::default());
        assert_eq!(m.ingest(1, sample(0)), Admit::Accepted);
        // Wrong antenna count: analysis rejects it, session survives.
        let bad = SyncedSample {
            seq: 1,
            antennas: vec![None],
        };
        assert_eq!(m.ingest(1, bad), Admit::Accepted);
        assert_eq!(m.ingest(1, sample(1)), Admit::Accepted);
        assert_eq!(m.process(), 2, "two good samples analysed");
        assert_eq!(m.sessions_active(), 1);
        let report = m.report();
        let stage = report.stage(stage::SERVE).unwrap();
        assert!(stage
            .counters
            .iter()
            .any(|(k, v)| k == "samples_errored" && *v == 1));
    }

    #[test]
    fn traced_samples_decompose_into_spans_and_feed_attribution() {
        let m = SessionManager::new(
            geometry(),
            config(),
            ServeConfig::builder().trace_every(1).build().unwrap(),
        )
        .unwrap();
        for seq in 0..5 {
            assert_eq!(m.ingest(3, sample(seq)), Admit::Accepted);
        }
        m.process();
        let traces = m.traces(16);
        assert_eq!(traces.len(), 5, "every admission traced at cadence 1");
        for t in &traces {
            assert_eq!(t.session_id, 3);
            assert!(t.span_us(SpanKind::Admission).is_some(), "admission span");
            assert!(t.span_us(SpanKind::QueueWait).is_some(), "queue_wait span");
            assert!(
                t.span_us(SpanKind::BatchSchedule).is_some(),
                "batch_schedule span"
            );
            assert!(
                t.span_us(SpanKind::IncrementalIngest).is_some(),
                "ingest span"
            );
        }
        m.note_wire_out(37);
        assert_eq!(
            m.traces(16).last().unwrap().span_us(SpanKind::EventWireOut),
            Some(37)
        );
        let report = m.report();
        let attr = report
            .stage(stage::LATENCY_ATTRIBUTION)
            .expect("attribution stage");
        for name in [
            rim_obs::attribution_metric::ADMISSION_US,
            rim_obs::attribution_metric::QUEUE_WAIT_US,
            rim_obs::attribution_metric::BATCH_SCHEDULE_US,
            rim_obs::attribution_metric::COMPUTE_US,
            rim_obs::attribution_metric::TOTAL_US,
        ] {
            assert!(
                attr.distributions
                    .iter()
                    .any(|d| d.name == name && d.count == 5),
                "{name} fed once per traced sample"
            );
        }
        // The exposition text carries the flat metric lines and traces.
        let text = m.metrics_text();
        assert!(text.starts_with("# rim-serve metrics v1\n"), "{text}");
        assert!(text.contains("serve.samples_admitted 5"), "{text}");
        assert!(text.contains("window.span_s "), "{text}");
        assert!(text.contains("queue_wait="), "{text}");
    }

    #[test]
    fn tracing_off_keeps_the_serve_path_traceless() {
        let m = manager(ServeConfig::default());
        for seq in 0..3 {
            m.ingest(1, sample(seq));
        }
        m.process();
        m.note_wire_out(10);
        assert!(m.traces(16).is_empty());
        assert!(m.report().stage(stage::LATENCY_ATTRIBUTION).is_none());
    }

    #[test]
    fn per_session_reports_are_isolated() {
        let m = manager(ServeConfig::default());
        for seq in 0..4 {
            m.ingest(1, sample(seq));
        }
        m.ingest(2, sample(0));
        m.process();
        let r1 = m.session_report(1).unwrap();
        let r2 = m.session_report(2).unwrap();
        let pushed = |r: &RunReport| {
            r.stage(stage::STREAM)
                .and_then(|s| {
                    s.counters
                        .iter()
                        .find(|(k, _)| k == "samples_pushed")
                        .map(|(_, v)| *v)
                })
                .unwrap_or(0)
        };
        assert_eq!(pushed(&r1), 4);
        assert_eq!(pushed(&r2), 1);
        assert!(m.session_report(99).is_none());
    }
}
