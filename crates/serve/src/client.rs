//! A minimal blocking client for the wire protocol.
//!
//! This is the loopback half used by the CLI's self-drive mode, the
//! integration tests, and the serve bench. It is strictly
//! request/response: one frame out, one frame back, so a single client
//! needs no demultiplexing. Run one client per concurrent session.

use crate::manager::Admit;
use crate::wire::{self, Request, Response};
use rim_core::{ImuSample, StreamEvent};
use rim_csi::sync::SyncedSample;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Ceiling on one throttle-retry sleep, milliseconds. The exponential
/// schedule saturates here however far behind the server is.
pub const MAX_BACKOFF_MS: u64 = 250;

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
    /// xorshift64* state for retry jitter; seeded per connection from
    /// the ephemeral local port so concurrent clients de-correlate
    /// without any clock or OS entropy dependency.
    rng: u64,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    /// Propagates connect/configuration I/O errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let seed = stream
            .local_addr()
            .map(|a| u64::from(a.port()))
            .unwrap_or(1);
        Ok(Client {
            stream,
            rng: seed | 0x9E37_79B9_7F4A_7C15,
        })
    }

    /// Offers one sample to a session and returns the admission decision
    /// plus any events the session emitted since the last response.
    ///
    /// # Errors
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a protocol
    /// violation (garbled frame, wrong response type).
    pub fn ingest(
        &mut self,
        session_id: u64,
        sample: SyncedSample,
    ) -> io::Result<(Admit, Vec<StreamEvent>)> {
        match self.round_trip(&Request::Ingest { session_id, sample })? {
            Response::Admit { admit, events } => Ok((admit, events)),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Like [`Client::ingest`], but honours the backpressure contract:
    /// on [`Admit::Throttled`] it backs off and offers the sample again
    /// until it is accepted or rejected. The sleep starts at the
    /// server's `retry_after` hint, doubles per consecutive retry up to
    /// [`MAX_BACKOFF_MS`], and carries jitter (a deterministic xorshift
    /// stream per client) so a fleet of throttled clients does not
    /// retry in lockstep. Events drained across retries are
    /// concatenated in order.
    ///
    /// # Errors
    /// Same as [`Client::ingest`].
    pub fn ingest_blocking(
        &mut self,
        session_id: u64,
        sample: SyncedSample,
    ) -> io::Result<(Admit, Vec<StreamEvent>)> {
        let mut collected = Vec::new();
        let mut attempt = 0u32;
        loop {
            let (admit, events) = self.ingest(session_id, sample.clone())?;
            collected.extend(events);
            match admit {
                Admit::Throttled { retry_after } => {
                    let delay = backoff_delay_ms(retry_after, attempt, &mut self.rng);
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(delay));
                }
                decided => return Ok((decided, collected)),
            }
        }
    }

    /// Offers one batch of IMU samples to a session and returns the
    /// admission decision plus any events the session emitted —
    /// including the [`rim_core::StreamEvent::Fused`] estimate the
    /// batch itself produces once processed.
    ///
    /// # Errors
    /// Same as [`Client::ingest`].
    pub fn ingest_imu(
        &mut self,
        session_id: u64,
        samples: Vec<ImuSample>,
    ) -> io::Result<(Admit, Vec<StreamEvent>)> {
        match self.round_trip(&Request::IngestImu {
            session_id,
            samples,
        })? {
            Response::Admit { admit, events } => Ok((admit, events)),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Like [`Client::ingest_imu`], but honours the backpressure
    /// contract the way [`Client::ingest_blocking`] does: backs off on
    /// [`Admit::Throttled`] and re-offers the batch until decided,
    /// concatenating events drained across retries.
    ///
    /// # Errors
    /// Same as [`Client::ingest`].
    pub fn ingest_imu_blocking(
        &mut self,
        session_id: u64,
        samples: Vec<ImuSample>,
    ) -> io::Result<(Admit, Vec<StreamEvent>)> {
        let mut collected = Vec::new();
        let mut attempt = 0u32;
        loop {
            let (admit, events) = self.ingest_imu(session_id, samples.clone())?;
            collected.extend(events);
            match admit {
                Admit::Throttled { retry_after } => {
                    let delay = backoff_delay_ms(retry_after, attempt, &mut self.rng);
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(delay));
                }
                decided => return Ok((decided, collected)),
            }
        }
    }

    /// Finishes a session, returning every event not yet drained. The
    /// concatenation of all events returned for a session (ingest
    /// responses plus this) is bit-identical to a standalone
    /// [`rim_core::RimStream`] fed the same accepted samples.
    ///
    /// # Errors
    /// Same as [`Client::ingest`].
    pub fn finish(&mut self, session_id: u64) -> io::Result<Vec<StreamEvent>> {
        match self.round_trip(&Request::Finish { session_id })? {
            Response::Finished { events } => Ok(events),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Fetches the server's live telemetry snapshot: the flat
    /// `stage.metric value` text exposition plus recent trace
    /// summaries. Read-only; safe to call mid-run from a separate
    /// connection.
    ///
    /// # Errors
    /// Same as [`Client::ingest`].
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.round_trip(&Request::Metrics)? {
            Response::MetricsSnapshot { text } => Ok(text),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Asks the server to shut down and waits for its acknowledgement.
    ///
    /// # Errors
    /// Same as [`Client::ingest`].
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(protocol_violation(&other)),
        }
    }

    fn round_trip(&mut self, request: &Request) -> io::Result<Response> {
        wire::write_frame(&mut self.stream, &request.encode())?;
        let body = wire::read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server hung up before responding",
            )
        })?;
        Response::decode(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

fn protocol_violation(got: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response type: {got:?}"),
    )
}

/// One step of a xorshift64* pseudo-random stream. Statistical quality
/// is ample for retry jitter, and the determinism keeps tests exact.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The throttle-retry schedule: the server's `retry_after` hint doubled
/// per consecutive retry, capped at [`MAX_BACKOFF_MS`], with jitter
/// drawn uniformly from the upper half of the capped delay — i.e. a
/// sleep in `[cap/2, cap]`. The hint stays the floor of the schedule
/// (attempt 0 jitters around the hint itself), so a lightly loaded
/// server's small hints stay small.
fn backoff_delay_ms(retry_after_hint: u64, attempt: u32, rng: &mut u64) -> u64 {
    let base = retry_after_hint.max(1);
    let doubled = base.saturating_mul(1u64 << attempt.min(16));
    let capped = doubled.clamp(1, MAX_BACKOFF_MS);
    let low = capped.div_ceil(2);
    low + xorshift(rng) % (capped - low + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_the_hint_until_the_cap() {
        let mut rng = 7u64;
        // With hint 5 the schedule's ceilings are 5, 10, 20, 40, ...
        // capped at MAX_BACKOFF_MS; every draw falls in [ceil/2, ceil].
        for attempt in 0..12u32 {
            let ceil = (5u64 << attempt.min(16)).min(MAX_BACKOFF_MS);
            for _ in 0..64 {
                let d = backoff_delay_ms(5, attempt, &mut rng);
                assert!(
                    d >= ceil.div_ceil(2) && d <= ceil,
                    "attempt {attempt}: delay {d} outside [{}, {ceil}]",
                    ceil.div_ceil(2)
                );
            }
        }
    }

    #[test]
    fn backoff_saturates_at_the_cap_for_huge_attempts() {
        let mut rng = 3u64;
        for attempt in [32u32, 63, u32::MAX] {
            let d = backoff_delay_ms(1000, attempt, &mut rng);
            assert!((MAX_BACKOFF_MS / 2..=MAX_BACKOFF_MS).contains(&d), "{d}");
        }
    }

    #[test]
    fn backoff_floors_a_zero_hint_and_jitters_deterministically() {
        let mut a = 42u64;
        let mut b = 42u64;
        assert!(backoff_delay_ms(0, 0, &mut a) >= 1);
        a = 42;
        let first: Vec<u64> = (0..8).map(|i| backoff_delay_ms(7, i, &mut a)).collect();
        let second: Vec<u64> = (0..8).map(|i| backoff_delay_ms(7, i, &mut b)).collect();
        assert_eq!(first, second, "same seed, same schedule");
    }
}
