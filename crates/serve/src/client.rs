//! A minimal blocking client for the wire protocol.
//!
//! This is the loopback half used by the CLI's self-drive mode, the
//! integration tests, and the serve bench. It is strictly
//! request/response: one frame out, one frame back, so a single client
//! needs no demultiplexing. Run one client per concurrent session.

use crate::manager::Admit;
use crate::wire::{self, Request, Response};
use rim_core::StreamEvent;
use rim_csi::sync::SyncedSample;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    /// Propagates connect/configuration I/O errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Offers one sample to a session and returns the admission decision
    /// plus any events the session emitted since the last response.
    ///
    /// # Errors
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a protocol
    /// violation (garbled frame, wrong response type).
    pub fn ingest(
        &mut self,
        session_id: u64,
        sample: SyncedSample,
    ) -> io::Result<(Admit, Vec<StreamEvent>)> {
        match self.round_trip(&Request::Ingest { session_id, sample })? {
            Response::Admit { admit, events } => Ok((admit, events)),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Like [`Client::ingest`], but honours the backpressure contract:
    /// on [`Admit::Throttled`] it sleeps for the server's retry hint and
    /// offers the sample again until it is accepted or rejected. Events
    /// drained across retries are concatenated in order.
    ///
    /// # Errors
    /// Same as [`Client::ingest`].
    pub fn ingest_blocking(
        &mut self,
        session_id: u64,
        sample: SyncedSample,
    ) -> io::Result<(Admit, Vec<StreamEvent>)> {
        let mut collected = Vec::new();
        loop {
            let (admit, events) = self.ingest(session_id, sample.clone())?;
            collected.extend(events);
            match admit {
                Admit::Throttled { retry_after } => {
                    std::thread::sleep(Duration::from_millis(retry_after.max(1)));
                }
                decided => return Ok((decided, collected)),
            }
        }
    }

    /// Finishes a session, returning every event not yet drained. The
    /// concatenation of all events returned for a session (ingest
    /// responses plus this) is bit-identical to a standalone
    /// [`rim_core::RimStream`] fed the same accepted samples.
    ///
    /// # Errors
    /// Same as [`Client::ingest`].
    pub fn finish(&mut self, session_id: u64) -> io::Result<Vec<StreamEvent>> {
        match self.round_trip(&Request::Finish { session_id })? {
            Response::Finished { events } => Ok(events),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Fetches the server's live telemetry snapshot: the flat
    /// `stage.metric value` text exposition plus recent trace
    /// summaries. Read-only; safe to call mid-run from a separate
    /// connection.
    ///
    /// # Errors
    /// Same as [`Client::ingest`].
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.round_trip(&Request::Metrics)? {
            Response::MetricsSnapshot { text } => Ok(text),
            other => Err(protocol_violation(&other)),
        }
    }

    /// Asks the server to shut down and waits for its acknowledgement.
    ///
    /// # Errors
    /// Same as [`Client::ingest`].
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(protocol_violation(&other)),
        }
    }

    fn round_trip(&mut self, request: &Request) -> io::Result<Response> {
        wire::write_frame(&mut self.stream, &request.encode())?;
        let body = wire::read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server hung up before responding",
            )
        })?;
        Response::decode(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

fn protocol_violation(got: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response type: {got:?}"),
    )
}
