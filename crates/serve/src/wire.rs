//! The length-prefixed binary wire protocol.
//!
//! Every message is one frame: a `u32` big-endian body length followed
//! by the body. Bodies start with a one-byte message tag. An ingest
//! carries the session id and a [`SyncedSample`] in the same compact
//! encoding the capture storage format uses
//! ([`SyncedSample::encode`]), so a capture file can be replayed onto
//! the wire without transcoding. Responses carry the admission decision
//! plus any events the session has emitted since the last response;
//! floats travel as raw IEEE-754 bits, so estimates cross the wire
//! bit-identically.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rim_core::{
    Confidence, DegradeReason, FusedMode, ImuSample, SegmentEstimate, SegmentKind, StreamEvent,
};
use rim_csi::frame::DecodeError;
use rim_csi::sync::SyncedSample;
use rim_dsp::geom::{Point2, Vec2};
use std::io::{self, Read, Write};

use crate::manager::{Admit, RejectReason};

/// Upper bound on a declared frame length (a dense multi-antenna sample
/// is ~100 KiB; anything near this bound is a corrupt or hostile peer).
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Message tags (first body byte).
mod tag {
    pub const INGEST: u8 = 0x01;
    pub const FINISH: u8 = 0x02;
    pub const SHUTDOWN: u8 = 0x03;
    pub const METRICS: u8 = 0x04;
    pub const INGEST_IMU: u8 = 0x05;
    pub const ADMIT: u8 = 0x81;
    pub const FINISHED: u8 = 0x82;
    pub const BYE: u8 = 0x83;
    pub const METRICS_SNAPSHOT: u8 = 0x84;
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Offer one synced sample to a session.
    Ingest {
        /// Tenant id; sessions are created on first contact.
        session_id: u64,
        /// The sample (sequence number travels inside).
        sample: SyncedSample,
    },
    /// Offer a batch of IMU samples to a session's fusion layer.
    IngestImu {
        /// Tenant id; sessions are created on first contact.
        session_id: u64,
        /// The batch, oldest first (timestamps travel inside).
        samples: Vec<ImuSample>,
    },
    /// Flush and close a session, returning its remaining events.
    Finish {
        /// Tenant id.
        session_id: u64,
    },
    /// Stop the server: drain, refuse new samples, close connections.
    Shutdown,
    /// Ask for a read-only telemetry snapshot (text exposition).
    Metrics,
}

/// A server→client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// Outcome of an [`Request::Ingest`], plus any events the session
    /// emitted since the last response to it.
    Admit {
        /// The admission decision.
        admit: Admit,
        /// Events drained from the session, in emission order.
        events: Vec<StreamEvent>,
    },
    /// Outcome of a [`Request::Finish`].
    Finished {
        /// Every undrained event of the finished session.
        events: Vec<StreamEvent>,
    },
    /// Acknowledges a [`Request::Shutdown`].
    Bye,
    /// Answers a [`Request::Metrics`] with the flat text exposition
    /// (`stage.metric value` lines plus recent trace summaries).
    MetricsSnapshot {
        /// The exposition text, newline-delimited UTF-8.
        text: String,
    },
}

/// Errors decoding a wire message.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// Body shorter than its declared layout.
    Truncated,
    /// Unknown message, admit, event, or reason tag.
    BadTag(u8),
    /// A frame exceeded [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// The embedded CSI payload failed to decode.
    Payload(DecodeError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire message truncated"),
            WireError::BadTag(t) => write!(f, "unknown wire tag {t:#04x}"),
            WireError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            WireError::Payload(e) => write!(f, "bad payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Payload(e)
    }
}

impl Request {
    /// Serialises the request to a full frame (length prefix included).
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        match self {
            Request::Ingest { session_id, sample } => {
                body.put_u8(tag::INGEST);
                body.put_u64(*session_id);
                body.put_slice(&sample.encode());
            }
            Request::IngestImu {
                session_id,
                samples,
            } => {
                body.put_u8(tag::INGEST_IMU);
                body.put_u64(*session_id);
                body.put_u32(samples.len() as u32);
                for s in samples {
                    body.put_u64(s.t_us);
                    body.put_f64(s.accel_body.x);
                    body.put_f64(s.accel_body.y);
                    body.put_f64(s.gyro_z);
                    // A magnetometer heading is a wrapped angle and never
                    // legitimately NaN, so NaN is the absence sentinel.
                    body.put_f64(s.mag_orientation.unwrap_or(f64::NAN));
                }
            }
            Request::Finish { session_id } => {
                body.put_u8(tag::FINISH);
                body.put_u64(*session_id);
            }
            Request::Shutdown => body.put_u8(tag::SHUTDOWN),
            Request::Metrics => body.put_u8(tag::METRICS),
        }
        prefix(body)
    }

    /// Decodes a request from a frame body (length prefix removed).
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode(mut body: &[u8]) -> Result<Request, WireError> {
        if body.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        match body.get_u8() {
            tag::INGEST => {
                if body.remaining() < 8 {
                    return Err(WireError::Truncated);
                }
                let session_id = body.get_u64();
                let sample = SyncedSample::decode(body)?;
                Ok(Request::Ingest { session_id, sample })
            }
            tag::INGEST_IMU => {
                if body.remaining() < 8 + 4 {
                    return Err(WireError::Truncated);
                }
                let session_id = body.get_u64();
                let n = body.get_u32() as usize;
                if body.remaining() < n * 40 {
                    return Err(WireError::Truncated);
                }
                let mut samples = Vec::with_capacity(n);
                for _ in 0..n {
                    let t_us = body.get_u64();
                    let accel_body = Vec2::new(body.get_f64(), body.get_f64());
                    let gyro_z = body.get_f64();
                    let mag = body.get_f64();
                    samples.push(ImuSample {
                        t_us,
                        accel_body,
                        gyro_z,
                        mag_orientation: (!mag.is_nan()).then_some(mag),
                    });
                }
                Ok(Request::IngestImu {
                    session_id,
                    samples,
                })
            }
            tag::FINISH => {
                if body.remaining() < 8 {
                    return Err(WireError::Truncated);
                }
                Ok(Request::Finish {
                    session_id: body.get_u64(),
                })
            }
            tag::SHUTDOWN => Ok(Request::Shutdown),
            tag::METRICS => Ok(Request::Metrics),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Response {
    /// Serialises the response to a full frame (length prefix included).
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        match self {
            Response::Admit { admit, events } => {
                body.put_u8(tag::ADMIT);
                match admit {
                    Admit::Accepted => {
                        body.put_u8(0);
                        body.put_u64(0);
                    }
                    Admit::Throttled { retry_after } => {
                        body.put_u8(1);
                        body.put_u64(*retry_after);
                    }
                    Admit::Rejected { reason } => {
                        body.put_u8(2);
                        body.put_u64(match reason {
                            RejectReason::SessionTableFull => 0,
                            RejectReason::ShuttingDown => 1,
                            RejectReason::Backpressure => 2,
                        });
                    }
                }
                put_events(&mut body, events);
            }
            Response::Finished { events } => {
                body.put_u8(tag::FINISHED);
                put_events(&mut body, events);
            }
            Response::Bye => body.put_u8(tag::BYE),
            Response::MetricsSnapshot { text } => {
                body.put_u8(tag::METRICS_SNAPSHOT);
                body.put_u32(text.len() as u32);
                body.put_slice(text.as_bytes());
            }
        }
        prefix(body)
    }

    /// Decodes a response from a frame body (length prefix removed).
    ///
    /// # Errors
    /// See [`WireError`].
    pub fn decode(mut body: &[u8]) -> Result<Response, WireError> {
        if body.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        match body.get_u8() {
            tag::ADMIT => {
                if body.remaining() < 9 {
                    return Err(WireError::Truncated);
                }
                let code = body.get_u8();
                let aux = body.get_u64();
                let admit = match code {
                    0 => Admit::Accepted,
                    1 => Admit::Throttled { retry_after: aux },
                    2 => Admit::Rejected {
                        reason: match aux {
                            0 => RejectReason::SessionTableFull,
                            1 => RejectReason::ShuttingDown,
                            2 => RejectReason::Backpressure,
                            _ => return Err(WireError::BadTag(aux as u8)),
                        },
                    },
                    t => return Err(WireError::BadTag(t)),
                };
                let events = get_events(&mut body)?;
                Ok(Response::Admit { admit, events })
            }
            tag::FINISHED => {
                let events = get_events(&mut body)?;
                Ok(Response::Finished { events })
            }
            tag::BYE => Ok(Response::Bye),
            tag::METRICS_SNAPSHOT => {
                if body.remaining() < 4 {
                    return Err(WireError::Truncated);
                }
                let len = body.get_u32() as usize;
                if body.remaining() < len {
                    return Err(WireError::Truncated);
                }
                let text = String::from_utf8(body[..len].to_vec())
                    .map_err(|_| WireError::BadTag(tag::METRICS_SNAPSHOT))?;
                Ok(Response::MetricsSnapshot { text })
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Prepends the `u32` length prefix to a finished body.
fn prefix(body: BytesMut) -> Bytes {
    let mut framed = BytesMut::with_capacity(4 + body.len());
    framed.put_u32(body.len() as u32);
    framed.put_slice(&body);
    framed.freeze()
}

/// Reads one length-prefixed frame body. Returns `Ok(None)` on a clean
/// EOF at a frame boundary (the peer hung up between messages).
///
/// # Errors
/// Propagates I/O errors; an oversized declared length surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::TooLarge(len).to_string(),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Writes one already-framed message (as produced by the `encode`
/// methods, length prefix included).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_frame<W: Write>(w: &mut W, framed: &[u8]) -> io::Result<()> {
    w.write_all(framed)
}

/// Event tags, derived from the one registry in
/// [`rim_core::StreamEventKind::wire_tag`] (documented in DESIGN.md) so
/// this module cannot drift from core's numbering.
mod event_tag {
    use rim_core::StreamEventKind;

    pub const STARTED: u8 = StreamEventKind::MovementStarted.wire_tag();
    pub const SEGMENT: u8 = StreamEventKind::Segment.wire_tag();
    pub const STOPPED: u8 = StreamEventKind::MovementStopped.wire_tag();
    pub const DEGRADED: u8 = StreamEventKind::Degraded.wire_tag();
    pub const RECOVERED: u8 = StreamEventKind::Recovered.wire_tag();
    pub const PROVISIONAL: u8 = StreamEventKind::Provisional.wire_tag();
    pub const FUSED: u8 = StreamEventKind::Fused.wire_tag();
}

fn put_events(body: &mut BytesMut, events: &[StreamEvent]) {
    // StreamEvent is #[non_exhaustive]: a variant added after this build
    // has no encoding here, and put_event writes nothing for it. Patch
    // the count afterwards so such events are skipped cleanly instead of
    // corrupting the frame.
    let count_at = body.len();
    body.put_u32(0);
    let mut n: u32 = 0;
    for e in events {
        let before = body.len();
        put_event(body, e);
        if body.len() > before {
            n += 1;
        }
    }
    body[count_at..count_at + 4].copy_from_slice(&n.to_be_bytes());
}

fn put_event(body: &mut BytesMut, event: &StreamEvent) {
    match event {
        StreamEvent::MovementStarted { at } => {
            body.put_u8(event_tag::STARTED);
            body.put_u64(*at as u64);
        }
        StreamEvent::Segment(seg) => {
            body.put_u8(event_tag::SEGMENT);
            body.put_u64(seg.start as u64);
            body.put_u64(seg.end as u64);
            body.put_u8(match seg.kind {
                SegmentKind::Translation => 0,
                SegmentKind::Rotation => 1,
            });
            body.put_f64(seg.distance_m);
            match seg.heading_device {
                Some(h) => {
                    body.put_u8(1);
                    body.put_f64(h);
                }
                None => {
                    body.put_u8(0);
                    body.put_f64(0.0);
                }
            }
            body.put_f64(seg.rotation_rad);
            body.put_f64(seg.confidence.peak_margin);
            body.put_f64(seg.confidence.interpolated_fraction);
            body.put_f64(seg.confidence.alignment_coverage);
        }
        StreamEvent::MovementStopped { at } => {
            body.put_u8(event_tag::STOPPED);
            body.put_u64(*at as u64);
        }
        StreamEvent::Degraded { at, reason } => {
            body.put_u8(event_tag::DEGRADED);
            body.put_u64(*at as u64);
            match reason {
                DegradeReason::InputGap { lost } => {
                    body.put_u8(0);
                    body.put_f64(*lost as f64);
                }
                DegradeReason::HighInterpolation { fraction } => {
                    body.put_u8(1);
                    body.put_f64(*fraction);
                }
                DegradeReason::LowAlignment { coverage } => {
                    body.put_u8(2);
                    body.put_f64(*coverage);
                }
            }
        }
        StreamEvent::Recovered { at } => {
            body.put_u8(event_tag::RECOVERED);
            body.put_u64(*at as u64);
        }
        StreamEvent::Provisional {
            at,
            distance_so_far,
            heading,
            confidence,
        } => {
            body.put_u8(event_tag::PROVISIONAL);
            body.put_u64(*at as u64);
            body.put_f64(*distance_so_far);
            match heading {
                Some(h) => {
                    body.put_u8(1);
                    body.put_f64(*h);
                }
                None => {
                    body.put_u8(0);
                    body.put_f64(0.0);
                }
            }
            body.put_f64(confidence.peak_margin);
            body.put_f64(confidence.interpolated_fraction);
            body.put_f64(confidence.alignment_coverage);
        }
        StreamEvent::Fused {
            t_us,
            position,
            heading,
            velocity,
            covariance_trace,
            mode,
        } => {
            body.put_u8(event_tag::FUSED);
            body.put_u64(*t_us);
            body.put_f64(position.x);
            body.put_f64(position.y);
            body.put_f64(*heading);
            body.put_f64(*velocity);
            body.put_f64(*covariance_trace);
            body.put_u8(match mode {
                FusedMode::RimAnchored => 0,
                FusedMode::ImuCoasting => 1,
                FusedMode::Zupt => 2,
            });
        }
        // Unknown (future) variants: encode nothing; put_events skips
        // them via the patched count.
        _ => {}
    }
}

fn get_events(body: &mut &[u8]) -> Result<Vec<StreamEvent>, WireError> {
    if body.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let n = body.get_u32();
    let mut events = Vec::with_capacity(n.min(4096) as usize);
    for _ in 0..n {
        events.push(get_event(body)?);
    }
    Ok(events)
}

fn get_event(body: &mut &[u8]) -> Result<StreamEvent, WireError> {
    if body.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    match body.get_u8() {
        event_tag::STARTED => {
            if body.remaining() < 8 {
                return Err(WireError::Truncated);
            }
            Ok(StreamEvent::MovementStarted {
                at: body.get_u64() as usize,
            })
        }
        event_tag::SEGMENT => {
            if body.remaining() < 8 + 8 + 1 + 8 + 9 + 8 + 24 {
                return Err(WireError::Truncated);
            }
            let start = body.get_u64() as usize;
            let end = body.get_u64() as usize;
            let kind = match body.get_u8() {
                0 => SegmentKind::Translation,
                1 => SegmentKind::Rotation,
                t => return Err(WireError::BadTag(t)),
            };
            let distance_m = body.get_f64();
            let has_heading = body.get_u8();
            let heading = body.get_f64();
            let heading_device = match has_heading {
                0 => None,
                1 => Some(heading),
                t => return Err(WireError::BadTag(t)),
            };
            let rotation_rad = body.get_f64();
            let confidence = Confidence {
                peak_margin: body.get_f64(),
                interpolated_fraction: body.get_f64(),
                alignment_coverage: body.get_f64(),
            };
            Ok(StreamEvent::Segment(SegmentEstimate {
                start,
                end,
                kind,
                distance_m,
                heading_device,
                rotation_rad,
                confidence,
            }))
        }
        event_tag::STOPPED => {
            if body.remaining() < 8 {
                return Err(WireError::Truncated);
            }
            Ok(StreamEvent::MovementStopped {
                at: body.get_u64() as usize,
            })
        }
        event_tag::DEGRADED => {
            if body.remaining() < 8 + 1 + 8 {
                return Err(WireError::Truncated);
            }
            let at = body.get_u64() as usize;
            let reason_tag = body.get_u8();
            let value = body.get_f64();
            let reason = match reason_tag {
                0 => DegradeReason::InputGap { lost: value as u64 },
                1 => DegradeReason::HighInterpolation { fraction: value },
                2 => DegradeReason::LowAlignment { coverage: value },
                t => return Err(WireError::BadTag(t)),
            };
            Ok(StreamEvent::Degraded { at, reason })
        }
        event_tag::RECOVERED => {
            if body.remaining() < 8 {
                return Err(WireError::Truncated);
            }
            Ok(StreamEvent::Recovered {
                at: body.get_u64() as usize,
            })
        }
        event_tag::PROVISIONAL => {
            if body.remaining() < 8 + 8 + 9 + 24 {
                return Err(WireError::Truncated);
            }
            let at = body.get_u64() as usize;
            let distance_so_far = body.get_f64();
            let has_heading = body.get_u8();
            let heading_value = body.get_f64();
            let heading = match has_heading {
                0 => None,
                1 => Some(heading_value),
                t => return Err(WireError::BadTag(t)),
            };
            let confidence = Confidence {
                peak_margin: body.get_f64(),
                interpolated_fraction: body.get_f64(),
                alignment_coverage: body.get_f64(),
            };
            Ok(StreamEvent::Provisional {
                at,
                distance_so_far,
                heading,
                confidence,
            })
        }
        event_tag::FUSED => {
            if body.remaining() < 8 + 40 + 1 {
                return Err(WireError::Truncated);
            }
            let t_us = body.get_u64();
            let position = Point2::new(body.get_f64(), body.get_f64());
            let heading = body.get_f64();
            let velocity = body.get_f64();
            let covariance_trace = body.get_f64();
            let mode = match body.get_u8() {
                0 => FusedMode::RimAnchored,
                1 => FusedMode::ImuCoasting,
                2 => FusedMode::Zupt,
                t => return Err(WireError::BadTag(t)),
            };
            Ok(StreamEvent::Fused {
                t_us,
                position,
                heading,
                velocity,
                covariance_trace,
                mode,
            })
        }
        t => Err(WireError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_core::StreamEventKind;
    use rim_csi::frame::CsiSnapshot;
    use rim_dsp::complex::Complex64;

    fn sample() -> SyncedSample {
        SyncedSample {
            seq: 31,
            antennas: vec![
                Some(CsiSnapshot {
                    per_tx: vec![vec![Complex64::new(0.25, -1.5); 4]],
                }),
                None,
            ],
        }
    }

    fn events() -> Vec<StreamEvent> {
        vec![
            StreamEvent::MovementStarted { at: 12 },
            StreamEvent::Segment(SegmentEstimate {
                start: 12,
                end: 240,
                kind: SegmentKind::Translation,
                distance_m: 1.875,
                heading_device: Some(-0.125),
                rotation_rad: 0.0,
                confidence: Confidence {
                    peak_margin: 0.25,
                    interpolated_fraction: 0.0625,
                    alignment_coverage: 0.875,
                },
            }),
            StreamEvent::Provisional {
                at: 120,
                distance_so_far: 0.9375,
                heading: Some(0.25),
                confidence: Confidence {
                    peak_margin: 0.1875,
                    interpolated_fraction: 0.03125,
                    alignment_coverage: 0.75,
                },
            },
            StreamEvent::Provisional {
                at: 180,
                distance_so_far: 1.5,
                heading: None,
                confidence: Confidence {
                    peak_margin: 0.5,
                    interpolated_fraction: 0.0,
                    alignment_coverage: 0.8125,
                },
            },
            StreamEvent::Degraded {
                at: 250,
                reason: DegradeReason::InputGap { lost: 40 },
            },
            StreamEvent::Recovered { at: 300 },
            StreamEvent::MovementStopped { at: 301 },
            StreamEvent::Fused {
                t_us: 1_500_000,
                position: Point2::new(1.5, -0.25),
                heading: 0.75,
                velocity: 1.125,
                covariance_trace: 0.0625,
                mode: FusedMode::ImuCoasting,
            },
            StreamEvent::Fused {
                t_us: 2_000_000,
                position: Point2::new(2.0, 0.5),
                heading: -0.5,
                velocity: 0.0,
                covariance_trace: 0.03125,
                mode: FusedMode::Zupt,
            },
        ]
    }

    fn round_trip_request(req: &Request) -> Request {
        let framed = req.encode();
        let mut cursor = &framed[..];
        let body = read_frame(&mut cursor).unwrap().unwrap();
        Request::decode(&body).unwrap()
    }

    fn round_trip_response(resp: &Response) -> Response {
        let framed = resp.encode();
        let mut cursor = &framed[..];
        let body = read_frame(&mut cursor).unwrap().unwrap();
        Response::decode(&body).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ingest {
                session_id: 99,
                sample: sample(),
            },
            Request::IngestImu {
                session_id: 99,
                samples: vec![
                    ImuSample {
                        t_us: 10_000,
                        accel_body: Vec2::new(0.125, -0.5),
                        gyro_z: 0.25,
                        mag_orientation: Some(1.5),
                    },
                    ImuSample {
                        t_us: 20_000,
                        accel_body: Vec2::new(0.0, 0.0),
                        gyro_z: -0.125,
                        mag_orientation: None,
                    },
                ],
            },
            Request::IngestImu {
                session_id: 3,
                samples: vec![],
            },
            Request::Finish { session_id: 7 },
            Request::Shutdown,
            Request::Metrics,
        ] {
            assert_eq!(round_trip_request(&req), req);
        }
    }

    #[test]
    fn event_tags_track_the_core_registry() {
        // The serve tags are derived consts; this pins the registry
        // values themselves so renumbering in core is caught loudly.
        for (kind, tag) in [
            (StreamEventKind::MovementStarted, 0u8),
            (StreamEventKind::Segment, 1),
            (StreamEventKind::MovementStopped, 2),
            (StreamEventKind::Degraded, 3),
            (StreamEventKind::Recovered, 4),
            (StreamEventKind::Provisional, 5),
            (StreamEventKind::Fused, 6),
        ] {
            assert_eq!(kind.wire_tag(), tag, "{kind:?}");
            assert_eq!(StreamEventKind::from_wire_tag(tag), Some(kind));
        }
        assert_eq!(StreamEventKind::from_wire_tag(7), None);
    }

    #[test]
    fn truncated_imu_batch_is_rejected() {
        let framed = Request::IngestImu {
            session_id: 1,
            samples: vec![ImuSample {
                t_us: 1,
                accel_body: Vec2::new(0.0, 0.0),
                gyro_z: 0.0,
                mag_orientation: None,
            }],
        }
        .encode();
        let mut cursor = &framed[..];
        let body = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(
            Request::decode(&body[..body.len() - 5]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        for resp in [
            Response::Admit {
                admit: Admit::Accepted,
                events: events(),
            },
            Response::Admit {
                admit: Admit::Throttled { retry_after: 17 },
                events: vec![],
            },
            Response::Admit {
                admit: Admit::Rejected {
                    reason: RejectReason::ShuttingDown,
                },
                events: vec![],
            },
            Response::Admit {
                admit: Admit::Rejected {
                    reason: RejectReason::Backpressure,
                },
                events: vec![],
            },
            Response::Finished { events: events() },
            Response::Bye,
            Response::MetricsSnapshot {
                text: "# rim-serve metrics v1\nserve.samples_admitted 5\n".into(),
            },
        ] {
            let back = round_trip_response(&resp);
            // StreamEvent has no PartialEq; Debug of f64 prints the
            // shortest round-trippable form, so equal strings ⇔ equal
            // bits.
            assert_eq!(format!("{back:?}"), format!("{resp:?}"));
        }
    }

    #[test]
    fn clean_eof_is_none_and_truncation_errors() {
        let framed = Request::Shutdown.encode();
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
        let mut cut = &framed[..framed.len() - 1];
        assert!(read_frame(&mut cut).is_err());
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocating() {
        let mut framed = Request::Shutdown.encode().to_vec();
        framed[0..4].copy_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let mut cursor = &framed[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_metrics_snapshot_is_rejected() {
        // Declared text length longer than the remaining body.
        let body = [tag::METRICS_SNAPSHOT, 0, 0, 0, 9, b'h', b'i'];
        assert!(matches!(Response::decode(&body), Err(WireError::Truncated)));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert_eq!(Request::decode(&[0x7F]), Err(WireError::BadTag(0x7F)));
        assert!(matches!(
            Response::decode(&[0x7F]),
            Err(WireError::BadTag(0x7F))
        ));
        assert_eq!(Request::decode(&[]), Err(WireError::Truncated));
    }
}
