//! The blocking TCP server: accept loop, per-connection handlers, and
//! the background scheduler thread that ticks the session manager.
//!
//! The server is deliberately std-only: a non-blocking accept loop
//! polled on a short interval, one OS thread per connection (session
//! counts here are tens, not tens of thousands), and one scheduler
//! thread calling [`SessionManager::process`] in a loop. Connection
//! reads block without timeouts — a mid-frame read timeout would
//! desynchronise the length-prefixed stream — and shutdown unblocks
//! them by shutting the sockets down instead.

use crate::manager::SessionManager;
use crate::wire::{self, Request, Response};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How often the accept loop polls for new connections or shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Scheduler back-off when a tick found nothing to analyse.
const IDLE_BACKOFF: Duration = Duration::from_millis(1);

/// State shared between the server handle and its threads.
struct Shared {
    manager: Arc<SessionManager>,
    stop: AtomicBool,
    /// Clones of accepted sockets, kept so shutdown can unblock
    /// handlers parked in a blocking read.
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn close_connections(&self) {
        for conn in lock(&self.conns).drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running serve instance bound to a TCP address.
///
/// Dropping the handle shuts the server down and joins its threads.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds a listener (use port 0 for an ephemeral port) and starts
    /// the accept loop and the scheduler thread.
    ///
    /// # Errors
    /// Propagates bind/configuration I/O errors.
    pub fn bind<A: ToSocketAddrs>(addr: A, manager: Arc<SessionManager>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            manager,
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        let scheduler = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || scheduler_loop(&shared))
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            scheduler: Some(scheduler),
        })
    }

    /// The bound address (with the resolved port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session manager this server fronts.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.shared.manager
    }

    /// Blocks until the server stops — i.e. until some client sends a
    /// shutdown request (or [`Server::shutdown`] is called from another
    /// handle's thread). Joins the worker threads.
    pub fn wait(&mut self) {
        self.join_threads();
    }

    /// Stops the server: refuses new samples, unblocks and joins every
    /// connection handler, and joins the accept and scheduler threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.manager.shutdown();
        self.shared.stop.store(true, Ordering::Release);
        self.shared.close_connections();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Polls for connections until stop; then unblocks and joins handlers.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Handlers use plain blocking reads.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if let Ok(clone) = stream.try_clone() {
                    lock(&shared.conns).push(clone);
                }
                let shared = Arc::clone(shared);
                handlers.push(thread::spawn(move || handle_connection(stream, &shared)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    shared.close_connections();
    for h in handlers {
        let _ = h.join();
    }
}

/// Ticks the manager until stop, with one final drain tick after.
fn scheduler_loop(shared: &Arc<Shared>) {
    loop {
        let analysed = shared.manager.process();
        if shared.stop.load(Ordering::Acquire) {
            shared.manager.process();
            return;
        }
        if analysed == 0 {
            thread::sleep(IDLE_BACKOFF);
        }
    }
}

/// Serves one connection: read a frame, act, respond, repeat.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    loop {
        let body = match wire::read_frame(&mut stream) {
            Ok(Some(body)) => body,
            // Clean hang-up, server shutdown, or a broken peer — either
            // way this connection is done.
            Ok(None) | Err(_) => return,
        };
        let request = match Request::decode(&body) {
            Ok(request) => request,
            // A garbled frame leaves the stream unframed; drop the
            // connection rather than guess at a resync point.
            Err(_) => return,
        };
        let (response, stop_after) = match request {
            Request::Ingest { session_id, sample } => {
                let admit = shared.manager.ingest(session_id, sample);
                let events = shared.manager.drain_events(session_id);
                (Response::Admit { admit, events }, false)
            }
            Request::Finish { session_id } => {
                let events = shared.manager.finish(session_id);
                (Response::Finished { events }, false)
            }
            Request::Shutdown => {
                shared.manager.shutdown();
                (Response::Bye, true)
            }
            Request::Metrics => {
                let text = shared.manager.metrics_text();
                (Response::MetricsSnapshot { text }, false)
            }
        };
        // Event-bearing responses carry estimates back to the client:
        // time their encode+write so the tracer can close the
        // `event_wire_out` span of the trace that produced them.
        let carries_events = match &response {
            Response::Admit { events, .. } | Response::Finished { events } => !events.is_empty(),
            Response::Bye | Response::MetricsSnapshot { .. } => false,
        };
        let wire_start = std::time::Instant::now();
        if wire::write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
        if carries_events {
            shared
                .manager
                .note_wire_out(wire_start.elapsed().as_micros() as u64);
        }
        if stop_after {
            shared.stop.store(true, Ordering::Release);
            return;
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
