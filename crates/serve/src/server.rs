//! The server handle: binds the listener, runs the reactor threads and
//! the scheduler thread, and owns shutdown.
//!
//! I/O is readiness-driven (see [`crate::reactor`]): a fixed worker set
//! of [`ServeConfig::io_threads`] reactor threads owns every client
//! socket, so the thread count is constant whether ten or ten thousand
//! sessions are connected. One scheduler thread ticks
//! [`SessionManager::process`] — the deadline-ordered cross-session
//! batch scheduler — in a loop.
//!
//! [`ServeConfig::io_threads`]: crate::ServeConfig::io_threads

use crate::manager::SessionManager;
use crate::reactor::{reactor_loop, ReactorShared};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Scheduler back-off when a tick found nothing to analyse.
const IDLE_BACKOFF: Duration = Duration::from_millis(1);

/// A running serve instance bound to a TCP address.
///
/// Dropping the handle shuts the server down and joins its threads.
pub struct Server {
    shared: Arc<ReactorShared>,
    addr: SocketAddr,
    io: Vec<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds a listener (use port 0 for an ephemeral port) and starts
    /// the reactor threads (sized by the manager's
    /// [`crate::ServeConfig::io_threads`]) and the scheduler thread.
    ///
    /// # Errors
    /// Propagates bind/configuration I/O errors.
    pub fn bind<A: ToSocketAddrs>(addr: A, manager: Arc<SessionManager>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let io_threads = manager.serve_config().io_threads();
        let shared = Arc::new(ReactorShared {
            manager,
            stop: AtomicBool::new(false),
            inboxes: (0..io_threads).map(|_| Mutex::new(Vec::new())).collect(),
        });
        let mut listener = Some(listener);
        let mut io = Vec::with_capacity(io_threads);
        for idx in 0..io_threads {
            let shared = Arc::clone(&shared);
            let listener = listener.take();
            io.push(thread::spawn(move || reactor_loop(&shared, idx, listener)));
        }
        let scheduler = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || scheduler_loop(&shared))
        };
        Ok(Server {
            shared,
            addr,
            io,
            scheduler: Some(scheduler),
        })
    }

    /// The bound address (with the resolved port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session manager this server fronts.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.shared.manager
    }

    /// Blocks until the server stops — i.e. until some client sends a
    /// shutdown request (or [`Server::shutdown`] is called from another
    /// handle's thread). Joins the worker threads.
    pub fn wait(&mut self) {
        self.join_threads();
    }

    /// Stops the server: refuses new samples, lets the reactors flush
    /// and close every connection, and joins the reactor and scheduler
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.manager.shutdown();
        self.shared.stop.store(true, Ordering::Release);
        self.join_threads();
    }

    fn join_threads(&mut self) {
        for h in self.io.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Ticks the manager until stop, with one final drain tick after.
fn scheduler_loop(shared: &Arc<ReactorShared>) {
    loop {
        let analysed = shared.manager.process();
        if shared.stop.load(Ordering::Acquire) {
            shared.manager.process();
            return;
        }
        if analysed == 0 {
            thread::sleep(IDLE_BACKOFF);
        }
    }
}
