//! Minimal `poll(2)` binding — the crate's single unsafe block.
//!
//! The house style is dependency-free std-only Rust, and std exposes no
//! readiness API, so the reactor declares the one libc symbol it needs
//! itself. The wrapper owns all the invariants: the slice pointer/length
//! pair handed to the kernel comes straight from a live `&mut [PollFd]`,
//! and `EINTR` is retried so callers never see a spurious error.
#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_ulong};

/// Readable data is available (or a peer hung up with data pending).
pub const POLLIN: i16 = 0x001;
/// Writing would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (revents only).
pub const POLLNVAL: i16 = 0x020;

/// `struct pollfd`, bit-compatible with the C layout.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch (from `AsRawFd::as_raw_fd`).
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`; `0` for errors only).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// A pollfd watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until a descriptor is ready or the timeout (milliseconds;
/// `-1` = forever) elapses. Returns the number of ready descriptors
/// (`0` on timeout) with readiness reported in each entry's `revents`.
/// Retries `EINTR` internally.
///
/// # Errors
/// Any `poll(2)` failure other than `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live, exclusively borrowed slice of
        // `#[repr(C)]` pollfds; the kernel writes only within
        // `fds.len()` entries and only to the `revents` fields.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_times_out_on_a_quiet_socket_and_wakes_on_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();

        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 10).unwrap(), 0, "quiet socket times out");

        tx.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0, "readable after a write");
    }

    #[test]
    fn poll_reports_writable_immediately() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut fds = [PollFd::new(tx.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLOUT, 0);
    }
}
