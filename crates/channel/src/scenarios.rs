//! The scenario zoo: a named, seeded corpus of motion workloads.
//!
//! Every bench and CLI entry point used to exercise the same straight
//! open-lab walk, which leaves the paper's device-agnostic claim
//! untested. This module fixes the *motion* axis of that matrix: seven
//! canonical workloads — walking, running, stop-and-go, stairs-like
//! pauses, a cart push, random shaking, and a rotation-while-translating
//! swinging turn — each a named spec with a default seed, buildable at
//! any sample rate. The device axis (bandwidth, antenna count, sample
//! rate) is orthogonal and lives with the consumers: the CLI's
//! `--array`/`--bandwidth`/`--rate` options and
//! `rim_bench::scenarios`'s device table.
//!
//! Determinism contract: `build(name, start, fs, seed)` is a pure
//! function of its arguments. Only `shaking` consumes the seed (its
//! waypoints are drawn from a seeded RNG); every other scenario is
//! seed-independent, and the seed instead feeds the CSI/IMU recorders
//! layered on top.

use crate::trajectory::{
    arc, dwell, gait_line, line_ramped, shake, stop_and_go, Gait, OrientationMode, Trajectory,
};
use rim_dsp::geom::Point2;

/// One named motion workload of the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Stable name, accepted by `rim simulate --scenario NAME` and used
    /// as the key in `BENCH_scenarios.json`.
    pub name: &'static str,
    /// One-line description for usage text and reports.
    pub summary: &'static str,
    /// Default RNG seed (only `shaking` draws from it directly; the
    /// rest pass it on to the recorder).
    pub default_seed: u64,
}

/// The seven zoo motions, in canonical order.
pub const ZOO: &[ScenarioSpec] = &[
    ScenarioSpec {
        name: "walking",
        summary: "8 m straight walk, per-step speed surges at ~2 Hz cadence",
        default_seed: 21,
    },
    ScenarioSpec {
        name: "running",
        summary: "12 m run, strong push-off surges with sub-0.3 s lulls",
        default_seed: 22,
    },
    ScenarioSpec {
        name: "stop_and_go",
        summary: "three 2 m moves separated by 1.5 s standstills",
        default_seed: 23,
    },
    ScenarioSpec {
        name: "stairs_pause",
        summary: "eight 0.5 m risers with a 1 s pause on every step",
        default_seed: 24,
    },
    ScenarioSpec {
        name: "cart_push",
        summary: "6 m trapezoidal cart push (ramp up, cruise, ramp down)",
        default_seed: 25,
    },
    ScenarioSpec {
        name: "shaking",
        summary: "4 s random hand shake inside a 12 cm disc",
        default_seed: 26,
    },
    ScenarioSpec {
        name: "rotation_while_translating",
        summary: "quarter-circle swinging turn, 1.5 m radius at 0.8 m/s",
        default_seed: 27,
    },
];

/// Looks a scenario up by name.
pub fn spec(name: &str) -> Option<&'static ScenarioSpec> {
    ZOO.iter().find(|s| s.name == name)
}

/// The `|`-joined name list for usage text and error messages.
pub fn name_list() -> String {
    ZOO.iter().map(|s| s.name).collect::<Vec<_>>().join(" | ")
}

/// Builds the named scenario's ground-truth trajectory starting at
/// `start`, sampled at `sample_rate_hz`. Returns `None` for a name the
/// zoo does not know (the caller owns the error message). `seed` only
/// affects `shaking`; see the module docs for the determinism contract.
pub fn build(name: &str, start: Point2, sample_rate_hz: f64, seed: u64) -> Option<Trajectory> {
    let fs = sample_rate_hz;
    match name {
        // Gait surges at walking cadence: alternating 1.25x/0.75x the
        // 1 m/s mean every half-metre step.
        "walking" => Some(gait_line(
            start,
            0.0,
            8.0,
            Gait {
                speed: 1.0,
                step_len: 0.5,
                surge: 0.25,
            },
            fs,
            OrientationMode::FollowPath,
        )),
        // Running: 2.4 m/s mean with 40 % surges every 0.4 m. The slow
        // phase lasts 0.4/(2.4*0.6) ≈ 0.28 s — a quiet accelerometer
        // lull long enough to fool a bare stance window but shorter
        // than the arbitrated window+sustain span (0.32 s at 200 Hz),
        // which is exactly the ZUPT trap this scenario guards.
        "running" => Some(gait_line(
            start,
            0.2,
            12.0,
            Gait {
                speed: 2.4,
                step_len: 0.4,
                surge: 0.4,
            },
            fs,
            OrientationMode::FollowPath,
        )),
        "stop_and_go" => Some(stop_and_go(start, 0.0, 2.0, 1.5, 3, 1.0, fs)),
        // Stairs-like rhythm: short risers at climbing speed, a genuine
        // pause on every step (long enough for stance even at reduced
        // sample rates).
        "stairs_pause" => Some(stop_and_go(start, 0.4, 0.5, 1.0, 8, 0.7, fs)),
        "cart_push" => Some(line_ramped(
            start,
            0.0,
            6.0,
            0.9,
            0.4,
            fs,
            OrientationMode::Fixed(0.0),
        )),
        // A second of settling before the shake so the pipeline's
        // movement detector sees the transition both ways.
        "shaking" => {
            let mut t = dwell(start, 0.0, 1.0, fs);
            t.extend(&shake(start, 0.0, 0.12, 4.0, fs, seed));
            Some(t)
        }
        // The swinging turn of paper §7: translate along a circle while
        // the orientation follows the tangent. Starts at `start` moving
        // along +x, curving counter-clockwise around a centre 1.5 m to
        // the left.
        "rotation_while_translating" => Some(arc(
            Point2::new(start.x, start.y + 1.5),
            1.5,
            -std::f64::consts::FRAC_PI_2,
            std::f64::consts::FRAC_PI_2,
            0.8,
            fs,
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_zoo_name_builds_and_is_deterministic() {
        let start = Point2::new(0.5, 1.0);
        for s in ZOO {
            let a = build(s.name, start, 100.0, s.default_seed).expect(s.name);
            let b = build(s.name, start, 100.0, s.default_seed).expect(s.name);
            assert!(!a.is_empty(), "{} is non-empty", s.name);
            assert_eq!(a, b, "{} is deterministic", s.name);
            assert!(
                a.poses()
                    .iter()
                    .all(|p| p.pos.x.is_finite() && p.pos.y.is_finite()),
                "{} stays finite",
                s.name
            );
        }
        assert!(build("bogus", start, 100.0, 0).is_none());
    }

    #[test]
    fn scenarios_start_where_asked() {
        let start = Point2::new(-1.0, 2.0);
        for s in ZOO {
            let t = build(s.name, start, 100.0, s.default_seed).expect(s.name);
            assert!(
                t.pose(0).pos.distance(start) < 1e-9,
                "{} starts at the requested point",
                s.name
            );
        }
    }

    #[test]
    fn moving_scenarios_cover_ground_and_shaking_stays_put() {
        let start = Point2::ORIGIN;
        for s in ZOO {
            let t = build(s.name, start, 100.0, s.default_seed).expect(s.name);
            let net = t.pose(t.len() - 1).pos.distance(start);
            if s.name == "shaking" {
                assert!(net < 0.2, "shaking stays inside its disc, net {net}");
            } else {
                assert!(net > 1.0, "{} covers ground, net {net}", s.name);
            }
        }
    }

    #[test]
    fn spec_lookup_and_name_list_agree() {
        assert_eq!(spec("running").unwrap().default_seed, 22);
        assert!(spec("nope").is_none());
        for s in ZOO {
            assert!(name_list().contains(s.name));
        }
    }
}
