//! End-to-end channel simulation: an AP with a small transmit array, a ray
//! tracer and a subcarrier layout, sampled along a receiver trajectory.
//!
//! This is the boundary the CSI layer consumes: for every (time, RX
//! antenna, TX antenna) triple it yields the noiseless CFR vector; the CSI
//! layer then adds the hardware impairments a real NIC would introduce.

use crate::cfr::{synthesize_cfr, SubcarrierLayout};
use crate::propagation::{RayTracer, TxContext};
use rim_dsp::complex::Complex64;
use rim_dsp::geom::{Point2, Vec2};

/// Access-point configuration: position and transmit antenna arrangement.
///
/// The paper's AP has 3 antennas (§3.2 uses TX spatial diversity to enlarge
/// effective bandwidth); we model them as a short linear array around the
/// AP position.
#[derive(Debug, Clone, Copy)]
pub struct ApConfig {
    /// AP reference position.
    pub pos: Point2,
    /// Number of transmit antennas.
    pub n_antennas: usize,
    /// Spacing between adjacent TX antennas, metres.
    pub antenna_spacing: f64,
    /// Orientation of the TX array, radians.
    pub orientation: f64,
}

impl ApConfig {
    /// A 3-antenna AP at `pos` with λ/2 spacing for the 5.8 GHz band.
    pub fn standard(pos: Point2) -> Self {
        Self {
            pos,
            n_antennas: 3,
            antenna_spacing: 0.0258,
            orientation: 0.0,
        }
    }

    /// World positions of the TX antennas.
    pub fn antenna_positions(&self) -> Vec<Point2> {
        let dir = Vec2::from_angle(self.orientation);
        let mid = (self.n_antennas as f64 - 1.0) / 2.0;
        (0..self.n_antennas)
            .map(|k| self.pos + dir * ((k as f64 - mid) * self.antenna_spacing))
            .collect()
    }
}

/// A noiseless MIMO channel snapshot: one CFR vector per TX antenna, for a
/// single RX antenna at a single instant.
#[derive(Debug, Clone, PartialEq)]
pub struct MimoCfr {
    /// `per_tx[k]` is the CFR between TX antenna `k` and this RX antenna.
    pub per_tx: Vec<Vec<Complex64>>,
}

/// Median scatterer gain producing a realistically rich indoor field: with
/// ~150 scatterers the diffuse energy dominates the direct ray and the
/// V-averaged TRRS reproduces the paper's Fig. 4 decay (≈0.3 drop within a
/// few mm, floor ≈0.3 beyond 2 cm).
pub const TYPICAL_SCATTERER_GAIN: f64 = 0.35;

/// Scatterer count used by the canonical environments.
pub const TYPICAL_SCATTERER_COUNT: usize = 150;

/// Channel simulator: ray tracer + AP + subcarrier grid.
///
/// ```
/// use rim_channel::ChannelSimulator;
/// use rim_dsp::geom::Point2;
///
/// let sim = ChannelSimulator::open_lab(7);
/// let sampler = sim.sampler();
/// let cfr = sampler.cfr(0, Point2::new(0.5, 2.0), 0.0);
/// assert_eq!(cfr.len(), 114); // HT40: 114 subcarriers
/// // The channel is a deterministic function of position.
/// assert_eq!(cfr, sampler.cfr(0, Point2::new(0.5, 2.0), 99.0));
/// ```
#[derive(Debug, Clone)]
pub struct ChannelSimulator {
    tracer: RayTracer,
    layout: SubcarrierLayout,
    ap: ApConfig,
}

impl ChannelSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    /// Panics if the AP has no antennas.
    pub fn new(tracer: RayTracer, layout: SubcarrierLayout, ap: ApConfig) -> Self {
        assert!(ap.n_antennas > 0, "AP needs at least one antenna");
        Self { tracer, layout, ap }
    }

    /// The paper's office testbed (Fig. 10) with a dense scatterer field
    /// and the AP at marked location `ap_idx` (`0..=6`, #0 = far corner).
    ///
    /// # Panics
    /// Panics if `ap_idx` is out of range.
    pub fn office(ap_idx: usize, seed: u64) -> Self {
        use crate::floorplan::office_floorplan;
        use crate::propagation::TracerConfig;
        use crate::scatter::uniform_field;
        let (fp, aps) = office_floorplan();
        assert!(ap_idx < aps.len(), "AP location index out of range");
        let (lo, hi) = fp.bounds().expect("office floorplan has walls");
        let scat = uniform_field(
            lo,
            hi,
            TYPICAL_SCATTERER_COUNT,
            TYPICAL_SCATTERER_GAIN,
            seed,
        );
        let tracer = RayTracer::new(fp, scat, Vec::new(), TracerConfig::default());
        Self::new(
            tracer,
            SubcarrierLayout::ht40_5ghz(),
            ApConfig::standard(aps[ap_idx]),
        )
    }

    /// A free-space environment with a rich scatterer field centred on the
    /// working area — the fast, deterministic default for micro-benchmarks
    /// and tests that do not need walls.
    pub fn open_lab(seed: u64) -> Self {
        use crate::propagation::TracerConfig;
        use crate::scatter::uniform_field;
        let scat = uniform_field(
            Point2::new(-15.0, -15.0),
            Point2::new(15.0, 15.0),
            TYPICAL_SCATTERER_COUNT,
            TYPICAL_SCATTERER_GAIN,
            seed,
        );
        let tracer = RayTracer::new(
            crate::floorplan::Floorplan::empty(),
            scat,
            Vec::new(),
            TracerConfig::default(),
        );
        Self::new(
            tracer,
            SubcarrierLayout::ht40_5ghz(),
            ApConfig::standard(Point2::new(-8.0, 0.0)),
        )
    }

    /// Replaces the subcarrier layout, keeping the environment and AP.
    ///
    /// The canned environments ([`Self::office`], [`Self::open_lab`])
    /// default to HT40; the heterogeneity scenarios rebind them to
    /// HT20/VHT80 grids with this builder. Ray geometry is
    /// layout-independent, so the swap is free.
    pub fn with_layout(mut self, layout: SubcarrierLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Replaces the AP configuration (e.g. a different TX antenna
    /// count), keeping the environment and layout.
    ///
    /// # Panics
    /// Panics if the AP has no antennas.
    pub fn with_ap(mut self, ap: ApConfig) -> Self {
        assert!(ap.n_antennas > 0, "AP needs at least one antenna");
        self.ap = ap;
        self
    }

    /// The subcarrier layout in use.
    pub fn layout(&self) -> &SubcarrierLayout {
        &self.layout
    }

    /// The AP configuration.
    pub fn ap(&self) -> &ApConfig {
        &self.ap
    }

    /// The underlying ray tracer.
    pub fn tracer(&self) -> &RayTracer {
        &self.tracer
    }

    /// Prepares a sampler (precomputes per-TX-antenna image sources).
    pub fn sampler(&self) -> Sampler<'_> {
        let contexts = self
            .ap
            .antenna_positions()
            .into_iter()
            .map(|p| self.tracer.at_tx(p))
            .collect();
        Sampler {
            sim: self,
            contexts,
        }
    }
}

/// A prepared sampler; cheap to query per receiver position.
#[derive(Debug, Clone)]
pub struct Sampler<'a> {
    sim: &'a ChannelSimulator,
    contexts: Vec<TxContext<'a>>,
}

impl Sampler<'_> {
    /// Noiseless CFR from TX antenna `tx_idx` to a receiver at `rx` at time
    /// `t` seconds.
    pub fn cfr(&self, tx_idx: usize, rx: Point2, t: f64) -> Vec<Complex64> {
        let rays = self.contexts[tx_idx].rays_at(rx, t);
        synthesize_cfr(&rays, &self.sim.layout)
    }

    /// Full MIMO snapshot (all TX antennas) for one RX antenna position.
    pub fn mimo_cfr(&self, rx: Point2, t: f64) -> MimoCfr {
        MimoCfr {
            per_tx: (0..self.contexts.len())
                .map(|k| self.cfr(k, rx, t))
                .collect(),
        }
    }

    /// Number of TX antennas.
    pub fn n_tx(&self) -> usize {
        self.contexts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_sim() -> ChannelSimulator {
        ChannelSimulator::open_lab(7)
    }

    #[test]
    fn ap_antenna_positions_centred() {
        let ap = ApConfig::standard(Point2::new(2.0, 3.0));
        let pos = ap.antenna_positions();
        assert_eq!(pos.len(), 3);
        // Centre antenna at the AP position; ends symmetric.
        assert!(pos[1].distance(Point2::new(2.0, 3.0)) < 1e-12);
        assert!((pos[0].distance(pos[1]) - 0.0258).abs() < 1e-12);
        assert!((pos[2].distance(pos[0]) - 2.0 * 0.0258).abs() < 1e-12);
    }

    #[test]
    fn snapshot_dimensions() {
        let sim = test_sim();
        let s = sim.sampler();
        let snap = s.mimo_cfr(Point2::new(1.0, 1.0), 0.0);
        assert_eq!(snap.per_tx.len(), 3);
        for cfr in &snap.per_tx {
            assert_eq!(cfr.len(), 114);
        }
    }

    #[test]
    fn same_position_same_channel() {
        // The physical basis of virtual antenna retracing: the channel is a
        // function of position only (in a static environment).
        let sim = test_sim();
        let s = sim.sampler();
        let p = Point2::new(0.5, 2.0);
        let a = s.cfr(0, p, 0.0);
        let b = s.cfr(0, p, 10.0);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn nearby_positions_decorrelate() {
        // Moving a fraction of a wavelength must change the channel while
        // micro-displacements must not. A single snapshot of a finite-band
        // channel has realization noise (the cross-term floor the paper
        // suppresses by virtual-massive-antenna averaging), so assert on
        // the mean over positions and TX antennas.
        let sim = test_sim();
        let s = sim.sampler();
        let lambda = sim.layout().wavelength();
        let corr = |u: &[Complex64], v: &[Complex64]| {
            let ip = rim_dsp::inner_product(u, v).abs();
            ip * ip / (rim_dsp::norm_sqr(u) * rim_dsp::norm_sqr(v))
        };
        let mean_corr_at = |frac: f64| {
            let mut acc = 0.0;
            let mut n = 0usize;
            for k in 0..8 {
                let p = Point2::new(0.3 * k as f64 - 1.0, 1.5 + 0.4 * k as f64);
                for tx in 0..3 {
                    let a = s.cfr(tx, p, 0.0);
                    let b = s.cfr(tx, Point2::new(p.x + lambda * frac, p.y), 0.0);
                    acc += corr(&a, &b);
                    n += 1;
                }
            }
            acc / n as f64
        };
        let c_micro = mean_corr_at(0.01);
        let c_step = mean_corr_at(0.2);
        let c_wave = mean_corr_at(1.0);
        assert!(
            c_micro > 0.98,
            "1% λ displacement keeps correlation: {c_micro}"
        );
        assert!(
            c_step < c_micro - 0.05,
            "0.2 λ drops: {c_step} vs {c_micro}"
        );
        assert!(c_wave < 0.8, "1 λ decorrelates on average: {c_wave}");
    }

    #[test]
    fn different_tx_antennas_differ() {
        let sim = test_sim();
        let s = sim.sampler();
        let p = Point2::new(1.0, 1.0);
        let a = s.cfr(0, p, 0.0);
        let b = s.cfr(2, p, 0.0);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (*x - *y).abs()).sum();
        assert!(diff > 1e-6, "TX antennas see different channels");
    }

    #[test]
    #[should_panic(expected = "at least one antenna")]
    fn zero_antenna_ap_rejected() {
        let tracer = RayTracer::free_space_with_scatterers(Vec::new());
        let mut ap = ApConfig::standard(Point2::ORIGIN);
        ap.n_antennas = 0;
        let _ = ChannelSimulator::new(tracer, SubcarrierLayout::ht20_5ghz(), ap);
    }
}
