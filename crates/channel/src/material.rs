//! Wall materials and their interaction losses.
//!
//! The image-method ray tracer attenuates a path once per specular bounce
//! (reflection loss) and once per wall crossed (transmission loss). The
//! presets are typical values for 5 GHz indoor propagation, coarse on
//! purpose: RIM only needs the multipath field to be *rich and spatially
//! diverse*, not calibrated to a specific building.

use serde::{Deserialize, Serialize};

/// Electromagnetic interaction losses of a wall material at ~5 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Power loss on specular reflection, in dB (≥ 0).
    pub reflection_loss_db: f64,
    /// Power loss on transmission through the wall, in dB (≥ 0).
    pub transmission_loss_db: f64,
}

impl Material {
    /// Creates a material from reflection and transmission losses in dB.
    ///
    /// # Panics
    /// Panics if either loss is negative or non-finite.
    pub fn new(reflection_loss_db: f64, transmission_loss_db: f64) -> Self {
        assert!(
            reflection_loss_db >= 0.0 && reflection_loss_db.is_finite(),
            "reflection loss must be a non-negative finite dB value"
        );
        assert!(
            transmission_loss_db >= 0.0 && transmission_loss_db.is_finite(),
            "transmission loss must be a non-negative finite dB value"
        );
        Self {
            reflection_loss_db,
            transmission_loss_db,
        }
    }

    /// Interior drywall / plasterboard partition.
    pub fn drywall() -> Self {
        Self::new(7.0, 4.0)
    }

    /// Load-bearing concrete wall or pillar.
    pub fn concrete() -> Self {
        Self::new(4.0, 12.0)
    }

    /// Glass partition.
    pub fn glass() -> Self {
        Self::new(9.0, 2.0)
    }

    /// Metal surface (whiteboard, cabinet, elevator door): strong reflector,
    /// near-opaque to transmission.
    pub fn metal() -> Self {
        Self::new(1.0, 30.0)
    }

    /// Amplitude (voltage) coefficient applied per reflection,
    /// `10^(-loss/20)`.
    pub fn reflection_coeff(&self) -> f64 {
        db_to_amplitude(-self.reflection_loss_db)
    }

    /// Amplitude (voltage) coefficient applied per transmission.
    pub fn transmission_coeff(&self) -> f64 {
        db_to_amplitude(-self.transmission_loss_db)
    }
}

impl Default for Material {
    fn default() -> Self {
        Self::drywall()
    }
}

/// Converts a power gain in dB to an amplitude (voltage) factor.
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts an amplitude factor to power dB.
pub fn amplitude_to_db(amp: f64) -> f64 {
    20.0 * amp.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_are_sub_unity() {
        for m in [
            Material::drywall(),
            Material::concrete(),
            Material::glass(),
            Material::metal(),
        ] {
            assert!(m.reflection_coeff() > 0.0 && m.reflection_coeff() < 1.0);
            assert!(m.transmission_coeff() > 0.0 && m.transmission_coeff() < 1.0);
        }
    }

    #[test]
    fn db_round_trip() {
        for db in [-30.0, -6.0, 0.0, 3.0] {
            let amp = db_to_amplitude(db);
            assert!((amplitude_to_db(amp) - db).abs() < 1e-12);
        }
        assert!((db_to_amplitude(0.0) - 1.0).abs() < 1e-12);
        assert!((db_to_amplitude(-20.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn metal_reflects_better_than_drywall() {
        assert!(Material::metal().reflection_coeff() > Material::drywall().reflection_coeff());
        assert!(Material::metal().transmission_coeff() < Material::drywall().transmission_coeff());
    }

    #[test]
    #[should_panic(expected = "reflection loss")]
    fn negative_loss_rejected() {
        let _ = Material::new(-1.0, 0.0);
    }
}
