//! # rim-channel
//!
//! RF propagation substrate for the RIM reproduction. The paper's system
//! measures real CSI from commodity WiFi NICs in a >1,000 m² office; this
//! crate replaces that hardware with a deterministic, physically-grounded
//! simulator:
//!
//! * [`floorplan`] — walls with materials, LOS queries, and a model of the
//!   paper's 36.5 m × 28 m testbed with its seven AP locations (Fig. 10);
//! * [`propagation`] — image-method ray tracer (direct ray, specular
//!   bounces, diffuse scatterer paths, moving scatterers);
//! * [`cfr`] — OFDM subcarrier grids and CFR synthesis (the quantity a NIC
//!   reports as CSI);
//! * [`trajectory`] — ground-truth device motion and the paper's workload
//!   generators;
//! * [`scenarios`] — the named, seeded motion corpus (the "scenario zoo")
//!   shared by the CLI and the benches;
//! * [`simulator`] — ties the above together behind a sampler the CSI
//!   layer drives.
//!
//! What RIM needs from a channel — and what this simulator provides — is
//! the *time-reversal focusing* property: the multipath profile measured at
//! a point is a stable signature of that point, decorrelating over a
//! fraction of a wavelength of displacement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfr;
pub mod floorplan;
pub mod material;
pub mod propagation;
pub mod scatter;
pub mod scenarios;
pub mod simulator;
pub mod trajectory;

pub use cfr::SubcarrierLayout;
pub use floorplan::{office_floorplan, Floorplan, Wall};
pub use material::Material;
pub use propagation::{Ray, RayTracer, TracerConfig, SPEED_OF_LIGHT};
pub use scatter::{uniform_field, walking_humans, DynamicScatterer, Scatterer};
pub use simulator::{ApConfig, ChannelSimulator, MimoCfr, Sampler};
pub use trajectory::{OrientationMode, Pose, Trajectory};
