//! Image-method multipath ray tracing.
//!
//! For a transmitter at a fixed point and a receiver anywhere on the floor,
//! this module enumerates propagation paths — the direct ray, specular wall
//! reflections up to a configurable order (via image sources), and diffuse
//! single-bounce scatterer paths — each with a propagation delay and a
//! complex amplitude. The set of `(delay, amplitude)` rays at a receiver
//! position is the *multipath profile* whose spatial uniqueness RIM's
//! virtual-antenna alignment exploits: moving the receiver by millimetres
//! changes every path length, decorrelating the profile on the scale of a
//! fraction of the carrier wavelength.

use crate::floorplan::Floorplan;
use crate::scatter::{DynamicScatterer, Scatterer};
use rim_dsp::complex::Complex64;
use rim_dsp::geom::{Point2, Segment};

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Shortest path length we evaluate; below this the 1/d spreading model
/// would diverge, so distances are clamped here.
const MIN_PATH_LEN: f64 = 0.3;

/// One propagation path: delay and complex amplitude (spreading loss ×
/// interaction coefficients × scatterer gain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Propagation delay in seconds.
    pub delay_s: f64,
    /// Complex amplitude at the receiver (dimensionless, relative).
    pub amp: Complex64,
}

/// Configuration of the ray tracer.
#[derive(Debug, Clone, Copy)]
pub struct TracerConfig {
    /// Maximum specular reflection order (0 = direct ray only, 1 = single
    /// bounces, 2 = double bounces). Order 2 is quadratic in wall count.
    pub max_reflection_order: usize,
    /// Paths with amplitude below this fraction of the strongest path are
    /// dropped during CFR synthesis; 0 keeps everything.
    pub amplitude_floor: f64,
}

impl Default for TracerConfig {
    fn default() -> Self {
        Self {
            max_reflection_order: 1,
            amplitude_floor: 1e-4,
        }
    }
}

/// Multipath ray tracer over a floorplan plus scatterer fields.
#[derive(Debug, Clone)]
pub struct RayTracer {
    floorplan: Floorplan,
    scatterers: Vec<Scatterer>,
    dynamic: Vec<DynamicScatterer>,
    config: TracerConfig,
}

/// Free-space spreading amplitude for a path of length `d` (reference
/// distance 1 m, clamped below [`MIN_PATH_LEN`]).
fn spreading(d: f64) -> f64 {
    1.0 / d.max(MIN_PATH_LEN)
}

impl RayTracer {
    /// Creates a tracer.
    pub fn new(
        floorplan: Floorplan,
        scatterers: Vec<Scatterer>,
        dynamic: Vec<DynamicScatterer>,
        config: TracerConfig,
    ) -> Self {
        Self {
            floorplan,
            scatterers,
            dynamic,
            config,
        }
    }

    /// Free-space tracer with only a scatterer field (no walls).
    pub fn free_space_with_scatterers(scatterers: Vec<Scatterer>) -> Self {
        Self::new(
            Floorplan::empty(),
            scatterers,
            Vec::new(),
            TracerConfig::default(),
        )
    }

    /// The underlying floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The static scatterer field.
    pub fn scatterers(&self) -> &[Scatterer] {
        &self.scatterers
    }

    /// Prepares a transmitter context: precomputes the image sources and
    /// the TX-side legs of all static scatterer paths for one TX antenna,
    /// so that per-receiver-sample work is linear in path count.
    pub fn at_tx(&self, tx: Point2) -> TxContext<'_> {
        let walls = self.floorplan.walls();
        let mut images1 = Vec::new();
        if self.config.max_reflection_order >= 1 {
            for (wi, w) in walls.iter().enumerate() {
                images1.push(Image1 {
                    wall: wi,
                    image: w.segment.mirror_point(tx),
                });
            }
        }
        let mut images2 = Vec::new();
        if self.config.max_reflection_order >= 2 {
            for (wi, w1) in walls.iter().enumerate() {
                let i1 = w1.segment.mirror_point(tx);
                for (wj, w2) in walls.iter().enumerate() {
                    if wi == wj {
                        continue;
                    }
                    images2.push(Image2 {
                        wall1: wi,
                        wall2: wj,
                        image1: i1,
                        image2: w2.segment.mirror_point(i1),
                    });
                }
            }
        }
        // TX-side leg of each static scatterer path is receiver-independent.
        let scat_legs = self
            .scatterers
            .iter()
            .map(|s| {
                let d = tx.distance(s.pos);
                let trans = self.floorplan.transmission_amplitude(tx, s.pos);
                ScatLeg {
                    dist: d,
                    trans_amp: trans,
                }
            })
            .collect();
        TxContext {
            tracer: self,
            tx,
            images1,
            images2,
            scat_legs,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Image1 {
    wall: usize,
    image: Point2,
}

#[derive(Debug, Clone, Copy)]
struct Image2 {
    wall1: usize,
    wall2: usize,
    image1: Point2,
    image2: Point2,
}

#[derive(Debug, Clone, Copy)]
struct ScatLeg {
    dist: f64,
    trans_amp: f64,
}

/// A transmitter-side cache; create once per TX antenna via
/// [`RayTracer::at_tx`], then call [`TxContext::rays_at`] per receiver
/// sample.
#[derive(Debug, Clone)]
pub struct TxContext<'a> {
    tracer: &'a RayTracer,
    tx: Point2,
    images1: Vec<Image1>,
    images2: Vec<Image2>,
    scat_legs: Vec<ScatLeg>,
}

impl TxContext<'_> {
    /// The transmitter position this context was built for.
    pub fn tx(&self) -> Point2 {
        self.tx
    }

    /// Enumerates all rays reaching a receiver at `rx` at time `t`
    /// (time only matters for dynamic scatterers).
    pub fn rays_at(&self, rx: Point2, t: f64) -> Vec<Ray> {
        let fp = &self.tracer.floorplan;
        let walls = fp.walls();
        let mut rays = Vec::with_capacity(
            1 + self.images1.len() + self.scat_legs.len() + self.tracer.dynamic.len(),
        );

        // Direct ray.
        let d0 = self.tx.distance(rx);
        let trans = fp.transmission_amplitude(self.tx, rx);
        if trans > 0.0 {
            rays.push(Ray {
                delay_s: d0 / SPEED_OF_LIGHT,
                amp: Complex64::from_re(spreading(d0) * trans),
            });
        }

        // First-order specular reflections.
        for im in &self.images1 {
            let wall = &walls[im.wall];
            let to_rx = Segment::new(im.image, rx);
            let Some(refl_pt) = to_rx.intersect(wall.segment) else {
                continue; // Reflection point falls outside the wall segment.
            };
            let total_len = im.image.distance(rx);
            // Transmission through walls crossed on the two physical legs,
            // excluding the reflecting wall itself.
            let mut amp = spreading(total_len) * wall.material.reflection_coeff();
            amp *= self.transmission_excluding(self.tx, refl_pt, &[im.wall]);
            amp *= self.transmission_excluding(refl_pt, rx, &[im.wall]);
            if amp > 0.0 {
                rays.push(Ray {
                    delay_s: total_len / SPEED_OF_LIGHT,
                    amp: Complex64::from_re(amp),
                });
            }
        }

        // Second-order specular reflections.
        for im in &self.images2 {
            let w1 = &walls[im.wall1];
            let w2 = &walls[im.wall2];
            let Some(p2) = Segment::new(im.image2, rx).intersect(w2.segment) else {
                continue;
            };
            let Some(p1) = Segment::new(im.image1, p2).intersect(w1.segment) else {
                continue;
            };
            let total_len = im.image2.distance(rx);
            let mut amp = spreading(total_len)
                * w1.material.reflection_coeff()
                * w2.material.reflection_coeff();
            amp *= self.transmission_excluding(self.tx, p1, &[im.wall1]);
            amp *= self.transmission_excluding(p1, p2, &[im.wall1, im.wall2]);
            amp *= self.transmission_excluding(p2, rx, &[im.wall2]);
            if amp > 0.0 {
                rays.push(Ray {
                    delay_s: total_len / SPEED_OF_LIGHT,
                    amp: Complex64::from_re(amp),
                });
            }
        }

        // Static scatterer paths (single bounce off an extended reflector).
        //
        // Spreading uses the *total* path length, 1/(d₁+d₂), not the
        // bistatic point-scatterer law 1/(d₁·d₂): indoor "scatterers" are
        // extended surfaces (furniture, shelves, doors) whose re-radiation
        // behaves closer to an image source. This keeps substantial power
        // in long-delay paths, matching the slowly-decaying power-delay
        // profiles measured indoors (Saleh–Valenzuela), which is what gives
        // the TRRS its deep sub-wavelength decay (paper Fig. 4).
        for (s, leg) in self.tracer.scatterers.iter().zip(&self.scat_legs) {
            let d2 = s.pos.distance(rx);
            let trans_rx = fp.transmission_amplitude(s.pos, rx);
            let amp_mag = leg.trans_amp * trans_rx * spreading(leg.dist + d2);
            if amp_mag > 0.0 {
                rays.push(Ray {
                    delay_s: (leg.dist + d2) / SPEED_OF_LIGHT,
                    amp: s.gain * amp_mag,
                });
            }
        }

        // Dynamic scatterers (no caching; they move).
        for d in &self.tracer.dynamic {
            let pos = d.pos_at(t);
            let d1 = self.tx.distance(pos);
            let d2 = pos.distance(rx);
            let trans =
                fp.transmission_amplitude(self.tx, pos) * fp.transmission_amplitude(pos, rx);
            let amp_mag = trans * spreading(d1 + d2);
            if amp_mag > 0.0 {
                rays.push(Ray {
                    delay_s: (d1 + d2) / SPEED_OF_LIGHT,
                    amp: d.gain * amp_mag,
                });
            }
        }

        // Prune negligible paths relative to the strongest one.
        if self.tracer.config.amplitude_floor > 0.0 && !rays.is_empty() {
            let peak = rays.iter().map(|r| r.amp.abs()).fold(0.0f64, f64::max);
            let floor = peak * self.tracer.config.amplitude_floor;
            rays.retain(|r| r.amp.abs() >= floor);
        }
        rays
    }

    /// Transmission amplitude along `a → b`, ignoring the listed wall
    /// indices (the walls the path specularly reflects off).
    fn transmission_excluding(&self, a: Point2, b: Point2, exclude: &[usize]) -> f64 {
        let walls = self.tracer.floorplan.walls();
        let ray = Segment::new(a, b);
        let mut amp = 1.0;
        for (wi, w) in walls.iter().enumerate() {
            if exclude.contains(&wi) {
                continue;
            }
            if ray.intersect(w.segment).is_some() {
                amp *= w.material.transmission_coeff();
            }
        }
        amp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Wall;
    use crate::material::Material;

    fn lone_tx_rx() -> (Point2, Point2) {
        (Point2::new(0.0, 0.0), Point2::new(10.0, 0.0))
    }

    #[test]
    fn free_space_has_single_direct_ray() {
        let tracer = RayTracer::free_space_with_scatterers(Vec::new());
        let (tx, rx) = lone_tx_rx();
        let ctx = tracer.at_tx(tx);
        let rays = ctx.rays_at(rx, 0.0);
        assert_eq!(rays.len(), 1);
        let r = rays[0];
        assert!((r.delay_s - 10.0 / SPEED_OF_LIGHT).abs() < 1e-18);
        assert!((r.amp.abs() - 0.1).abs() < 1e-12, "1/d spreading at 10 m");
    }

    #[test]
    fn single_wall_adds_reflection() {
        // Wall above and parallel to the TX–RX line: classic two-ray setup.
        let wall = Wall::new(-5.0, 3.0, 15.0, 3.0, Material::metal());
        let fp = Floorplan::new(vec![wall]);
        let tracer = RayTracer::new(fp, Vec::new(), Vec::new(), TracerConfig::default());
        let (tx, rx) = lone_tx_rx();
        let rays = tracer.at_tx(tx).rays_at(rx, 0.0);
        assert_eq!(rays.len(), 2, "direct + one reflection");
        // Reflected length: image at (0, 6) → distance sqrt(100 + 36).
        let expect_len = (100.0f64 + 36.0).sqrt();
        let refl = rays
            .iter()
            .find(|r| (r.delay_s - expect_len / SPEED_OF_LIGHT).abs() < 1e-15)
            .expect("reflected ray present");
        assert!(
            refl.amp.abs() < rays[0].amp.abs(),
            "bounce is weaker than LOS"
        );
    }

    #[test]
    fn reflection_point_outside_segment_is_invalid() {
        // Short wall far to the left: its mirror path to RX misses it.
        let wall = Wall::new(-20.0, 3.0, -18.0, 3.0, Material::metal());
        let fp = Floorplan::new(vec![wall]);
        let tracer = RayTracer::new(fp, Vec::new(), Vec::new(), TracerConfig::default());
        let (tx, rx) = lone_tx_rx();
        let rays = tracer.at_tx(tx).rays_at(rx, 0.0);
        assert_eq!(rays.len(), 1, "only the direct ray survives");
    }

    #[test]
    fn blocking_wall_attenuates_direct_ray() {
        let wall = Wall::new(5.0, -2.0, 5.0, 2.0, Material::concrete());
        let fp = Floorplan::new(vec![wall]);
        let cfg = TracerConfig {
            max_reflection_order: 0,
            ..Default::default()
        };
        let tracer = RayTracer::new(fp, Vec::new(), Vec::new(), cfg);
        let (tx, rx) = lone_tx_rx();
        let rays = tracer.at_tx(tx).rays_at(rx, 0.0);
        assert_eq!(rays.len(), 1);
        let expect = 0.1 * Material::concrete().transmission_coeff();
        assert!((rays[0].amp.abs() - expect).abs() < 1e-12);
    }

    #[test]
    fn scatterer_path_geometry() {
        let s = Scatterer {
            pos: Point2::new(5.0, 5.0),
            gain: Complex64::from_re(2.0),
        };
        let tracer = RayTracer::free_space_with_scatterers(vec![s]);
        let (tx, rx) = lone_tx_rx();
        let rays = tracer.at_tx(tx).rays_at(rx, 0.0);
        assert_eq!(rays.len(), 2);
        let d1 = 50f64.sqrt();
        let d2 = 50f64.sqrt();
        let scat = rays
            .iter()
            .find(|r| (r.delay_s - (d1 + d2) / SPEED_OF_LIGHT).abs() < 1e-15)
            .expect("scatterer ray");
        assert!((scat.amp.abs() - 2.0 / (d1 + d2)).abs() < 1e-12);
    }

    #[test]
    fn dynamic_scatterer_changes_with_time() {
        let d = DynamicScatterer {
            start: Point2::new(5.0, 5.0),
            velocity: rim_dsp::geom::Vec2::new(1.0, 0.0),
            gain: Complex64::from_re(1.0),
        };
        let tracer = RayTracer::new(
            Floorplan::empty(),
            Vec::new(),
            vec![d],
            TracerConfig {
                amplitude_floor: 0.0,
                ..Default::default()
            },
        );
        let (tx, rx) = lone_tx_rx();
        let ctx = tracer.at_tx(tx);
        let r0 = ctx.rays_at(rx, 0.0);
        let r1 = ctx.rays_at(rx, 1.0);
        assert_eq!(r0.len(), 2);
        assert!(
            r0[1].delay_s != r1[1].delay_s,
            "moving scatterer changes delay"
        );
    }

    #[test]
    fn second_order_reflections_appear() {
        // Two parallel metal walls make a corridor with double bounces.
        let w1 = Wall::new(-5.0, 3.0, 15.0, 3.0, Material::metal());
        let w2 = Wall::new(-5.0, -3.0, 15.0, -3.0, Material::metal());
        let fp = Floorplan::new(vec![w1, w2]);
        let cfg = TracerConfig {
            max_reflection_order: 2,
            amplitude_floor: 0.0,
        };
        let tracer = RayTracer::new(fp, Vec::new(), Vec::new(), cfg);
        let (tx, rx) = lone_tx_rx();
        let rays = tracer.at_tx(tx).rays_at(rx, 0.0);
        // Direct + 2 first-order + 2 second-order.
        assert_eq!(rays.len(), 5);
        // Second-order paths are the longest.
        let mut delays: Vec<f64> = rays.iter().map(|r| r.delay_s).collect();
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(delays[4] > delays[1]);
    }

    #[test]
    fn amplitude_floor_prunes() {
        let strong = Scatterer {
            pos: Point2::new(5.0, 1.0),
            gain: Complex64::from_re(10.0),
        };
        let weak = Scatterer {
            pos: Point2::new(5.0, 1.5),
            gain: Complex64::from_re(1e-7),
        };
        let mut tracer = RayTracer::free_space_with_scatterers(vec![strong, weak]);
        tracer.config.amplitude_floor = 1e-4;
        let (tx, rx) = lone_tx_rx();
        let rays = tracer.at_tx(tx).rays_at(rx, 0.0);
        assert_eq!(rays.len(), 2, "weak scatterer pruned, direct + strong kept");
    }

    #[test]
    fn spreading_is_clamped_near_zero() {
        let tracer = RayTracer::free_space_with_scatterers(Vec::new());
        let tx = Point2::new(0.0, 0.0);
        let rays = tracer.at_tx(tx).rays_at(Point2::new(1e-6, 0.0), 0.0);
        assert!(rays[0].amp.abs().is_finite());
        assert!(rays[0].amp.abs() <= 1.0 / 0.3 + 1e-9);
    }
}
