//! Floorplans: wall segments with materials, line-of-sight queries, and a
//! model of the paper's testbed.
//!
//! The paper evaluates RIM over one floor of a busy office building,
//! 36.5 m × 28 m (>1,000 m², paper Fig. 10), with the AP tested at seven
//! marked locations (#0 at the far corner by default, #1–#6 spread over the
//! floor). [`office_floorplan`] reconstructs that geometry at the level of
//! detail that matters for propagation: outer shell, corridor walls, office
//! partitions and a few concrete cores/pillars.

use crate::material::Material;
use rim_dsp::geom::{Point2, Segment};
use serde::{Deserialize, Serialize};

/// A wall: a 2-D segment with a material.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wall {
    /// Wall geometry in metres.
    pub segment: Segment,
    /// Wall material (reflection/transmission losses).
    pub material: Material,
}

impl Wall {
    /// Creates a wall between `(x0, y0)` and `(x1, y1)`.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64, material: Material) -> Self {
        Self {
            segment: Segment::new(Point2::new(x0, y0), Point2::new(x1, y1)),
            material,
        }
    }
}

/// A floorplan: a set of walls plus a bounding box.
#[derive(Debug, Clone, Default)]
pub struct Floorplan {
    walls: Vec<Wall>,
}

impl Floorplan {
    /// Creates an empty floorplan (free space).
    pub fn empty() -> Self {
        Self { walls: Vec::new() }
    }

    /// Creates a floorplan from a wall list.
    pub fn new(walls: Vec<Wall>) -> Self {
        Self { walls }
    }

    /// Adds a wall.
    pub fn push(&mut self, wall: Wall) {
        self.walls.push(wall);
    }

    /// All walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// Number of walls.
    pub fn len(&self) -> usize {
        self.walls.len()
    }

    /// True if the floorplan has no walls.
    pub fn is_empty(&self) -> bool {
        self.walls.is_empty()
    }

    /// Walls whose interiors are crossed by the open segment `a → b`.
    pub fn walls_crossed(&self, a: Point2, b: Point2) -> Vec<&Wall> {
        let ray = Segment::new(a, b);
        self.walls
            .iter()
            .filter(|w| ray.intersect(w.segment).is_some())
            .collect()
    }

    /// Amplitude attenuation factor accumulated by transmitting through
    /// every wall crossed on the segment `a → b` (1.0 in free space).
    pub fn transmission_amplitude(&self, a: Point2, b: Point2) -> f64 {
        self.walls_crossed(a, b)
            .iter()
            .map(|w| w.material.transmission_coeff())
            .product()
    }

    /// True when no wall separates `a` from `b`.
    pub fn is_los(&self, a: Point2, b: Point2) -> bool {
        self.walls_crossed(a, b).is_empty()
    }

    /// True if the step `a → b` crosses any wall — the particle-filter
    /// constraint from paper §6.3.3 ("discard every particle that hits a
    /// wall").
    pub fn blocks(&self, a: Point2, b: Point2) -> bool {
        !self.is_los(a, b)
    }

    /// Axis-aligned bounding box `(min, max)` of all wall endpoints, or
    /// `None` for an empty plan.
    pub fn bounds(&self) -> Option<(Point2, Point2)> {
        let mut it = self
            .walls
            .iter()
            .flat_map(|w| [w.segment.a, w.segment.b].into_iter());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for p in it {
            lo = Point2::new(lo.x.min(p.x), lo.y.min(p.y));
            hi = Point2::new(hi.x.max(p.x), hi.y.max(p.y));
        }
        Some((lo, hi))
    }
}

/// Identifies one of the AP placements marked in paper Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ApLocation(pub usize);

/// The paper's office testbed: 36.5 m × 28 m, concrete shell and cores,
/// drywall offices along the edges, a central open area.
///
/// Returns the floorplan and the seven AP locations `#0..=#6` from Fig. 10
/// (#0 is the far-corner default used for the through-the-wall results).
pub fn office_floorplan() -> (Floorplan, Vec<Point2>) {
    let con = Material::concrete();
    let dry = Material::drywall();
    let glass = Material::glass();

    let w = 36.5;
    let h = 28.0;
    let mut walls = vec![
        // Outer concrete shell.
        Wall::new(0.0, 0.0, w, 0.0, con),
        Wall::new(w, 0.0, w, h, con),
        Wall::new(w, h, 0.0, h, con),
        Wall::new(0.0, h, 0.0, 0.0, con),
        // Corridor walls running east-west (drywall), with door gaps.
        Wall::new(0.0, 8.0, 14.0, 8.0, dry),
        Wall::new(16.0, 8.0, 36.5, 8.0, dry),
        Wall::new(0.0, 20.0, 10.0, 20.0, dry),
        Wall::new(12.0, 20.0, 26.0, 20.0, dry),
        Wall::new(28.0, 20.0, 36.5, 20.0, dry),
        // Office partitions off the south corridor.
        Wall::new(6.0, 0.0, 6.0, 8.0, dry),
        Wall::new(12.0, 0.0, 12.0, 8.0, dry),
        Wall::new(18.0, 0.0, 18.0, 8.0, dry),
        Wall::new(24.0, 0.0, 24.0, 8.0, dry),
        Wall::new(30.0, 0.0, 30.0, 8.0, dry),
        // Office partitions off the north corridor.
        Wall::new(8.0, 20.0, 8.0, 28.0, dry),
        Wall::new(16.0, 20.0, 16.0, 28.0, dry),
        Wall::new(24.0, 20.0, 24.0, 28.0, dry),
        Wall::new(31.0, 20.0, 31.0, 28.0, dry),
        // Concrete service cores (stairs/elevators) in the middle band.
        Wall::new(15.0, 12.0, 19.0, 12.0, con),
        Wall::new(19.0, 12.0, 19.0, 16.0, con),
        Wall::new(19.0, 16.0, 15.0, 16.0, con),
        Wall::new(15.0, 16.0, 15.0, 12.0, con),
        // Glass meeting room on the east side of the open area.
        Wall::new(28.0, 10.0, 33.0, 10.0, glass),
        Wall::new(33.0, 10.0, 33.0, 16.0, glass),
        Wall::new(28.0, 10.0, 28.0, 16.0, glass),
        // Pillars (modelled as short concrete stubs).
        Wall::new(9.0, 13.5, 9.8, 13.5, con),
        Wall::new(9.0, 14.3, 9.8, 14.3, con),
        Wall::new(25.0, 13.5, 25.8, 13.5, con),
        Wall::new(25.0, 14.3, 25.8, 14.3, con),
    ];
    // A couple of metal cabinets along the south corridor, to enrich
    // specular content.
    walls.push(Wall::new(20.0, 9.0, 22.0, 9.0, Material::metal()));
    walls.push(Wall::new(2.0, 18.5, 4.0, 18.5, Material::metal()));

    let ap_locations = vec![
        Point2::new(1.0, 27.0),  // #0: far corner (default, heavy NLOS).
        Point2::new(21.5, 14.0), // #1: centre of the open area (near core).
        Point2::new(4.0, 10.0),  // #2: west corridor.
        Point2::new(33.0, 18.0), // #3: east side.
        Point2::new(9.0, 2.0),   // #4: inside a south office.
        Point2::new(27.0, 24.0), // #5: inside a north office.
        Point2::new(35.0, 1.0),  // #6: south-east corner.
    ];
    (Floorplan::new(walls), ap_locations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_floorplan_is_free_space() {
        let fp = Floorplan::empty();
        assert!(fp.is_empty());
        assert!(fp.is_los(Point2::new(0.0, 0.0), Point2::new(100.0, 100.0)));
        assert_eq!(
            fp.transmission_amplitude(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)),
            1.0
        );
        assert!(fp.bounds().is_none());
    }

    #[test]
    fn single_wall_blocks() {
        let mut fp = Floorplan::empty();
        fp.push(Wall::new(1.0, -1.0, 1.0, 1.0, Material::drywall()));
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 0.0);
        assert!(!fp.is_los(a, b));
        assert!(fp.blocks(a, b));
        assert_eq!(fp.walls_crossed(a, b).len(), 1);
        let amp = fp.transmission_amplitude(a, b);
        assert!((amp - Material::drywall().transmission_coeff()).abs() < 1e-12);
    }

    #[test]
    fn parallel_ray_does_not_cross() {
        let mut fp = Floorplan::empty();
        fp.push(Wall::new(1.0, -1.0, 1.0, 1.0, Material::drywall()));
        assert!(fp.is_los(Point2::new(0.0, 0.0), Point2::new(0.0, 5.0)));
    }

    #[test]
    fn two_walls_multiply_attenuation() {
        let mut fp = Floorplan::empty();
        fp.push(Wall::new(1.0, -1.0, 1.0, 1.0, Material::drywall()));
        fp.push(Wall::new(2.0, -1.0, 2.0, 1.0, Material::concrete()));
        let amp = fp.transmission_amplitude(Point2::new(0.0, 0.0), Point2::new(3.0, 0.0));
        let expect =
            Material::drywall().transmission_coeff() * Material::concrete().transmission_coeff();
        assert!((amp - expect).abs() < 1e-12);
    }

    #[test]
    fn office_floorplan_dimensions() {
        let (fp, aps) = office_floorplan();
        let (lo, hi) = fp.bounds().unwrap();
        assert!((hi.x - lo.x - 36.5).abs() < 1e-9);
        assert!((hi.y - lo.y - 28.0).abs() < 1e-9);
        assert_eq!(aps.len(), 7);
        // Every AP must be inside the shell.
        for ap in &aps {
            assert!(ap.x > 0.0 && ap.x < 36.5 && ap.y > 0.0 && ap.y < 28.0);
        }
        // The area exceeds the paper's 1,000 m².
        assert!((hi.x - lo.x) * (hi.y - lo.y) > 1000.0);
    }

    #[test]
    fn office_far_corner_is_nlos_to_centre() {
        let (fp, aps) = office_floorplan();
        let centre = Point2::new(22.0, 14.0);
        assert!(
            !fp.is_los(aps[0], centre),
            "AP #0 must be NLOS to the open area"
        );
        // Several walls in between.
        assert!(!fp.walls_crossed(aps[0], centre).is_empty());
    }

    #[test]
    fn office_centre_ap_has_los_nearby() {
        let (fp, aps) = office_floorplan();
        assert!(fp.is_los(aps[1], Point2::new(22.0, 14.0)));
    }
}
