//! OFDM channel frequency response (CFR) synthesis.
//!
//! Converts a set of propagation rays into the per-subcarrier complex
//! channel a WiFi NIC would report as CSI:
//! `H(f_k) = Σ_p a_p · e^{-j2π f_k τ_p}` over the subcarrier grid of the
//! configured channel (paper §5: 40 MHz channel in the 5 GHz band).

use crate::propagation::Ray;
use rim_dsp::complex::{Complex64, ZERO};
use serde::{Deserialize, Serialize};

/// An OFDM subcarrier grid: centre frequency, subcarrier spacing and the
/// list of populated subcarrier indices (relative to the centre).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubcarrierLayout {
    /// Carrier (centre) frequency in Hz.
    pub center_hz: f64,
    /// Subcarrier spacing in Hz.
    pub spacing_hz: f64,
    /// Populated subcarrier indices relative to the centre (DC = 0 is
    /// normally absent).
    pub indices: Vec<i32>,
}

impl SubcarrierLayout {
    /// 802.11n HT40 layout in the 5 GHz band: 114 subcarriers at indices
    /// ±2..±58, 312.5 kHz spacing, 5.8 GHz carrier — the Atheros CSI
    /// configuration the paper's prototype uses (λ/2 ≈ 2.58 cm).
    pub fn ht40_5ghz() -> Self {
        let mut indices: Vec<i32> = (-58..=-2).collect();
        indices.extend(2..=58);
        Self {
            center_hz: 5.8e9,
            spacing_hz: 312_500.0,
            indices,
        }
    }

    /// 802.11n HT20 layout: 56 subcarriers at indices ±1..±28.
    pub fn ht20_5ghz() -> Self {
        let mut indices: Vec<i32> = (-28..=-1).collect();
        indices.extend(1..=28);
        Self {
            center_hz: 5.8e9,
            spacing_hz: 312_500.0,
            indices,
        }
    }

    /// 802.11ac VHT80 layout: 242 subcarriers at indices ±2..±122,
    /// 312.5 kHz spacing, 5.8 GHz carrier — the widest grid a COTS
    /// 5 GHz NIC reports, used by the heterogeneity scenarios to stress
    /// non-default subcarrier counts.
    pub fn vht80_5ghz() -> Self {
        let mut indices: Vec<i32> = (-122..=-2).collect();
        indices.extend(2..=122);
        Self {
            center_hz: 5.8e9,
            spacing_hz: 312_500.0,
            indices,
        }
    }

    /// Intel 5300 grouped CSI on HT40: 30 subcarriers, every fourth index
    /// from −58 to +58 — the layout of the 802.11 CSI Tool [10].
    pub fn intel5300_ht40() -> Self {
        let indices: Vec<i32> = (0..30).map(|k| -58 + 4 * k).collect();
        Self {
            center_hz: 5.8e9,
            spacing_hz: 312_500.0,
            indices,
        }
    }

    /// Number of populated subcarriers.
    pub fn n_subcarriers(&self) -> usize {
        self.indices.len()
    }

    /// Absolute frequency of the `k`-th populated subcarrier.
    pub fn freq(&self, k: usize) -> f64 {
        self.center_hz + self.indices[k] as f64 * self.spacing_hz
    }

    /// Carrier wavelength in metres.
    pub fn wavelength(&self) -> f64 {
        crate::propagation::SPEED_OF_LIGHT / self.center_hz
    }

    /// Occupied RF bandwidth (span of populated subcarriers).
    pub fn bandwidth_hz(&self) -> f64 {
        match (self.indices.iter().min(), self.indices.iter().max()) {
            (Some(&lo), Some(&hi)) => (hi - lo) as f64 * self.spacing_hz,
            _ => 0.0,
        }
    }
}

/// Synthesizes the CFR of a ray set over a subcarrier layout.
///
/// Uses a per-ray phasor recurrence over the dense index range so only two
/// trigonometric evaluations are needed per ray regardless of subcarrier
/// count.
pub fn synthesize_cfr(rays: &[Ray], layout: &SubcarrierLayout) -> Vec<Complex64> {
    let n = layout.n_subcarriers();
    let mut out = vec![ZERO; n];
    if rays.is_empty() || n == 0 {
        return out;
    }
    let lo = *layout.indices.iter().min().unwrap();
    let hi = *layout.indices.iter().max().unwrap();
    let span = (hi - lo) as usize + 1;
    // Map dense offset -> output slot.
    let mut slot = vec![usize::MAX; span];
    for (k, &idx) in layout.indices.iter().enumerate() {
        slot[(idx - lo) as usize] = k;
    }
    let f_lo = layout.center_hz + lo as f64 * layout.spacing_hz;
    for ray in rays {
        let tau = ray.delay_s;
        // Phase at the lowest index, then a constant step per index.
        let mut cur = ray.amp * Complex64::cis(-std::f64::consts::TAU * f_lo * tau);
        let step = Complex64::cis(-std::f64::consts::TAU * layout.spacing_hz * tau);
        for s in &slot {
            if *s != usize::MAX {
                out[*s] += cur;
            }
            cur *= step;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::SPEED_OF_LIGHT;

    #[test]
    fn ht40_layout_shape() {
        let l = SubcarrierLayout::ht40_5ghz();
        assert_eq!(l.n_subcarriers(), 114);
        assert!(!l.indices.contains(&0), "no DC subcarrier");
        assert!(!l.indices.contains(&1) && !l.indices.contains(&-1));
        assert!((l.bandwidth_hz() - 116.0 * 312_500.0).abs() < 1.0);
        assert!((l.wavelength() - SPEED_OF_LIGHT / 5.8e9).abs() < 1e-12);
        // Half wavelength matches the paper's 2.58 cm antenna spacing.
        assert!((l.wavelength() / 2.0 - 0.0258).abs() < 3e-4);
    }

    #[test]
    fn ht20_and_intel_layouts() {
        assert_eq!(SubcarrierLayout::ht20_5ghz().n_subcarriers(), 56);
        let i = SubcarrierLayout::intel5300_ht40();
        assert_eq!(i.n_subcarriers(), 30);
        assert_eq!(i.indices[0], -58);
        assert_eq!(*i.indices.last().unwrap(), 58);
    }

    #[test]
    fn vht80_layout_shape() {
        let l = SubcarrierLayout::vht80_5ghz();
        assert_eq!(l.n_subcarriers(), 242);
        assert!(!l.indices.contains(&0), "no DC subcarrier");
        assert!(!l.indices.contains(&1) && !l.indices.contains(&-1));
        assert_eq!(l.indices[0], -122);
        assert_eq!(*l.indices.last().unwrap(), 122);
        assert!((l.bandwidth_hz() - 244.0 * 312_500.0).abs() < 1.0);
        // Same carrier as HT40: antenna spacing stays λ/2 ≈ 2.58 cm
        // across bandwidths, so array geometry is bandwidth-independent.
        assert!((l.wavelength() - SPEED_OF_LIGHT / 5.8e9).abs() < 1e-12);
    }

    #[test]
    fn single_ray_has_unit_magnitude_profile() {
        let l = SubcarrierLayout::ht40_5ghz();
        let ray = Ray {
            delay_s: 30e-9,
            amp: Complex64::from_re(0.7),
        };
        let cfr = synthesize_cfr(&[ray], &l);
        assert_eq!(cfr.len(), 114);
        for h in &cfr {
            assert!((h.abs() - 0.7).abs() < 1e-9, "flat magnitude for one path");
        }
    }

    #[test]
    fn single_ray_phase_slope_matches_delay() {
        let l = SubcarrierLayout::ht40_5ghz();
        let tau = 50e-9;
        let ray = Ray {
            delay_s: tau,
            amp: Complex64::from_re(1.0),
        };
        let cfr = synthesize_cfr(&[ray], &l);
        // Between adjacent populated indices the phase advances by
        // -2π·Δidx·spacing·τ.
        let dphi_expect = -std::f64::consts::TAU * l.spacing_hz * tau;
        for k in 1..20 {
            let didx = (l.indices[k] - l.indices[k - 1]) as f64;
            let measured = (cfr[k] * cfr[k - 1].conj()).arg();
            assert!(
                (measured - dphi_expect * didx).abs() < 1e-9,
                "k={k}: {measured} vs {}",
                dphi_expect * didx
            );
        }
    }

    #[test]
    fn recurrence_matches_direct_evaluation() {
        let l = SubcarrierLayout::ht40_5ghz();
        let rays = vec![
            Ray {
                delay_s: 20e-9,
                amp: Complex64::new(0.5, 0.2),
            },
            Ray {
                delay_s: 95e-9,
                amp: Complex64::new(-0.1, 0.4),
            },
            Ray {
                delay_s: 210e-9,
                amp: Complex64::new(0.05, -0.03),
            },
        ];
        let fast = synthesize_cfr(&rays, &l);
        for (k, h) in fast.iter().enumerate() {
            let f = l.freq(k);
            let direct: Complex64 = rays
                .iter()
                .map(|r| r.amp * Complex64::cis(-std::f64::consts::TAU * f * r.delay_s))
                .sum();
            assert!((*h - direct).abs() < 1e-6, "subcarrier {k}");
        }
    }

    #[test]
    fn superposition_is_linear() {
        let l = SubcarrierLayout::ht20_5ghz();
        let r1 = Ray {
            delay_s: 10e-9,
            amp: Complex64::from_re(1.0),
        };
        let r2 = Ray {
            delay_s: 60e-9,
            amp: Complex64::from_re(0.3),
        };
        let both = synthesize_cfr(&[r1, r2], &l);
        let a = synthesize_cfr(&[r1], &l);
        let b = synthesize_cfr(&[r2], &l);
        for k in 0..l.n_subcarriers() {
            assert!((both[k] - (a[k] + b[k])).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_rays_give_zero_cfr() {
        let l = SubcarrierLayout::ht40_5ghz();
        let cfr = synthesize_cfr(&[], &l);
        assert!(cfr.iter().all(|&h| h == ZERO));
    }
}
