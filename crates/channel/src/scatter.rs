//! Point scatterer fields.
//!
//! Indoor channels at 5 GHz contain tens of significant multipath
//! components arriving from diverse directions (paper §6.2.8 cites [8]).
//! Beyond the specular wall reflections handled by the image method, we
//! model the diffuse part as a field of point scatterers (furniture,
//! shelves, people at rest), each re-radiating with a fixed complex gain.
//! A *dynamic* scatterer drifts along a slow path, standing in for walking
//! humans when reproducing the environmental-dynamics robustness results.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rim_dsp::complex::Complex64;
use rim_dsp::geom::{Point2, Vec2};

/// A static point scatterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scatterer {
    /// Scatterer position, metres.
    pub pos: Point2,
    /// Complex re-radiation gain (dimensionless; applied on top of the
    /// two-leg path loss).
    pub gain: Complex64,
}

/// A scatterer that moves over time — used to emulate walking humans and
/// other environmental dynamics (paper §6.2.8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicScatterer {
    /// Position at `t = 0`.
    pub start: Point2,
    /// Constant drift velocity, m/s.
    pub velocity: Vec2,
    /// Complex re-radiation gain.
    pub gain: Complex64,
}

impl DynamicScatterer {
    /// Position at time `t` seconds.
    pub fn pos_at(&self, t: f64) -> Point2 {
        self.start + self.velocity * t
    }
}

/// Generates `count` static scatterers uniformly over the rectangle
/// `lo..hi`, with log-normal amplitude (median `median_gain`) and uniform
/// random phase. Deterministic for a given `seed`.
///
/// # Panics
/// Panics if the rectangle is inverted.
pub fn uniform_field(
    lo: Point2,
    hi: Point2,
    count: usize,
    median_gain: f64,
    seed: u64,
) -> Vec<Scatterer> {
    assert!(hi.x >= lo.x && hi.y >= lo.y, "inverted scatterer region");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let x = rng.gen_range(lo.x..=hi.x);
            let y = rng.gen_range(lo.y..=hi.y);
            // Log-normal amplitude: ±~4 dB spread around the median.
            let ln_sigma = 0.5;
            let z: f64 = sample_standard_normal(&mut rng);
            let amp = median_gain * (ln_sigma * z).exp();
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            Scatterer {
                pos: Point2::new(x, y),
                gain: Complex64::from_polar(amp, phase),
            }
        })
        .collect()
}

/// Generates `count` dynamic scatterers ("walking humans") inside the
/// rectangle with speeds up to `max_speed` m/s.
pub fn walking_humans(
    lo: Point2,
    hi: Point2,
    count: usize,
    max_speed: f64,
    gain: f64,
    seed: u64,
) -> Vec<DynamicScatterer> {
    assert!(hi.x >= lo.x && hi.y >= lo.y, "inverted region");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let x = rng.gen_range(lo.x..=hi.x);
            let y = rng.gen_range(lo.y..=hi.y);
            let speed = rng.gen_range(0.2..=max_speed.max(0.2));
            let dir = rng.gen_range(0.0..std::f64::consts::TAU);
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            DynamicScatterer {
                start: Point2::new(x, y),
                velocity: Vec2::from_angle(dir) * speed,
                gain: Complex64::from_polar(gain, phase),
            }
        })
        .collect()
}

/// Samples a standard normal via Box–Muller (keeps us off rand_distr).
pub(crate) fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_field_deterministic() {
        let lo = Point2::new(0.0, 0.0);
        let hi = Point2::new(10.0, 10.0);
        let a = uniform_field(lo, hi, 20, 1.0, 42);
        let b = uniform_field(lo, hi, 20, 1.0, 42);
        assert_eq!(a, b);
        let c = uniform_field(lo, hi, 20, 1.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_field_within_bounds() {
        let lo = Point2::new(-5.0, 2.0);
        let hi = Point2::new(5.0, 8.0);
        for s in uniform_field(lo, hi, 100, 1.0, 7) {
            assert!(s.pos.x >= lo.x && s.pos.x <= hi.x);
            assert!(s.pos.y >= lo.y && s.pos.y <= hi.y);
            assert!(s.gain.abs() > 0.0);
        }
    }

    #[test]
    fn field_count_and_empty() {
        let lo = Point2::new(0.0, 0.0);
        let hi = Point2::new(1.0, 1.0);
        assert_eq!(uniform_field(lo, hi, 0, 1.0, 1).len(), 0);
        assert_eq!(uniform_field(lo, hi, 33, 1.0, 1).len(), 33);
    }

    #[test]
    fn dynamic_scatterer_moves_linearly() {
        let d = DynamicScatterer {
            start: Point2::new(1.0, 1.0),
            velocity: Vec2::new(0.5, -0.25),
            gain: Complex64::from_re(1.0),
        };
        let p = d.pos_at(4.0);
        assert!((p.x - 3.0).abs() < 1e-12);
        assert!((p.y - 0.0).abs() < 1e-12);
        assert_eq!(d.pos_at(0.0), d.start);
    }

    #[test]
    fn walking_humans_speed_bounds() {
        let lo = Point2::new(0.0, 0.0);
        let hi = Point2::new(30.0, 30.0);
        for h in walking_humans(lo, hi, 50, 1.5, 0.3, 99) {
            let v = h.velocity.norm();
            assert!((0.2..=1.5 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
