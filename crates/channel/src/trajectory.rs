//! Ground-truth motion: device poses over time and workload generators.
//!
//! A [`Trajectory`] is the uniformly-sampled pose (position + device
//! orientation) of the tracked device. The generators produce the motion
//! patterns of the paper's evaluation: straight desktop/cart pushes
//! (Fig. 11), direction sweeps (Fig. 12), in-place rotations (Fig. 13),
//! stop-and-go traces (Fig. 7), back-and-forth moves (Fig. 8) and polyline
//! floor traces with *sideway* segments where the heading changes while the
//! device orientation does not (Fig. 20).
//!
//! Device orientation is tracked separately from heading precisely because
//! RIM distinguishes them: a magnetometer reports orientation, RIM reports
//! heading.

use rim_dsp::geom::{Point2, Vec2};

/// Pose of the device at one sample instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Device reference-point position, metres.
    pub pos: Point2,
    /// Device orientation (rotation of the device frame relative to the
    /// world frame), radians.
    pub orientation: f64,
}

/// A uniformly-sampled device trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    sample_rate_hz: f64,
    poses: Vec<Pose>,
}

impl Trajectory {
    /// Creates a trajectory from raw poses.
    ///
    /// # Panics
    /// Panics if the sample rate is not positive and finite.
    pub fn new(sample_rate_hz: f64, poses: Vec<Pose>) -> Self {
        assert!(
            sample_rate_hz > 0.0 && sample_rate_hz.is_finite(),
            "sample rate must be positive"
        );
        Self {
            sample_rate_hz,
            poses,
        }
    }

    /// Sampling rate in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Sample interval in seconds.
    pub fn dt(&self) -> f64 {
        1.0 / self.sample_rate_hz
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.poses.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.poses.is_empty()
    }

    /// Pose at sample index `i`.
    pub fn pose(&self, i: usize) -> Pose {
        self.poses[i]
    }

    /// All poses.
    pub fn poses(&self) -> &[Pose] {
        &self.poses
    }

    /// Time of sample `i`, seconds.
    pub fn time(&self, i: usize) -> f64 {
        i as f64 / self.sample_rate_hz
    }

    /// Total duration, seconds.
    pub fn duration(&self) -> f64 {
        if self.poses.is_empty() {
            0.0
        } else {
            (self.poses.len() - 1) as f64 / self.sample_rate_hz
        }
    }

    /// Total path length, metres.
    pub fn total_distance(&self) -> f64 {
        self.poses
            .windows(2)
            .map(|w| w[0].pos.distance(w[1].pos))
            .sum()
    }

    /// Cumulative travelled distance at every sample, metres.
    pub fn cumulative_distance(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.poses.len());
        let mut acc = 0.0;
        for (i, p) in self.poses.iter().enumerate() {
            if i > 0 {
                acc += self.poses[i - 1].pos.distance(p.pos);
            }
            out.push(acc);
        }
        out
    }

    /// Instantaneous ground-truth speed at each sample (central
    /// differences; one-sided at the ends), m/s.
    pub fn speeds(&self) -> Vec<f64> {
        let n = self.poses.len();
        let dt = self.dt();
        (0..n)
            .map(|i| {
                let (a, b, span) = if n < 2 {
                    return 0.0;
                } else if i == 0 {
                    (0, 1, dt)
                } else if i == n - 1 {
                    (n - 2, n - 1, dt)
                } else {
                    (i - 1, i + 1, 2.0 * dt)
                };
                self.poses[a].pos.distance(self.poses[b].pos) / span
            })
            .collect()
    }

    /// Ground-truth heading (direction of motion) at each sample, or `None`
    /// while stationary.
    pub fn headings(&self) -> Vec<Option<f64>> {
        let n = self.poses.len();
        (0..n)
            .map(|i| {
                if n < 2 {
                    return None;
                }
                let (a, b) = if i == 0 {
                    (0, 1)
                } else if i == n - 1 {
                    (n - 2, n - 1)
                } else {
                    (i - 1, i + 1)
                };
                let v = self.poses[a].pos.to(self.poses[b].pos);
                if v.norm() < 1e-9 {
                    None
                } else {
                    Some(v.angle())
                }
            })
            .collect()
    }

    /// Appends another trajectory (sample rates must match).
    ///
    /// # Panics
    /// Panics on sample-rate mismatch.
    pub fn extend(&mut self, other: &Trajectory) {
        assert!(
            (self.sample_rate_hz - other.sample_rate_hz).abs() < 1e-9,
            "sample-rate mismatch"
        );
        self.poses.extend_from_slice(&other.poses);
    }

    /// World position of an antenna mounted at a device-frame offset.
    pub fn antenna_position(&self, i: usize, offset: Vec2) -> Point2 {
        let p = self.poses[i];
        p.pos + offset.rotate(p.orientation)
    }
}

/// How device orientation evolves along a generated path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OrientationMode {
    /// Orientation follows the direction of motion (normal push).
    FollowPath,
    /// Orientation stays fixed at the given angle — produces the *sideway*
    /// movements of paper §6.3.3 whenever the path direction differs.
    Fixed(f64),
}

/// Straight-line move of `distance` metres in direction `heading` at
/// constant `speed`, starting at `start`; the device is oriented per
/// `orientation`.
pub fn line(
    start: Point2,
    heading: f64,
    distance: f64,
    speed: f64,
    sample_rate_hz: f64,
    orientation: OrientationMode,
) -> Trajectory {
    assert!(distance >= 0.0 && speed > 0.0, "invalid line parameters");
    let n = ((distance / speed) * sample_rate_hz).round() as usize + 1;
    let dir = Vec2::from_angle(heading);
    let step = speed / sample_rate_hz;
    let orient = match orientation {
        OrientationMode::FollowPath => heading,
        OrientationMode::Fixed(a) => a,
    };
    let poses = (0..n)
        .map(|k| Pose {
            pos: start + dir * (step * k as f64),
            orientation: orient,
        })
        .collect();
    Trajectory::new(sample_rate_hz, poses)
}

/// Straight-line move with a trapezoidal speed profile: accelerate at
/// `accel` m/s² to at most `peak_speed`, cruise, then decelerate to stop
/// exactly after `distance` metres (triangular profile when the distance
/// is too short to reach `peak_speed`). This is how physical carts and
/// hands actually move, and it is what gives inertial sensors something
/// to measure.
pub fn line_ramped(
    start: Point2,
    heading: f64,
    distance: f64,
    peak_speed: f64,
    accel: f64,
    sample_rate_hz: f64,
    orientation: OrientationMode,
) -> Trajectory {
    assert!(
        distance >= 0.0 && peak_speed > 0.0 && accel > 0.0,
        "invalid ramped-line parameters"
    );
    let dir = Vec2::from_angle(heading);
    let orient = match orientation {
        OrientationMode::FollowPath => heading,
        OrientationMode::Fixed(a) => a,
    };
    let dt = 1.0 / sample_rate_hz;
    let mut poses = vec![Pose {
        pos: start,
        orientation: orient,
    }];
    let mut s = 0.0;
    let mut v = 0.0;
    while s < distance {
        // Speed ceiling imposed by the need to stop in the remaining
        // distance.
        let remaining = distance - s;
        let v_stop = (2.0 * accel * remaining).sqrt();
        let v_target = peak_speed.min(v_stop);
        if v < v_target {
            v = (v + accel * dt).min(v_target);
        } else {
            v = (v - accel * dt).max(v_target.min(v));
        }
        // Guarantee forward progress so the loop terminates even when the
        // commanded speed underflows near the stop point.
        let step = (v * dt).max(1e-6);
        s += step;
        poses.push(Pose {
            pos: start + dir * s.min(distance),
            orientation: orient,
        });
    }
    Trajectory::new(sample_rate_hz, poses)
}

/// Constant-speed traversal of a waypoint polyline.
pub fn polyline(
    waypoints: &[Point2],
    speed: f64,
    sample_rate_hz: f64,
    orientation: OrientationMode,
) -> Trajectory {
    assert!(speed > 0.0, "speed must be positive");
    assert!(
        waypoints.len() >= 2,
        "polyline needs at least two waypoints"
    );
    let mut poses = Vec::new();
    let step = speed / sample_rate_hz;
    let mut leftover = 0.0;
    for w in waypoints.windows(2) {
        let seg_vec = w[0].to(w[1]);
        let seg_len = seg_vec.norm();
        if seg_len < 1e-12 {
            continue;
        }
        let dir = seg_vec.normalize();
        let heading = dir.angle();
        let orient = match orientation {
            OrientationMode::FollowPath => heading,
            OrientationMode::Fixed(a) => a,
        };
        let mut s = leftover;
        while s < seg_len {
            poses.push(Pose {
                pos: w[0] + dir * s,
                orientation: orient,
            });
            s += step;
        }
        leftover = s - seg_len;
    }
    // Always land exactly on the final waypoint.
    let last = *waypoints.last().unwrap();
    let final_heading = waypoints[waypoints.len() - 2].to(last).angle();
    poses.push(Pose {
        pos: last,
        orientation: match orientation {
            OrientationMode::FollowPath => final_heading,
            OrientationMode::Fixed(a) => a,
        },
    });
    Trajectory::new(sample_rate_hz, poses)
}

/// Forward `distance`, pause, then backward to the start — the Fig. 8
/// back-and-forth workload. The device orientation stays fixed throughout
/// (at `heading` for [`OrientationMode::FollowPath`], which here means
/// "face the outbound direction", or at the given fixed angle) — the
/// device never turns around between the phases.
pub fn back_and_forth(
    start: Point2,
    heading: f64,
    distance: f64,
    speed: f64,
    pause_s: f64,
    sample_rate_hz: f64,
    orientation: OrientationMode,
) -> Trajectory {
    let orient = match orientation {
        OrientationMode::FollowPath => heading,
        OrientationMode::Fixed(a) => a,
    };
    let mut t = line(
        start,
        heading,
        distance,
        speed,
        sample_rate_hz,
        OrientationMode::Fixed(orient),
    );
    let end = t.poses().last().unwrap().pos;
    let hold = dwell(end, orient, pause_s, sample_rate_hz);
    t.extend(&hold);
    let back = line(
        end,
        heading + std::f64::consts::PI,
        distance,
        speed,
        sample_rate_hz,
        OrientationMode::Fixed(orient),
    );
    t.extend(&back);
    t
}

/// Arc motion: the device translates along a circular arc of `radius`
/// metres while its orientation follows the tangent — the *swinging turn*
/// (move while turning) that paper §7 lists as an open problem for RIM's
/// rotation sensing. Positive `arc_angle` turns counter-clockwise.
///
/// # Panics
/// Panics for non-positive radius/speed or zero angle.
pub fn arc(
    centre: Point2,
    radius: f64,
    start_angle: f64,
    arc_angle: f64,
    speed: f64,
    sample_rate_hz: f64,
) -> Trajectory {
    assert!(radius > 0.0 && speed > 0.0, "invalid arc parameters");
    assert!(arc_angle != 0.0, "zero arc");
    let arc_len = radius * arc_angle.abs();
    let n = ((arc_len / speed) * sample_rate_hz).round() as usize + 1;
    let poses = (0..n)
        .map(|k| {
            let t = k as f64 / (n.max(2) - 1) as f64;
            let ang = start_angle + arc_angle * t;
            let pos = centre + Vec2::from_angle(ang) * radius;
            // Tangent direction: +90° off the radius for CCW, −90° for CW.
            let orientation = ang + std::f64::consts::FRAC_PI_2 * arc_angle.signum();
            Pose { pos, orientation }
        })
        .collect();
    Trajectory::new(sample_rate_hz, poses)
}

/// Stationary dwell of `duration_s` seconds.
pub fn dwell(pos: Point2, orientation: f64, duration_s: f64, sample_rate_hz: f64) -> Trajectory {
    let n = (duration_s * sample_rate_hz).round() as usize;
    Trajectory::new(
        sample_rate_hz,
        (0..n).map(|_| Pose { pos, orientation }).collect(),
    )
}

/// Stop-and-go: alternating moves of `move_dist` and dwells of `pause_s`
/// along a fixed direction (the Fig. 7 movement-detection workload).
pub fn stop_and_go(
    start: Point2,
    heading: f64,
    move_dist: f64,
    pause_s: f64,
    segments: usize,
    speed: f64,
    sample_rate_hz: f64,
) -> Trajectory {
    let mut t = Trajectory::new(sample_rate_hz, Vec::new());
    let mut cur = start;
    for k in 0..segments {
        let seg = line(
            cur,
            heading,
            move_dist,
            speed,
            sample_rate_hz,
            OrientationMode::Fixed(heading),
        );
        cur = seg.poses().last().unwrap().pos;
        t.extend(&seg);
        if k + 1 < segments {
            t.extend(&dwell(cur, heading, pause_s, sample_rate_hz));
        }
    }
    t
}

/// The gait shape for [`gait_line`]: mean speed, step length, and the
/// per-step surge fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gait {
    /// Mean forward speed, m/s.
    pub speed: f64,
    /// Metres per step — one surge/ease alternation per step.
    pub step_len: f64,
    /// Fractional speed modulation in `[0, 1)`: the walk alternates
    /// `speed·(1+surge)` and `speed·(1−surge)`.
    pub surge: f64,
}

/// Gait-modulated straight walk: like [`line`] but the speed surges and
/// eases once per step — the push-off/heel-strike cadence of a walking
/// or running human. A higher speed/surge with a longer step models
/// running; the surge transients are what a body-worn IMU actually
/// measures, and the inter-step lulls are the stance-detector trap the
/// ZUPT arbitration has to survive.
///
/// # Panics
/// Panics for negative distance, non-positive speed/step length, or a
/// surge outside `[0, 1)`.
pub fn gait_line(
    start: Point2,
    heading: f64,
    distance: f64,
    gait: Gait,
    sample_rate_hz: f64,
    orientation: OrientationMode,
) -> Trajectory {
    assert!(
        distance >= 0.0 && gait.speed > 0.0 && gait.step_len > 0.0,
        "invalid gait parameters"
    );
    assert!((0.0..1.0).contains(&gait.surge), "surge must be in [0, 1)");
    let dir = Vec2::from_angle(heading);
    let orient = match orientation {
        OrientationMode::FollowPath => heading,
        OrientationMode::Fixed(a) => a,
    };
    let dt = 1.0 / sample_rate_hz;
    let mut poses = vec![Pose {
        pos: start,
        orientation: orient,
    }];
    let mut s = 0.0;
    while s < distance {
        let step_idx = (s / gait.step_len) as usize;
        let v = if step_idx.is_multiple_of(2) {
            gait.speed * (1.0 + gait.surge)
        } else {
            gait.speed * (1.0 - gait.surge)
        };
        s += v * dt;
        poses.push(Pose {
            pos: start + dir * s.min(distance),
            orientation: orient,
        });
    }
    Trajectory::new(sample_rate_hz, poses)
}

/// Random hand shake: the device lurches between seeded random targets
/// inside a disc of `amplitude` metres around `centre`, a few times per
/// second, for `duration_s` seconds — the adversarial no-net-motion
/// workload of the scenario zoo. Orientation stays fixed. Deterministic
/// for a given seed.
///
/// # Panics
/// Panics for non-positive amplitude/duration.
pub fn shake(
    centre: Point2,
    orientation: f64,
    amplitude: f64,
    duration_s: f64,
    sample_rate_hz: f64,
    seed: u64,
) -> Trajectory {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(
        amplitude > 0.0 && duration_s > 0.0,
        "invalid shake parameters"
    );
    const TWITCH_HZ: f64 = 4.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let n_way = (duration_s * TWITCH_HZ).ceil() as usize + 1;
    let mut way = vec![centre];
    for _ in 1..=n_way {
        // √u radius for a uniform draw over the disc.
        let r = amplitude * rng.gen_range(0.0f64..=1.0).sqrt();
        let a = rng.gen_range(0.0..std::f64::consts::TAU);
        way.push(centre + Vec2::from_angle(a) * r);
    }
    let n = (duration_s * sample_rate_hz).round() as usize + 1;
    let poses = (0..n)
        .map(|k| {
            let t = k as f64 / sample_rate_hz * TWITCH_HZ;
            let i = (t as usize).min(way.len() - 2);
            let frac = (t - i as f64).clamp(0.0, 1.0);
            Pose {
                pos: way[i] + way[i].to(way[i + 1]) * frac,
                orientation,
            }
        })
        .collect();
    Trajectory::new(sample_rate_hz, poses)
}

/// In-place rotation about `centre` by `total_angle` radians (sign gives
/// direction) at `angular_speed` rad/s. The device reference point stays at
/// `centre`; antennas sweep circles around it.
pub fn rotate_in_place(
    centre: Point2,
    start_orientation: f64,
    total_angle: f64,
    angular_speed: f64,
    sample_rate_hz: f64,
) -> Trajectory {
    assert!(angular_speed > 0.0, "angular speed must be positive");
    let n = ((total_angle.abs() / angular_speed) * sample_rate_hz).round() as usize + 1;
    let step = total_angle / (n.max(2) - 1) as f64;
    Trajectory::new(
        sample_rate_hz,
        (0..n)
            .map(|k| Pose {
                pos: centre,
                orientation: start_orientation + step * k as f64,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn line_distance_and_speed() {
        let t = line(
            Point2::ORIGIN,
            0.0,
            2.0,
            1.0,
            100.0,
            OrientationMode::FollowPath,
        );
        assert!((t.total_distance() - 2.0).abs() < 1e-9);
        assert!((t.duration() - 2.0).abs() < 1e-9);
        let speeds = t.speeds();
        for &v in &speeds[1..speeds.len() - 1] {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn line_heading_and_orientation() {
        let t = line(
            Point2::ORIGIN,
            FRAC_PI_2,
            1.0,
            1.0,
            50.0,
            OrientationMode::FollowPath,
        );
        for h in t.headings().into_iter().flatten() {
            assert!((h - FRAC_PI_2).abs() < 1e-9);
        }
        let t2 = line(
            Point2::ORIGIN,
            FRAC_PI_2,
            1.0,
            1.0,
            50.0,
            OrientationMode::Fixed(0.3),
        );
        assert!(t2
            .poses()
            .iter()
            .all(|p| (p.orientation - 0.3).abs() < 1e-12));
    }

    #[test]
    fn line_ramped_profile() {
        let t = line_ramped(
            Point2::ORIGIN,
            0.0,
            2.0,
            1.0,
            2.0,
            200.0,
            OrientationMode::FollowPath,
        );
        assert!((t.total_distance() - 2.0).abs() < 0.01);
        let speeds = t.speeds();
        // Starts and ends slow, cruises at the peak in the middle.
        assert!(speeds[1] < 0.3, "starts slow: {}", speeds[1]);
        let mid = speeds[speeds.len() / 2];
        assert!((mid - 1.0).abs() < 0.05, "cruise at peak: {mid}");
        assert!(*speeds.last().unwrap() < 0.3, "ends slow");
        // Monotone position progress.
        for w in t.poses().windows(2) {
            assert!(w[1].pos.x >= w[0].pos.x);
        }
    }

    #[test]
    fn line_ramped_short_distance_is_triangular() {
        // Too short to reach 2 m/s at 1 m/s²: peak speed stays below.
        let t = line_ramped(
            Point2::ORIGIN,
            0.0,
            0.5,
            2.0,
            1.0,
            200.0,
            OrientationMode::FollowPath,
        );
        assert!((t.total_distance() - 0.5).abs() < 0.01);
        let peak = t.speeds().into_iter().fold(0.0f64, f64::max);
        assert!(peak < 1.2, "triangular profile peak {peak}");
    }

    #[test]
    fn polyline_hits_waypoints() {
        let wps = [
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 3.0),
        ];
        let t = polyline(&wps, 1.0, 100.0, OrientationMode::FollowPath);
        assert!((t.total_distance() - 5.0).abs() < 0.05);
        let last = t.poses().last().unwrap().pos;
        assert!(last.distance(wps[2]) < 1e-9);
    }

    #[test]
    fn polyline_sideway_keeps_orientation() {
        let wps = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
        ];
        let t = polyline(&wps, 0.5, 100.0, OrientationMode::Fixed(0.0));
        assert!(t.poses().iter().all(|p| p.orientation == 0.0));
        // Heading changes to +90° in the second leg even though orientation
        // does not — a sideway movement.
        let hs = t.headings();
        let late = hs[t.len() - 2].unwrap();
        assert!((late - FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "two waypoints")]
    fn polyline_rejects_single_point() {
        let _ = polyline(&[Point2::ORIGIN], 1.0, 100.0, OrientationMode::FollowPath);
    }

    #[test]
    fn back_and_forth_returns_to_start() {
        let t = back_and_forth(
            Point2::ORIGIN,
            0.0,
            1.0,
            0.5,
            0.5,
            100.0,
            OrientationMode::Fixed(0.0),
        );
        let last = t.poses().last().unwrap().pos;
        assert!(last.distance(Point2::ORIGIN) < 1e-6);
        assert!((t.total_distance() - 2.0).abs() < 0.02);
    }

    #[test]
    fn dwell_is_static() {
        let t = dwell(Point2::new(1.0, 2.0), 0.5, 1.0, 200.0);
        assert_eq!(t.len(), 200);
        assert_eq!(t.total_distance(), 0.0);
        assert!(t.speeds().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stop_and_go_structure() {
        let t = stop_and_go(Point2::ORIGIN, 0.0, 1.0, 0.5, 3, 1.0, 100.0);
        // 3 moves of 1 m with 2 pauses in between.
        assert!((t.total_distance() - 3.0).abs() < 0.05);
        let speeds = t.speeds();
        let stationary = speeds.iter().filter(|&&v| v < 1e-9).count();
        assert!(
            stationary >= 90,
            "two 0.5 s pauses at 100 Hz, got {stationary}"
        );
    }

    #[test]
    fn arc_follows_circle_with_tangent_orientation() {
        let t = arc(Point2::ORIGIN, 2.0, 0.0, FRAC_PI_2, 1.0, 100.0);
        // Path length = r·θ = π.
        assert!((t.total_distance() - std::f64::consts::PI).abs() < 0.02);
        // Every pose stays on the circle.
        for p in t.poses() {
            assert!((p.pos.distance(Point2::ORIGIN) - 2.0).abs() < 1e-9);
        }
        // Orientation is tangent: at the start (angle 0, CCW) it points +y.
        assert!((t.pose(0).orientation - FRAC_PI_2).abs() < 1e-9);
        // Net orientation change equals the arc angle.
        let net = t.poses().last().unwrap().orientation - t.pose(0).orientation;
        assert!((net - FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn rotation_holds_position_and_sweeps_orientation() {
        let t = rotate_in_place(Point2::new(3.0, 3.0), 0.0, PI, 1.0, 100.0);
        assert!(t
            .poses()
            .iter()
            .all(|p| p.pos.distance(Point2::new(3.0, 3.0)) < 1e-12));
        let last = t.poses().last().unwrap().orientation;
        assert!((last - PI).abs() < 1e-9);
    }

    #[test]
    fn antenna_position_rotates_with_device() {
        let t = rotate_in_place(Point2::ORIGIN, 0.0, FRAC_PI_2, 1.0, 10.0);
        let offset = Vec2::new(0.1, 0.0);
        let p0 = t.antenna_position(0, offset);
        let p_end = t.antenna_position(t.len() - 1, offset);
        assert!((p0.x - 0.1).abs() < 1e-12);
        assert!(
            (p_end.y - 0.1).abs() < 1e-9,
            "antenna swung to +y: {p_end:?}"
        );
        // Radius preserved.
        assert!((p_end.distance(Point2::ORIGIN) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cumulative_distance_monotone() {
        let t = line(
            Point2::ORIGIN,
            1.0,
            3.0,
            1.5,
            60.0,
            OrientationMode::FollowPath,
        );
        let cum = t.cumulative_distance();
        assert_eq!(cum.len(), t.len());
        assert_eq!(cum[0], 0.0);
        for w in cum.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((cum.last().unwrap() - t.total_distance()).abs() < 1e-9);
    }

    #[test]
    fn extend_panics_on_rate_mismatch() {
        let mut a = dwell(Point2::ORIGIN, 0.0, 0.1, 100.0);
        let b = dwell(Point2::ORIGIN, 0.0, 0.1, 200.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.extend(&b)));
        assert!(result.is_err());
    }

    #[test]
    fn gait_line_surges_around_the_mean_speed() {
        let t = gait_line(
            Point2::ORIGIN,
            0.0,
            4.0,
            Gait {
                speed: 1.0,
                step_len: 0.5,
                surge: 0.25,
            },
            200.0,
            OrientationMode::FollowPath,
        );
        assert!((t.total_distance() - 4.0).abs() < 0.02);
        let speeds = t.speeds();
        let max = speeds.iter().cloned().fold(0.0, f64::max);
        let min = speeds[1..speeds.len() - 1]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(max > 1.2 && max < 1.3, "push-off surge present: {max}");
        assert!(min < 0.8, "inter-step ease present: {min}");
        // Never moves backwards.
        for s in &speeds {
            assert!(*s >= 0.0);
        }
    }

    #[test]
    fn shake_is_seeded_and_bounded() {
        let a = shake(Point2::new(1.0, 2.0), 0.3, 0.08, 2.0, 100.0, 9);
        let b = shake(Point2::new(1.0, 2.0), 0.3, 0.08, 2.0, 100.0, 9);
        let c = shake(Point2::new(1.0, 2.0), 0.3, 0.08, 2.0, 100.0, 10);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.poses().iter().zip(b.poses()) {
            assert_eq!(pa.pos.x, pb.pos.x);
            assert_eq!(pa.pos.y, pb.pos.y);
        }
        assert!(
            a.poses()
                .iter()
                .zip(c.poses())
                .any(|(pa, pc)| pa.pos.x != pc.pos.x),
            "different seed, different jitter"
        );
        for p in a.poses() {
            assert!(
                p.pos.distance(Point2::new(1.0, 2.0)) <= 0.08 + 1e-9,
                "excursion stays inside the amplitude disc"
            );
            assert_eq!(p.orientation, 0.3);
        }
        // Net displacement is (near) zero but plenty of path is covered.
        assert!(a.total_distance() > 0.3);
    }
}
