//! Statistical validation of the channel simulator against propagation
//! theory — the checks that justify using it as a stand-in for real CSI
//! hardware (see DESIGN.md, "Hardware / data substitutions").

use rim_channel::{
    uniform_field, ApConfig, ChannelSimulator, Floorplan, RayTracer, SubcarrierLayout, TracerConfig,
};
use rim_dsp::bessel::theory_trrs;
use rim_dsp::complex::Complex64;
use rim_dsp::geom::Point2;

fn rich_sim(seed: u64) -> ChannelSimulator {
    let scat = uniform_field(
        Point2::new(-15.0, -15.0),
        Point2::new(15.0, 15.0),
        150,
        0.35,
        seed,
    );
    let tracer = RayTracer::new(
        Floorplan::empty(),
        scat,
        Vec::new(),
        TracerConfig::default(),
    );
    ChannelSimulator::new(
        tracer,
        SubcarrierLayout::ht40_5ghz(),
        ApConfig::standard(Point2::new(-8.0, 0.0)),
    )
}

fn corr(u: &[Complex64], v: &[Complex64]) -> f64 {
    let ip = rim_dsp::inner_product(u, v).abs();
    ip * ip / (rim_dsp::norm_sqr(u) * rim_dsp::norm_sqr(v))
}

#[test]
fn spatial_autocorrelation_tracks_j0_theory() {
    // Average the measured squared correlation over many positions/seeds
    // and compare with J0²(2πd/λ) at small displacements, where the
    // finite-band cross-term floor has not yet taken over.
    let lambda = SubcarrierLayout::ht40_5ghz().wavelength();
    let mut measured = vec![0.0; 4];
    let fracs = [0.05, 0.1, 0.15, 0.2];
    let mut count = 0;
    for seed in [7u64, 21, 99] {
        let sim = rich_sim(seed);
        let s = sim.sampler();
        for k in 0..6 {
            let p = Point2::new(-1.0 + 0.4 * k as f64, 1.2 + 0.5 * k as f64);
            let a = s.cfr(0, p, 0.0);
            for (i, &f) in fracs.iter().enumerate() {
                let b = s.cfr(0, Point2::new(p.x + f * lambda, p.y), 0.0);
                measured[i] += corr(&a, &b);
            }
            count += 1;
        }
    }
    for m in &mut measured {
        *m /= count as f64;
    }
    for (i, &f) in fracs.iter().enumerate() {
        let theory = theory_trrs(f * lambda, lambda);
        // The simulator sits above pure-diffuse theory (finite band adds
        // a cross-term floor, and a LOS fraction adds coherence), but must
        // track the theory's shape within a generous band.
        assert!(
            measured[i] >= theory - 0.1 && measured[i] <= theory * 0.5 + 0.55,
            "at {f} λ: measured {:.3}, J0² theory {:.3}",
            measured[i],
            theory
        );
    }
    // And the decay is monotone over this range.
    for w in measured.windows(2) {
        assert!(w[1] <= w[0] + 0.02, "monotone: {measured:?}");
    }
}

#[test]
fn received_power_decays_with_distance() {
    // Free space + scatterers: average CFR power must fall with TX–RX
    // distance (spreading loss), roughly monotonically in the mean.
    let sim = rich_sim(7);
    let s = sim.sampler();
    let power_at = |d: f64| -> f64 {
        let mut acc = 0.0;
        for k in 0..5 {
            let p = Point2::new(-8.0 + d, 0.3 * k as f64 - 0.6);
            acc += rim_dsp::norm_sqr(&s.cfr(0, p, 0.0));
        }
        acc / 5.0
    };
    let near = power_at(2.0);
    let mid = power_at(6.0);
    let far = power_at(14.0);
    assert!(
        near > mid && mid > far,
        "power decays: {near:.1} > {mid:.1} > {far:.1}"
    );
    // Spreading should be super-linear in power over this span.
    assert!(near / far > 3.0, "ratio {:.1}", near / far);
}

#[test]
fn envelope_fading_is_rayleigh_like() {
    // In the diffuse field the per-subcarrier envelope over many
    // positions should be Rayleigh-ish: its coefficient of variation
    // (σ/μ) is √((4−π)/π) ≈ 0.523 for a Rayleigh amplitude.
    let sim = rich_sim(7);
    let s = sim.sampler();
    let mut amps = Vec::new();
    for k in 0..40 {
        // Positions far from the AP so the LOS fraction is small.
        let p = Point2::new(4.0 + 0.13 * k as f64, 3.0 + 0.29 * k as f64);
        let cfr = s.cfr(0, p, 0.0);
        for h in cfr.iter().step_by(10) {
            amps.push(h.abs());
        }
    }
    let mean = rim_dsp::stats::mean(&amps);
    let sd = rim_dsp::stats::std_dev(&amps);
    let cv = sd / mean;
    assert!(
        (0.30..0.80).contains(&cv),
        "Rayleigh-like coefficient of variation (≈0.52): got {cv:.2}"
    );
}

#[test]
fn delay_spread_is_office_scale() {
    // The RMS delay spread of the synthetic channel should sit in the
    // range measured in offices (tens of ns), which is what gives the
    // TRRS its frequency diversity.
    let sim = rich_sim(7);
    let tx = sim.ap().antenna_positions()[0];
    let ctx = sim.tracer().at_tx(tx);
    let rays = ctx.rays_at(Point2::new(2.0, 3.0), 0.0);
    let total_p: f64 = rays.iter().map(|r| r.amp.norm_sqr()).sum();
    let mean_tau: f64 = rays
        .iter()
        .map(|r| r.delay_s * r.amp.norm_sqr())
        .sum::<f64>()
        / total_p;
    let var_tau: f64 = rays
        .iter()
        .map(|r| (r.delay_s - mean_tau).powi(2) * r.amp.norm_sqr())
        .sum::<f64>()
        / total_p;
    let rms_ns = var_tau.sqrt() * 1e9;
    assert!(
        (10.0..150.0).contains(&rms_ns),
        "office-scale RMS delay spread, got {rms_ns:.1} ns"
    );
}

#[test]
fn walls_attenuate_through_paths() {
    // The office model: a deep-NLOS receiver sees much less power from
    // the far-corner AP than a LOS receiver does from the central AP at a
    // similar distance.
    let nlos = ChannelSimulator::office(0, 11);
    let los = ChannelSimulator::office(1, 11);
    let p_nlos = {
        let s = nlos.sampler();
        rim_dsp::norm_sqr(&s.cfr(0, Point2::new(20.0, 10.0), 0.0))
    };
    let p_los = {
        let s = los.sampler();
        // Similar distance from AP #1 (21.5, 14).
        rim_dsp::norm_sqr(&s.cfr(0, Point2::new(21.5, 10.0), 0.0))
    };
    assert!(
        p_los > 3.0 * p_nlos,
        "through-wall power loss: LOS {p_los:.2} vs NLOS {p_nlos:.2}"
    );
}
