//! Property-based tests of the CSI layer.

use proptest::prelude::*;
use rim_csi::frame::{CsiFrame, CsiSnapshot};
use rim_csi::sanitize::{sanitize_matched_delay, unwrap_phase};
use rim_dsp::complex::Complex64;

fn snapshot_strategy() -> impl Strategy<Value = CsiSnapshot> {
    prop::collection::vec(
        prop::collection::vec(
            (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex64::new(re, im)),
            1..20,
        ),
        1..4,
    )
    .prop_map(|per_tx| CsiSnapshot { per_tx })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_wire_round_trip(
        seq in any::<u64>(),
        ts in -1e6f64..1e6,
        rx in prop::collection::vec(snapshot_strategy(), 0..4),
    ) {
        let frame = CsiFrame { seq, timestamp_s: ts, rx };
        let decoded = CsiFrame::decode(&frame.encode()).unwrap();
        prop_assert_eq!(frame, decoded);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = CsiFrame::decode(&bytes); // must return, never panic/OOM
    }

    #[test]
    fn unwrap_never_jumps_more_than_pi(phases in prop::collection::vec(-10.0f64..10.0, 1..40)) {
        let u = unwrap_phase(&phases);
        for w in u.windows(2) {
            prop_assert!((w[1] - w[0]).abs() <= std::f64::consts::PI + 1e-9);
        }
    }

    #[test]
    fn sanitation_preserves_magnitudes(
        cfr in prop::collection::vec(
            (0.01f64..10.0, -3.1f64..3.1).prop_map(|(r, p)| Complex64::from_polar(r, p)),
            2..40,
        ),
    ) {
        let indices: Vec<i32> = (0..cfr.len() as i32).collect();
        let mut v = cfr.clone();
        sanitize_matched_delay(&mut v, &indices);
        for (a, b) in v.iter().zip(&cfr) {
            prop_assert!((a.abs() - b.abs()).abs() < 1e-9);
        }
    }

    #[test]
    fn sanitation_is_idempotent_up_to_phase(
        // Physical multipath CFRs: one dominant tap plus weaker echoes.
        // (On adversarial vectors with *tied* taps the argmax can flip
        // between passes — that ambiguity is inherent to any per-packet
        // delay alignment, not a defect of this one.)
        main_slope in -0.4f64..0.4,
        echoes in prop::collection::vec(
            (0.05f64..0.7, -0.4f64..0.4, -3.1f64..3.1),
            1..4,
        ),
    ) {
        let indices: Vec<i32> = (-28..=-1).chain(1..=28).collect();
        let cfr: Vec<Complex64> = indices
            .iter()
            .map(|&i| {
                let mut h = Complex64::cis(main_slope * i as f64);
                for &(a, sl, ph) in &echoes {
                    h += Complex64::from_polar(a, sl * i as f64 + ph);
                }
                h
            })
            .collect();
        // Sanitising twice changes nothing: the second pass finds β ≈ 0.
        let mut once = cfr.clone();
        sanitize_matched_delay(&mut once, &indices);
        let mut twice = once.clone();
        sanitize_matched_delay(&mut twice, &indices);
        let ip = rim_dsp::inner_product(&once, &twice).abs();
        let denom = rim_dsp::norm_sqr(&once);
        // The grid+parabolic β estimate re-converges to within a few
        // millirads/index between passes; what matters downstream is that
        // the TRRS of the two residuals stays ≈ 1.
        prop_assert!(ip > denom * 0.999, "idempotent: {} vs {}", ip, denom);
    }

    #[test]
    fn sanitation_removes_any_linear_ramp(
        slope in -0.5f64..0.5,
        intercept in -3.0f64..3.0,
    ) {
        // A multipath-like fixed channel with an arbitrary added ramp must
        // sanitise to the same fingerprint as the ramp-free version.
        let indices: Vec<i32> = (-28..=-1).chain(1..=28).collect();
        let base: Vec<Complex64> = indices
            .iter()
            .map(|&i| {
                Complex64::cis(0.04 * i as f64)
                    + Complex64::from_polar(0.5, -0.18 * i as f64 + 0.4)
            })
            .collect();
        let mut clean = base.clone();
        let mut ramped: Vec<Complex64> = base
            .iter()
            .zip(&indices)
            .map(|(h, &i)| *h * Complex64::cis(slope * i as f64 + intercept))
            .collect();
        sanitize_matched_delay(&mut clean, &indices);
        sanitize_matched_delay(&mut ramped, &indices);
        let ip = rim_dsp::inner_product(&clean, &ramped).abs();
        let trrs = ip * ip / (rim_dsp::norm_sqr(&clean) * rim_dsp::norm_sqr(&ramped));
        prop_assert!(trrs > 0.999, "ramp removed: {trrs}");
    }
}
