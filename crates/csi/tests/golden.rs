//! Golden-fixture test for the `.rimc` capture format.
//!
//! `fixtures/golden_v1.rimc` is a committed capture written by format
//! VERSION 1. The test pins the format in both directions:
//!
//! * loading the committed bytes must yield exactly the recording below
//!   (decode stability — old captures keep loading);
//! * saving that recording must reproduce the committed bytes
//!   byte-for-byte (encode stability — new captures stay readable by
//!   old tools).
//!
//! If the format changes intentionally, bump `VERSION` in
//! `src/storage.rs`, add a new fixture, and keep this one loading.
//! Regenerate with:
//!
//! ```sh
//! RIM_REGEN_GOLDEN=1 cargo test -p rim-csi --test golden
//! ```

use rim_csi::frame::CsiSnapshot;
use rim_csi::recorder::CsiRecording;
use rim_csi::storage::{load_recording, save_recording};
use rim_dsp::complex::Complex64;

const FIXTURE: &[u8] = include_bytes!("fixtures/golden_v1.rimc");

/// The recording the fixture encodes, reconstructed value by value. The
/// numbers exercise the format's corners: negative and fractional
/// components, loss holes, and an irrational-looking sample rate.
fn golden_recording() -> CsiRecording {
    let snap = |base: f64| CsiSnapshot {
        per_tx: vec![(0..3)
            .map(|s| Complex64::new(base + s as f64 * 0.25, -base * 0.5 + s as f64))
            .collect()],
    };
    CsiRecording {
        sample_rate_hz: 99.5,
        subcarrier_indices: vec![-28, 0, 28],
        antennas: vec![
            vec![
                Some(snap(1.0)),
                None,
                Some(snap(3.0)),
                Some(snap(-4.5)),
                Some(snap(0.125)),
            ],
            vec![
                Some(snap(10.0)),
                Some(snap(-20.25)),
                None,
                None,
                Some(snap(50.5)),
            ],
        ],
    }
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_v1.rimc")
}

#[test]
fn golden_fixture_loads_to_known_recording() {
    if std::env::var("RIM_REGEN_GOLDEN").is_ok() {
        let mut buf = Vec::new();
        save_recording(&golden_recording(), &mut buf).unwrap();
        std::fs::write(fixture_path(), &buf).unwrap();
    }
    let loaded = load_recording(FIXTURE).expect("version-1 fixture must keep loading");
    let expected = golden_recording();
    assert_eq!(loaded.sample_rate_hz, expected.sample_rate_hz);
    assert_eq!(loaded.subcarrier_indices, expected.subcarrier_indices);
    assert_eq!(loaded.antennas.len(), expected.antennas.len());
    for (a, (got, want)) in loaded.antennas.iter().zip(&expected.antennas).enumerate() {
        assert_eq!(got.len(), want.len(), "antenna {a} sample count");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g, w, "antenna {a} sample {i}");
        }
    }
}

#[test]
fn golden_recording_saves_to_fixture_bytes() {
    let mut buf = Vec::new();
    save_recording(&golden_recording(), &mut buf).unwrap();
    assert_eq!(
        buf, FIXTURE,
        "encoder output drifted from the committed version-1 capture"
    );
}

#[test]
fn golden_fixture_survives_a_full_round_trip() {
    let loaded = load_recording(FIXTURE).unwrap();
    let mut buf = Vec::new();
    save_recording(&loaded, &mut buf).unwrap();
    assert_eq!(buf, FIXTURE, "load→save must be the identity on v1 bytes");
}
