//! Hardware impairments of commodity WiFi CSI.
//!
//! Paper §3.2: "CSI measured on COTS WiFi is well-known to contain phase
//! offsets, including carrier frequency offset (CFO), sampling frequency
//! offset (SFO), and symbol timing offset (STO) due to unsynchronized
//! transmitters and receivers, in addition to initial phase offset caused
//! by the phase locked loops." This module injects exactly those offsets —
//! plus AWGN and AGC gain wobble — into noiseless simulated CFRs, so the
//! mitigation story of the paper (|·| in the TRRS kills the initial phase;
//! linear-fit sanitation kills STO/SFO) runs against a faithful adversary.
//!
//! Phase structure per packet, per NIC:
//! `φ(subcarrier i) = φ_common + β·i` where `φ_common` combines CFO and a
//! per-chain PLL phase, and `β` is the timing-offset slope shared by all
//! antennas on a NIC (they share one sampling clock). Each RX chain also
//! carries a static phase/gain mismatch.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rim_dsp::complex::Complex64;

/// Impairment parameters of one NIC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareProfile {
    /// Signal-to-noise ratio of the CSI measurement, dB; `f64::INFINITY`
    /// disables noise.
    pub snr_db: f64,
    /// Standard deviation of the per-packet timing-offset slope β, radians
    /// per subcarrier index. STO on 802.11n is a few samples of FFT-window
    /// placement jitter; 0.05 rad/index ≈ 1 sample at N_fft = 128.
    pub sto_slope_std: f64,
    /// Residual CFO in Hz after the receiver's own correction; accumulates
    /// into the per-packet common phase.
    pub residual_cfo_hz: f64,
    /// AGC amplitude wobble: per-packet gain is `1 + N(0, agc_std)`.
    pub agc_std: f64,
    /// Per-RX-chain static phase mismatch, radians, drawn once.
    pub chain_phase_std: f64,
}

impl HardwareProfile {
    /// Typical commodity NIC (Atheros 9k-class) at a healthy link budget.
    pub fn commodity() -> Self {
        Self {
            snr_db: 25.0,
            sto_slope_std: 0.05,
            residual_cfo_hz: 40.0,
            agc_std: 0.02,
            chain_phase_std: 1.0,
        }
    }

    /// An ideal front-end: no noise, no offsets. Useful in tests isolating
    /// algorithmic behaviour.
    pub fn ideal() -> Self {
        Self {
            snr_db: f64::INFINITY,
            sto_slope_std: 0.0,
            residual_cfo_hz: 0.0,
            agc_std: 0.0,
            chain_phase_std: 0.0,
        }
    }

    /// A noisy, badly-calibrated NIC for stress tests.
    pub fn noisy() -> Self {
        Self {
            snr_db: 15.0,
            sto_slope_std: 0.12,
            residual_cfo_hz: 120.0,
            agc_std: 0.06,
            chain_phase_std: 2.0,
        }
    }
}

impl Default for HardwareProfile {
    fn default() -> Self {
        Self::commodity()
    }
}

/// Stateful impairment injector for one NIC.
///
/// Deterministic for a given seed; each packet draws fresh per-packet
/// offsets while per-chain mismatches stay fixed, mirroring real hardware.
#[derive(Debug, Clone)]
pub struct ImpairmentModel {
    profile: HardwareProfile,
    rng: StdRng,
    chain_phase: Vec<f64>,
    noise_scale_cache: Option<f64>,
}

impl ImpairmentModel {
    /// Creates an injector for a NIC with `n_rx` receive chains.
    pub fn new(profile: HardwareProfile, n_rx: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let chain_phase = (0..n_rx)
            .map(|_| {
                if profile.chain_phase_std > 0.0 {
                    rng.gen_range(-profile.chain_phase_std..profile.chain_phase_std)
                } else {
                    0.0
                }
            })
            .collect();
        Self {
            profile,
            rng,
            chain_phase,
            noise_scale_cache: None,
        }
    }

    /// The profile in use.
    pub fn profile(&self) -> &HardwareProfile {
        &self.profile
    }

    /// Applies one packet's worth of impairments in place.
    ///
    /// `csi[rx][tx][subcarrier]` is the noiseless MIMO CSI of this NIC;
    /// `subcarrier_indices` are the (integer) subcarrier indices matching
    /// the innermost dimension; `t` is the receive time (drives CFO phase
    /// accumulation).
    pub fn apply(&mut self, csi: &mut [Vec<Vec<Complex64>>], subcarrier_indices: &[i32], t: f64) {
        let p = &self.profile;
        // Per-packet common phase: CFO accumulation + PLL re-lock jitter.
        let cfo_phase = std::f64::consts::TAU * p.residual_cfo_hz * t;
        let pll_phase: f64 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        // Per-packet timing slope, shared by all chains of the NIC.
        let beta = if p.sto_slope_std > 0.0 {
            let z = crate::noise::standard_normal(&mut self.rng);
            p.sto_slope_std * z
        } else {
            0.0
        };
        // Per-packet AGC gain.
        let gain = if p.agc_std > 0.0 {
            (1.0 + p.agc_std * crate::noise::standard_normal(&mut self.rng)).max(0.1)
        } else {
            1.0
        };

        // Noise scale from SNR relative to the RMS CSI magnitude; computed
        // once on the first packet so the noise floor is constant, like a
        // real front-end's.
        let noise_std = if p.snr_db.is_finite() {
            let scale = *self.noise_scale_cache.get_or_insert_with(|| {
                let mut power = 0.0;
                let mut count = 0usize;
                for snap in csi.iter() {
                    for cfr in snap {
                        for h in cfr {
                            power += h.norm_sqr();
                            count += 1;
                        }
                    }
                }
                if count == 0 {
                    0.0
                } else {
                    (power / count as f64).sqrt()
                }
            });
            scale * 10f64.powf(-p.snr_db / 20.0)
        } else {
            0.0
        };

        for (rx_idx, snap) in csi.iter_mut().enumerate() {
            let chain = self.chain_phase.get(rx_idx).copied().unwrap_or(0.0);
            for cfr in snap.iter_mut() {
                for (k, h) in cfr.iter_mut().enumerate() {
                    let idx = subcarrier_indices.get(k).copied().unwrap_or(k as i32) as f64;
                    let phase = cfo_phase + pll_phase + chain + beta * idx;
                    let mut v = *h * Complex64::cis(phase) * gain;
                    if noise_std > 0.0 {
                        // Complex AWGN: independent normal per component,
                        // each with std = noise_std / sqrt(2).
                        let s = noise_std / std::f64::consts::SQRT_2;
                        v += Complex64::new(
                            s * crate::noise::standard_normal(&mut self.rng),
                            s * crate::noise::standard_normal(&mut self.rng),
                        );
                    }
                    *h = v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_csi(n_rx: usize, n_tx: usize, n_sc: usize) -> Vec<Vec<Vec<Complex64>>> {
        vec![vec![vec![Complex64::from_re(1.0); n_sc]; n_tx]; n_rx]
    }

    fn indices(n: usize) -> Vec<i32> {
        (0..n as i32).collect()
    }

    #[test]
    fn ideal_profile_is_identity() {
        let mut m = ImpairmentModel::new(HardwareProfile::ideal(), 3, 1);
        let mut csi = flat_csi(3, 3, 16);
        let orig = csi.clone();
        m.apply(&mut csi, &indices(16), 0.5);
        // Ideal profile still applies the per-packet PLL phase? No: with
        // chain_phase_std = 0 and all other knobs 0 the only randomness is
        // the PLL phase draw, which is always applied. Verify it is a pure
        // common rotation: magnitudes unchanged and all entries rotated
        // equally.
        for (snap, osnap) in csi.iter().zip(&orig) {
            for (cfr, ocfr) in snap.iter().zip(osnap) {
                for (h, o) in cfr.iter().zip(ocfr) {
                    assert!((h.abs() - o.abs()).abs() < 1e-12);
                }
            }
        }
        let ref_rot = csi[0][0][0];
        for snap in &csi {
            for cfr in snap {
                for h in cfr {
                    assert!((*h - ref_rot).abs() < 1e-12, "common rotation only");
                }
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = ImpairmentModel::new(HardwareProfile::commodity(), 3, 9);
        let mut b = ImpairmentModel::new(HardwareProfile::commodity(), 3, 9);
        let mut csi_a = flat_csi(3, 3, 8);
        let mut csi_b = flat_csi(3, 3, 8);
        a.apply(&mut csi_a, &indices(8), 0.1);
        b.apply(&mut csi_b, &indices(8), 0.1);
        assert_eq!(csi_a, csi_b);
    }

    #[test]
    fn sto_slope_is_linear_in_index() {
        let profile = HardwareProfile {
            snr_db: f64::INFINITY,
            sto_slope_std: 0.1,
            residual_cfo_hz: 0.0,
            agc_std: 0.0,
            chain_phase_std: 0.0,
        };
        let mut m = ImpairmentModel::new(profile, 1, 3);
        let mut csi = flat_csi(1, 1, 32);
        m.apply(&mut csi, &indices(32), 0.0);
        // Phase difference between adjacent subcarriers must be constant.
        let cfr = &csi[0][0];
        let d0 = (cfr[1] * cfr[0].conj()).arg();
        for k in 2..32 {
            let d = (cfr[k] * cfr[k - 1].conj()).arg();
            assert!((d - d0).abs() < 1e-9, "slope must be linear");
        }
    }

    #[test]
    fn noise_scales_with_snr() {
        let run = |snr: f64| {
            let profile = HardwareProfile {
                snr_db: snr,
                sto_slope_std: 0.0,
                residual_cfo_hz: 0.0,
                agc_std: 0.0,
                chain_phase_std: 0.0,
            };
            let mut m = ImpairmentModel::new(profile, 1, 5);
            let mut csi = flat_csi(1, 1, 2048);
            m.apply(&mut csi, &indices(2048), 0.0);
            // All entries started at 1+0i and share a common rotation; the
            // spread around the mean is the injected noise.
            let mean: Complex64 = csi[0][0].iter().copied().sum::<Complex64>() * (1.0 / 2048.0);
            (csi[0][0]
                .iter()
                .map(|h| (*h - mean).norm_sqr())
                .sum::<f64>()
                / 2048.0)
                .sqrt()
        };
        let hi = run(10.0);
        let lo = run(30.0);
        assert!(
            (hi / lo - 10.0).abs() < 1.5,
            "20 dB SNR difference is 10x amplitude: {hi} vs {lo}"
        );
    }

    #[test]
    fn same_nic_chains_share_slope() {
        let profile = HardwareProfile {
            snr_db: f64::INFINITY,
            sto_slope_std: 0.1,
            residual_cfo_hz: 0.0,
            agc_std: 0.0,
            chain_phase_std: 1.5,
        };
        let mut m = ImpairmentModel::new(profile, 2, 11);
        let mut csi = flat_csi(2, 1, 16);
        m.apply(&mut csi, &indices(16), 0.0);
        let slope = |cfr: &[Complex64]| (cfr[1] * cfr[0].conj()).arg();
        assert!(
            (slope(&csi[0][0]) - slope(&csi[1][0])).abs() < 1e-9,
            "chains of one NIC share the sampling clock"
        );
        // But their absolute phases differ (per-chain mismatch).
        let diff = (csi[0][0][0] * csi[1][0][0].conj()).arg().abs();
        assert!(diff > 1e-3, "chain phases differ: {diff}");
    }

    #[test]
    fn empty_csi_is_ok() {
        let mut m = ImpairmentModel::new(HardwareProfile::commodity(), 0, 1);
        let mut csi: Vec<Vec<Vec<Complex64>>> = Vec::new();
        m.apply(&mut csi, &[], 0.0);
    }
}
