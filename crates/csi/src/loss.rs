//! Packet-loss models.
//!
//! The paper's prototype receives AP broadcasts on two unsynchronised NICs
//! and loses packets independently on each (§5, Fig. 4b shows the missing
//! values); RIM tolerates loss "to a certain extent by interpolation" (§7).
//! We model both i.i.d. loss and bursty loss (Gilbert–Elliott), the latter
//! standing in for the contended-channel conditions §7 warns about.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A packet-loss model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No loss.
    None,
    /// Each packet lost independently with probability `p`.
    Iid {
        /// Loss probability in `[0, 1)`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst model.
    GilbertElliott {
        /// Probability of moving good → bad per packet.
        p_enter_bad: f64,
        /// Probability of moving bad → good per packet.
        p_exit_bad: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Parses a CLI-style loss specification:
    ///
    /// * `none` — no loss;
    /// * a bare probability like `0.1` — i.i.d. loss (back-compatible
    ///   with the old numeric `--loss` flag);
    /// * `iid:P` — i.i.d. loss with probability `P`;
    /// * `ge:ENTER,EXIT,GOOD,BAD` — Gilbert–Elliott with the four
    ///   probabilities (good→bad, bad→good, loss in good, loss in bad),
    ///   e.g. `ge:0.05,0.2,0.01,0.8`.
    ///
    /// # Errors
    /// A message naming the offending field and the accepted forms.
    pub fn parse(spec: &str) -> Result<LossModel, String> {
        let spec = spec.trim();
        let prob = |label: &str, s: &str, range_end: f64| -> Result<f64, String> {
            let v: f64 = s
                .trim()
                .parse()
                .map_err(|_| format!("loss spec: {label} `{s}` is not a number"))?;
            if !(0.0..=range_end).contains(&v) {
                return Err(format!(
                    "loss spec: {label} {v} outside [0, {range_end}{}",
                    if range_end < 1.0 { ")" } else { "]" }
                ));
            }
            Ok(v)
        };
        if spec.eq_ignore_ascii_case("none") {
            return Ok(LossModel::None);
        }
        if let Some(p) = spec.strip_prefix("iid:") {
            return Ok(LossModel::Iid {
                p: prob("iid probability", p, 0.999)?,
            });
        }
        if let Some(rest) = spec.strip_prefix("ge:") {
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() != 4 {
                return Err(format!(
                    "loss spec: `ge:` needs 4 comma-separated probabilities \
                     (enter_bad,exit_bad,loss_good,loss_bad), got {}",
                    parts.len()
                ));
            }
            return Ok(LossModel::GilbertElliott {
                p_enter_bad: prob("ge enter_bad", parts[0], 1.0)?,
                p_exit_bad: prob("ge exit_bad", parts[1], 1.0)?,
                loss_good: prob("ge loss_good", parts[2], 1.0)?,
                loss_bad: prob("ge loss_bad", parts[3], 1.0)?,
            });
        }
        if let Ok(p) = spec.parse::<f64>() {
            if (0.0..1.0).contains(&p) {
                return Ok(if p == 0.0 {
                    LossModel::None
                } else {
                    LossModel::Iid { p }
                });
            }
            return Err(format!("loss spec: bare probability {p} outside [0, 1)"));
        }
        Err(format!(
            "loss spec `{spec}` not understood; use `none`, a probability, \
             `iid:P`, or `ge:ENTER,EXIT,GOOD,BAD`"
        ))
    }

    /// Mean long-run loss rate implied by the model (the stationary rate
    /// for Gilbert–Elliott).
    pub fn mean_loss_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Iid { p } => p,
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                // Stationary probability of the bad state.
                let denom = p_enter_bad + p_exit_bad;
                if denom <= 0.0 {
                    return loss_good;
                }
                let pi_bad = p_enter_bad / denom;
                (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
            }
        }
    }
}

/// A stateful loss process: deterministic per seed.
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    rng: StdRng,
    in_bad_state: bool,
}

impl LossProcess {
    /// Creates a loss process.
    ///
    /// # Panics
    /// Panics if any probability lies outside `[0, 1]` or an i.i.d. loss
    /// probability equals 1 (which would lose every packet).
    pub fn new(model: LossModel, seed: u64) -> Self {
        match model {
            LossModel::None => {}
            LossModel::Iid { p } => {
                assert!((0.0..1.0).contains(&p), "iid loss probability in [0,1)");
            }
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                for v in [p_enter_bad, p_exit_bad, loss_good, loss_bad] {
                    assert!((0.0..=1.0).contains(&v), "probability in [0,1]");
                }
            }
        }
        Self {
            model,
            rng: StdRng::seed_from_u64(seed),
            in_bad_state: false,
        }
    }

    /// Advances the process one packet; returns true if that packet is
    /// lost.
    pub fn next_lost(&mut self) -> bool {
        match self.model {
            LossModel::None => false,
            LossModel::Iid { p } => self.rng.gen::<f64>() < p,
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                let flip: f64 = self.rng.gen();
                if self.in_bad_state {
                    if flip < p_exit_bad {
                        self.in_bad_state = false;
                    }
                } else if flip < p_enter_bad {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state {
                    loss_bad
                } else {
                    loss_good
                };
                self.rng.gen::<f64>() < p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_loses() {
        let mut p = LossProcess::new(LossModel::None, 1);
        assert!((0..1000).all(|_| !p.next_lost()));
    }

    #[test]
    fn iid_rate_matches() {
        let mut p = LossProcess::new(LossModel::Iid { p: 0.1 }, 2);
        let lost = (0..20_000).filter(|_| p.next_lost()).count();
        let rate = lost as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn iid_deterministic_per_seed() {
        let mut a = LossProcess::new(LossModel::Iid { p: 0.3 }, 7);
        let mut b = LossProcess::new(LossModel::Iid { p: 0.3 }, 7);
        for _ in 0..500 {
            assert_eq!(a.next_lost(), b.next_lost());
        }
    }

    #[test]
    fn gilbert_elliott_bursts() {
        let model = LossModel::GilbertElliott {
            p_enter_bad: 0.01,
            p_exit_bad: 0.2,
            loss_good: 0.001,
            loss_bad: 0.8,
        };
        let mut p = LossProcess::new(model, 3);
        let outcomes: Vec<bool> = (0..50_000).map(|_| p.next_lost()).collect();
        let lost = outcomes.iter().filter(|&&l| l).count();
        assert!(lost > 0);
        // Burstiness: probability of loss given previous loss far exceeds
        // the marginal rate.
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let both = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let cond = both as f64 / pairs as f64;
        let marginal = lost as f64 / outcomes.len() as f64;
        assert!(
            cond > 3.0 * marginal,
            "bursty: P(loss|loss)={cond} vs marginal={marginal}"
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = LossProcess::new(LossModel::Iid { p: 1.5 }, 0);
    }

    #[test]
    fn parse_accepts_all_forms() {
        assert_eq!(LossModel::parse("none"), Ok(LossModel::None));
        assert_eq!(LossModel::parse("NONE"), Ok(LossModel::None));
        assert_eq!(LossModel::parse("0"), Ok(LossModel::None));
        assert_eq!(LossModel::parse("0.1"), Ok(LossModel::Iid { p: 0.1 }));
        assert_eq!(LossModel::parse("iid:0.25"), Ok(LossModel::Iid { p: 0.25 }));
        assert_eq!(
            LossModel::parse("ge:0.05,0.2,0.01,0.8"),
            Ok(LossModel::GilbertElliott {
                p_enter_bad: 0.05,
                p_exit_bad: 0.2,
                loss_good: 0.01,
                loss_bad: 0.8,
            })
        );
        assert_eq!(LossModel::parse(" iid:0.25 "), LossModel::parse("iid:0.25"));
    }

    #[test]
    fn parse_rejects_with_actionable_messages() {
        let e = LossModel::parse("1.5").unwrap_err();
        assert!(e.contains("1.5"), "{e}");
        let e = LossModel::parse("iid:nope").unwrap_err();
        assert!(e.contains("nope"), "{e}");
        let e = LossModel::parse("ge:0.1,0.2").unwrap_err();
        assert!(e.contains('4'), "{e}");
        let e = LossModel::parse("ge:0.1,0.2,0.3,1.7").unwrap_err();
        assert!(e.contains("1.7"), "{e}");
        let e = LossModel::parse("burst").unwrap_err();
        assert!(e.contains("burst"), "{e}");
    }

    #[test]
    fn mean_loss_rate_matches_measured() {
        let model = LossModel::GilbertElliott {
            p_enter_bad: 0.05,
            p_exit_bad: 0.2,
            loss_good: 0.01,
            loss_bad: 0.8,
        };
        let predicted = model.mean_loss_rate();
        let mut p = LossProcess::new(model, 9);
        let lost = (0..100_000).filter(|_| p.next_lost()).count();
        let measured = lost as f64 / 100_000.0;
        assert!(
            (measured - predicted).abs() < 0.02,
            "predicted {predicted}, measured {measured}"
        );
        assert_eq!(LossModel::None.mean_loss_rate(), 0.0);
        assert_eq!(LossModel::Iid { p: 0.3 }.mean_loss_rate(), 0.3);
    }
}
