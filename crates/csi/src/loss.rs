//! Packet-loss models.
//!
//! The paper's prototype receives AP broadcasts on two unsynchronised NICs
//! and loses packets independently on each (§5, Fig. 4b shows the missing
//! values); RIM tolerates loss "to a certain extent by interpolation" (§7).
//! We model both i.i.d. loss and bursty loss (Gilbert–Elliott), the latter
//! standing in for the contended-channel conditions §7 warns about.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A packet-loss model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No loss.
    None,
    /// Each packet lost independently with probability `p`.
    Iid {
        /// Loss probability in `[0, 1)`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst model.
    GilbertElliott {
        /// Probability of moving good → bad per packet.
        p_enter_bad: f64,
        /// Probability of moving bad → good per packet.
        p_exit_bad: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

/// A stateful loss process: deterministic per seed.
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    rng: StdRng,
    in_bad_state: bool,
}

impl LossProcess {
    /// Creates a loss process.
    ///
    /// # Panics
    /// Panics if any probability lies outside `[0, 1]` or an i.i.d. loss
    /// probability equals 1 (which would lose every packet).
    pub fn new(model: LossModel, seed: u64) -> Self {
        match model {
            LossModel::None => {}
            LossModel::Iid { p } => {
                assert!((0.0..1.0).contains(&p), "iid loss probability in [0,1)");
            }
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                for v in [p_enter_bad, p_exit_bad, loss_good, loss_bad] {
                    assert!((0.0..=1.0).contains(&v), "probability in [0,1]");
                }
            }
        }
        Self {
            model,
            rng: StdRng::seed_from_u64(seed),
            in_bad_state: false,
        }
    }

    /// Advances the process one packet; returns true if that packet is
    /// lost.
    pub fn next_lost(&mut self) -> bool {
        match self.model {
            LossModel::None => false,
            LossModel::Iid { p } => self.rng.gen::<f64>() < p,
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                let flip: f64 = self.rng.gen();
                if self.in_bad_state {
                    if flip < p_exit_bad {
                        self.in_bad_state = false;
                    }
                } else if flip < p_enter_bad {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state {
                    loss_bad
                } else {
                    loss_good
                };
                self.rng.gen::<f64>() < p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_loses() {
        let mut p = LossProcess::new(LossModel::None, 1);
        assert!((0..1000).all(|_| !p.next_lost()));
    }

    #[test]
    fn iid_rate_matches() {
        let mut p = LossProcess::new(LossModel::Iid { p: 0.1 }, 2);
        let lost = (0..20_000).filter(|_| p.next_lost()).count();
        let rate = lost as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn iid_deterministic_per_seed() {
        let mut a = LossProcess::new(LossModel::Iid { p: 0.3 }, 7);
        let mut b = LossProcess::new(LossModel::Iid { p: 0.3 }, 7);
        for _ in 0..500 {
            assert_eq!(a.next_lost(), b.next_lost());
        }
    }

    #[test]
    fn gilbert_elliott_bursts() {
        let model = LossModel::GilbertElliott {
            p_enter_bad: 0.01,
            p_exit_bad: 0.2,
            loss_good: 0.001,
            loss_bad: 0.8,
        };
        let mut p = LossProcess::new(model, 3);
        let outcomes: Vec<bool> = (0..50_000).map(|_| p.next_lost()).collect();
        let lost = outcomes.iter().filter(|&&l| l).count();
        assert!(lost > 0);
        // Burstiness: probability of loss given previous loss far exceeds
        // the marginal rate.
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let both = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let cond = both as f64 / pairs as f64;
        let marginal = lost as f64 / outcomes.len() as f64;
        assert!(
            cond > 3.0 * marginal,
            "bursty: P(loss|loss)={cond} vs marginal={marginal}"
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = LossProcess::new(LossModel::Iid { p: 1.5 }, 0);
    }
}
