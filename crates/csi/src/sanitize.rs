//! CSI phase sanitation.
//!
//! Removes the linear phase distortion (STO/SFO slope plus constant
//! offset) from a CFR by fitting a line to the unwrapped phase across
//! subcarriers and subtracting it — the calibration approach of SpotFi
//! [13] that the paper applies per antenna independently before computing
//! TRRS (§3.2, footnote 3). The remaining per-packet *initial* phase is
//! irrelevant because the TRRS takes a magnitude.

use rim_dsp::complex::Complex64;
use rim_dsp::stats::linear_fit;

/// Unwraps a phase sequence: adds multiples of 2π so consecutive samples
/// never jump by more than π.
pub fn unwrap_phase(phases: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phases.len());
    let mut offset = 0.0;
    for (i, &p) in phases.iter().enumerate() {
        if i > 0 {
            let prev = out[i - 1];
            let mut cur = p + offset;
            while cur - prev > std::f64::consts::PI {
                cur -= std::f64::consts::TAU;
                offset -= std::f64::consts::TAU;
            }
            while cur - prev < -std::f64::consts::PI {
                cur += std::f64::consts::TAU;
                offset += std::f64::consts::TAU;
            }
            out.push(cur);
        } else {
            out.push(p);
        }
    }
    out
}

/// Removes the best-fit linear phase (slope over subcarrier index and
/// intercept) from a CFR in place.
///
/// `indices` are the subcarrier indices of the CFR entries (they need not
/// be contiguous — e.g. the DC gap or Intel 5300 grouping). Magnitudes are
/// untouched. Vectors shorter than 2 entries are left unchanged.
pub fn sanitize_linear_phase(cfr: &mut [Complex64], indices: &[i32]) {
    if cfr.len() < 2 || cfr.len() != indices.len() {
        return;
    }
    let raw: Vec<f64> = cfr.iter().map(|h| h.arg()).collect();
    let unwrapped = unwrap_phase(&raw);
    let xs: Vec<f64> = indices.iter().map(|&i| i as f64).collect();
    let (slope, intercept) = linear_fit(&xs, &unwrapped);
    if !slope.is_finite() || !intercept.is_finite() {
        return;
    }
    for (h, &x) in cfr.iter_mut().zip(&xs) {
        *h *= Complex64::cis(-(slope * x + intercept));
    }
}

/// Removes the linear phase via a *matched-delay* search: finds the slope
/// `β★ = argmax_β |Σ_k H_k e^{−jβ·idx_k}|` (the delay of the strongest
/// time-domain tap) by coarse grid plus parabolic refinement, then removes
/// `β★·idx + intercept`.
///
/// Unlike the unwrap-and-fit approach, this is robust to phase noise on
/// deep-fade subcarriers (a single corrupted phase sample can derail
/// unwrapping and inject a ±2π/N slope error, jittering the fingerprint
/// packet to packet). Both the channel's own bulk delay and the per-packet
/// STO/SFO slope are removed consistently, so the residual is a stable
/// location signature.
pub fn sanitize_matched_delay(cfr: &mut [Complex64], indices: &[i32]) {
    if cfr.len() < 2 || cfr.len() != indices.len() {
        return;
    }
    // Objective on a β grid. The main lobe of |Σ H e^{-jβ idx}| is about
    // 2π/span wide, where span is the index extent of the grid — so the
    // search step must scale with the grid. A fixed step sized for the
    // 56/114-entry layouts straddles VHT80's ±122-span lobe, and the
    // slope error it leaves behind (a fraction of the step, amplified by
    // the edge index) jitters the fingerprint packet to packet: a static
    // antenna's self-TRRS sags toward the movement threshold and stops
    // stop being detected.
    let eval = |beta: f64| -> f64 {
        let mut acc = rim_dsp::complex::ZERO;
        for (h, &i) in cfr.iter().zip(indices) {
            acc += *h * Complex64::cis(-beta * i as f64);
        }
        acc.norm_sqr()
    };
    let span = (indices.iter().max().unwrap() - indices.iter().min().unwrap()).max(1) as f64;
    let lobe = std::f64::consts::TAU / span;
    // ≥4 coarse samples per main lobe guarantees the sampled maximum
    // lands on it (the strongest sidelobe sits 13 dB down).
    let coarse = (lobe / 4.0).min(0.02);
    let range = 0.8f64;
    let n_steps = (range / coarse).ceil() as i32;
    let mut best = (0.0f64, f64::NEG_INFINITY);
    for s in -n_steps..=n_steps {
        let beta = s as f64 * coarse;
        let v = eval(beta);
        if v > best.1 {
            best = (beta, v);
        }
    }
    // Fine pass across the coarse peak's neighbourhood, then parabolic
    // refinement at the fine step.
    let step = coarse / 8.0;
    let best = {
        let b0 = best.0;
        let mut fine = (b0, f64::NEG_INFINITY);
        for s in -8..=8 {
            let beta = b0 + s as f64 * step;
            let v = eval(beta);
            if v > fine.1 {
                fine = (beta, v);
            }
        }
        fine
    };
    let (b0, v0) = best;
    let vm = eval(b0 - step);
    let vp = eval(b0 + step);
    let denom = vm - 2.0 * v0 + vp;
    let beta = if denom < -1e-12 {
        b0 + 0.5 * (vm - vp) / denom * step
    } else {
        b0
    };
    // Remove slope and the intercept (phase of the aligned sum).
    let mut acc = rim_dsp::complex::ZERO;
    for (h, &i) in cfr.iter().zip(indices) {
        acc += *h * Complex64::cis(-beta * i as f64);
    }
    let intercept = acc.arg();
    for (h, &i) in cfr.iter_mut().zip(indices) {
        *h *= Complex64::cis(-(beta * i as f64 + intercept));
    }
}

/// A MIMO snapshot containing NaN or infinite CFR values, rejected by
/// [`sanitize_snapshot`]. Non-finite amplitudes would otherwise survive
/// sanitation (the matched-delay objective turns NaN into a flat-NaN
/// CFR) and silently poison every TRRS downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFiniteCsi {
    /// TX-antenna index of the offending CFR.
    pub tx: usize,
    /// Subcarrier position (index into the CFR) of the first non-finite
    /// value.
    pub subcarrier: usize,
}

impl std::fmt::Display for NonFiniteCsi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-finite CSI amplitude at tx {} subcarrier {}; treat the \
             packet as lost (the recorder maps rejected snapshots to loss \
             so interpolation can repair them)",
            self.tx, self.subcarrier
        )
    }
}

impl std::error::Error for NonFiniteCsi {}

/// Sanitizes every CFR of a MIMO snapshot (`csi[tx][subcarrier]`) with the
/// robust matched-delay method.
///
/// # Errors
/// [`NonFiniteCsi`] when any CFR entry is NaN or infinite; the snapshot
/// is left untouched so the caller can discard it as loss.
pub fn sanitize_snapshot(csi: &mut [Vec<Complex64>], indices: &[i32]) -> Result<(), NonFiniteCsi> {
    for (tx, cfr) in csi.iter().enumerate() {
        if let Some(subcarrier) = cfr.iter().position(|h| !h.is_finite()) {
            return Err(NonFiniteCsi { tx, subcarrier });
        }
    }
    for cfr in csi {
        sanitize_matched_delay(cfr, indices);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_restores_continuity() {
        // A steep linear phase wraps repeatedly; unwrap must restore it.
        let true_phase: Vec<f64> = (0..50).map(|k| 0.7 * k as f64).collect();
        let wrapped: Vec<f64> = true_phase
            .iter()
            .map(|&p| rim_dsp::stats::wrap_angle(p))
            .collect();
        let unwrapped = unwrap_phase(&wrapped);
        for (u, t) in unwrapped.iter().zip(&true_phase) {
            assert!((u - t).abs() < 1e-9, "{u} vs {t}");
        }
    }

    #[test]
    fn unwrap_handles_empty_and_single() {
        assert!(unwrap_phase(&[]).is_empty());
        assert_eq!(unwrap_phase(&[1.2]), vec![1.2]);
    }

    #[test]
    fn sanitize_removes_pure_linear_phase() {
        let indices: Vec<i32> = (-8..=-1).chain(1..=8).collect();
        let mut cfr: Vec<Complex64> = indices
            .iter()
            .map(|&i| Complex64::from_polar(2.0, 0.3 * i as f64 + 1.1))
            .collect();
        sanitize_linear_phase(&mut cfr, &indices);
        for h in &cfr {
            assert!((h.abs() - 2.0).abs() < 1e-9, "magnitude preserved");
            assert!(h.arg().abs() < 1e-6, "phase flattened, got {}", h.arg());
        }
    }

    #[test]
    fn sanitize_preserves_multipath_structure() {
        // A two-path channel has nonlinear phase; sanitation must keep the
        // curvature (the fingerprint) while removing added linear ramps.
        let indices: Vec<i32> = (-28..=-1).chain(1..=28).collect();
        let channel: Vec<Complex64> = indices
            .iter()
            .map(|&i| {
                Complex64::cis(0.02 * i as f64) + Complex64::from_polar(0.6, 0.3 * i as f64 + 0.9)
            })
            .collect();
        let mut dirty: Vec<Complex64> = channel
            .iter()
            .zip(&indices)
            .map(|(h, &i)| *h * Complex64::cis(0.11 * i as f64 + 2.0))
            .collect();
        let mut clean = channel.clone();
        sanitize_linear_phase(&mut dirty, &indices);
        sanitize_linear_phase(&mut clean, &indices);
        // After sanitising both, they agree (same residual after removing
        // each one's own linear fit).
        for (d, c) in dirty.iter().zip(&clean) {
            assert!((*d - *c).abs() < 1e-6);
        }
        // And the result still differs from a flat channel: curvature kept.
        let curvature: f64 = clean
            .windows(3)
            .map(|w| {
                let d1 = (w[1] * w[0].conj()).arg();
                let d2 = (w[2] * w[1].conj()).arg();
                (d2 - d1).abs()
            })
            .sum();
        assert!(curvature > 0.1, "multipath curvature survives: {curvature}");
    }

    #[test]
    fn sanitize_makes_trrs_invariant_to_timing_offset() {
        // The end goal: TRRS of (sanitised dirty) vs (sanitised clean) ≈ 1.
        let indices: Vec<i32> = (-28..=-1).chain(1..=28).collect();
        let channel: Vec<Complex64> = indices
            .iter()
            .map(|&i| {
                Complex64::cis(0.05 * i as f64)
                    + Complex64::from_polar(0.5, -0.21 * i as f64)
                    + Complex64::from_polar(0.3, 0.4 * i as f64 + 1.0)
            })
            .collect();
        let mut dirty: Vec<Complex64> = channel
            .iter()
            .zip(&indices)
            .map(|(h, &i)| *h * Complex64::from_polar(1.0, -0.23 * i as f64 + 0.7))
            .collect();
        let mut clean = channel.clone();
        sanitize_linear_phase(&mut dirty, &indices);
        sanitize_linear_phase(&mut clean, &indices);
        let ip = rim_dsp::inner_product(&clean, &dirty).abs();
        let trrs = ip * ip / (rim_dsp::norm_sqr(&clean) * rim_dsp::norm_sqr(&dirty));
        assert!(trrs > 0.999, "sanitised TRRS ≈ 1, got {trrs}");
    }

    #[test]
    fn sanitize_short_or_mismatched_is_noop() {
        let mut one = vec![Complex64::from_polar(1.0, 0.5)];
        let orig = one.clone();
        sanitize_linear_phase(&mut one, &[0]);
        assert_eq!(one, orig);
        let mut two = vec![Complex64::from_re(1.0); 4];
        let orig2 = two.clone();
        sanitize_linear_phase(&mut two, &[0, 1]); // length mismatch
        assert_eq!(two, orig2);
    }

    #[test]
    fn sanitize_snapshot_covers_all_tx() {
        let indices: Vec<i32> = (0..16).collect();
        let mut csi: Vec<Vec<Complex64>> = (0..3)
            .map(|t| {
                indices
                    .iter()
                    .map(|&i| Complex64::from_polar(1.0, (0.2 + 0.1 * t as f64) * i as f64))
                    .collect()
            })
            .collect();
        sanitize_snapshot(&mut csi, &indices).unwrap();
        // A pure linear-phase CFR is a single tap: after matched-delay
        // sanitation the phase is flat.
        for cfr in &csi {
            for h in cfr {
                assert!(h.arg().abs() < 1e-3, "{}", h.arg());
            }
        }
    }

    #[test]
    fn sanitize_snapshot_rejects_non_finite_untouched() {
        let indices: Vec<i32> = (0..16).collect();
        let mut csi: Vec<Vec<Complex64>> = (0..2)
            .map(|t| {
                indices
                    .iter()
                    .map(|&i| Complex64::from_polar(1.0, (0.2 + 0.1 * t as f64) * i as f64))
                    .collect()
            })
            .collect();
        csi[1][5] = Complex64::new(f64::NAN, 0.3);
        let before = csi.clone();
        let err = sanitize_snapshot(&mut csi, &indices).unwrap_err();
        assert_eq!(
            err,
            NonFiniteCsi {
                tx: 1,
                subcarrier: 5
            }
        );
        assert!(err.to_string().contains("tx 1"), "{err}");
        assert!(err.to_string().contains("subcarrier 5"), "{err}");
        // Rejection leaves the snapshot untouched — even the clean TX 0
        // must not be half-sanitised.
        for (a, b) in csi.iter().zip(&before) {
            for (x, y) in a.iter().zip(b) {
                assert!(
                    (x.re == y.re || (x.re.is_nan() && y.re.is_nan())) && x.im == y.im,
                    "unchanged on rejection"
                );
            }
        }
        let inf = vec![vec![Complex64::new(f64::INFINITY, 0.0); 16]];
        let mut inf_csi = inf.clone();
        assert!(sanitize_snapshot(&mut inf_csi, &indices).is_err());
    }

    #[test]
    fn matched_delay_invariant_to_timing_offset() {
        // Multipath channel, two different STO slopes: the sanitised
        // fingerprints must agree (TRRS ≈ 1).
        let indices: Vec<i32> = (-28..=-1).chain(1..=28).collect();
        let channel: Vec<Complex64> = indices
            .iter()
            .map(|&i| {
                Complex64::cis(0.05 * i as f64)
                    + Complex64::from_polar(0.5, -0.21 * i as f64)
                    + Complex64::from_polar(0.3, 0.4 * i as f64 + 1.0)
            })
            .collect();
        let mut a = channel.clone();
        let mut b: Vec<Complex64> = channel
            .iter()
            .zip(&indices)
            .map(|(h, &i)| *h * Complex64::from_polar(1.0, -0.23 * i as f64 + 0.7))
            .collect();
        sanitize_matched_delay(&mut a, &indices);
        sanitize_matched_delay(&mut b, &indices);
        let ip = rim_dsp::inner_product(&a, &b).abs();
        let trrs = ip * ip / (rim_dsp::norm_sqr(&a) * rim_dsp::norm_sqr(&b));
        assert!(trrs > 0.999, "matched-delay invariance: {trrs}");
    }

    #[test]
    fn matched_delay_robust_to_single_bad_phase() {
        // One corrupted deep-fade subcarrier must not disturb the rest of
        // the fingerprint (the unwrap-based fit fails this).
        let indices: Vec<i32> = (-28..=-1).chain(1..=28).collect();
        let channel: Vec<Complex64> = indices
            .iter()
            .map(|&i| Complex64::cis(0.05 * i as f64) + Complex64::from_polar(0.4, -0.3 * i as f64))
            .collect();
        let mut clean = channel.clone();
        let mut bad = channel.clone();
        bad[20] = Complex64::from_polar(1e-4, 2.9); // fade + garbage phase
        sanitize_matched_delay(&mut clean, &indices);
        sanitize_matched_delay(&mut bad, &indices);
        let ip = rim_dsp::inner_product(&clean, &bad).abs();
        let trrs = ip * ip / (rim_dsp::norm_sqr(&clean) * rim_dsp::norm_sqr(&bad));
        assert!(trrs > 0.98, "robustness: {trrs}");
    }

    #[test]
    fn matched_delay_invariant_on_wide_grids() {
        // Regression: on a VHT80-scale grid (±122 span) the β search must
        // still resolve the slope finely enough that two packets of the
        // same channel under different per-packet timing offsets sanitise
        // to near-identical fingerprints. With a fixed 0.02 rad/index
        // step the residual slope error left TRRS near 0.96 here — below
        // the 0.92 movement threshold once channel noise stacks on top —
        // so stop-and-go motion on 242-subcarrier devices never detected
        // its stops.
        let indices: Vec<i32> = (-122..=-2).chain(2..=122).collect();
        let channel: Vec<Complex64> = indices
            .iter()
            .map(|&i| {
                Complex64::cis(0.013 * i as f64)
                    + Complex64::from_polar(0.5, -0.047 * i as f64)
                    + Complex64::from_polar(0.3, 0.09 * i as f64 + 1.0)
            })
            .collect();
        for (sto_a, sto_b) in [(0.0, -0.23), (0.11, 0.017), (-0.31, 0.29)] {
            let offset = |sto: f64| -> Vec<Complex64> {
                channel
                    .iter()
                    .zip(&indices)
                    .map(|(h, &i)| *h * Complex64::from_polar(1.0, sto * i as f64 + 0.7))
                    .collect()
            };
            let mut a = offset(sto_a);
            let mut b = offset(sto_b);
            sanitize_matched_delay(&mut a, &indices);
            sanitize_matched_delay(&mut b, &indices);
            let ip = rim_dsp::inner_product(&a, &b).abs();
            let trrs = ip * ip / (rim_dsp::norm_sqr(&a) * rim_dsp::norm_sqr(&b));
            assert!(
                trrs > 0.9995,
                "wide-grid invariance for STO {sto_a} vs {sto_b}: {trrs}"
            );
        }
    }

    #[test]
    fn matched_delay_short_input_is_noop() {
        let mut one = vec![Complex64::from_polar(1.0, 0.5)];
        let orig = one.clone();
        sanitize_matched_delay(&mut one, &[0]);
        assert_eq!(one, orig);
    }
}
