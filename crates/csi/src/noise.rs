//! Small noise-sampling helpers shared inside the crate.

use rand::Rng;

/// Samples a standard normal via Box–Muller.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_standard() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 30_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.03);
    }
}
