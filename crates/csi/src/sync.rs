//! Cross-NIC packet synchronisation.
//!
//! RIM does not need phase synchronisation across NICs — only *packet*
//! synchronisation (§5): because the AP broadcasts, two frames carrying
//! the same sequence number were received simultaneously (propagation
//! delay is negligible), so the broadcast acts as a coarse external clock.
//! This module merges per-NIC frame streams into a single device-wide
//! timeline indexed by sequence number, inserting nulls where a NIC lost a
//! packet.

use crate::frame::{CsiFrame, CsiSnapshot, DecodeError};
use crate::recorder::CsiRecording;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A synchronised device sample: one entry per antenna across all NICs
/// (NIC 0's antennas first); `None` where that NIC lost the packet.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncedSample {
    /// Broadcast sequence number.
    pub seq: u64,
    /// Per-antenna snapshot or `None` on loss.
    pub antennas: Vec<Option<CsiSnapshot>>,
}

/// Upper bound on a declared antenna count, to reject corrupt buffers
/// before allocating (matches the storage loader's plausibility guard).
const MAX_ANTENNAS: u32 = 4096;

impl SyncedSample {
    /// Serialises the sample to the same per-sample block layout as the
    /// capture storage format: a one-byte-per-antenna presence bitmap
    /// followed by one length-prefixed [`CsiFrame`] holding the present
    /// snapshots, so loss patterns survive the round trip exactly. This
    /// is the payload the serving wire protocol ships per ingest.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(self.antennas.len() as u32);
        let mut present: Vec<CsiSnapshot> = Vec::new();
        for snap in &self.antennas {
            match snap {
                Some(s) => {
                    buf.put_u8(1);
                    present.push(s.clone());
                }
                None => buf.put_u8(0),
            }
        }
        let frame = CsiFrame {
            seq: self.seq,
            timestamp_s: 0.0,
            rx: present,
        };
        let encoded = frame.encode();
        buf.put_u32(encoded.len() as u32);
        buf.put_slice(&encoded);
        buf.freeze()
    }

    /// Decodes a sample serialised by [`SyncedSample::encode`].
    ///
    /// # Errors
    /// [`DecodeError::Truncated`] when the buffer is shorter than its
    /// declared layout, [`DecodeError::BadDimension`] for implausible
    /// antenna counts or a presence bitmap that disagrees with the
    /// embedded frame, and any error of [`CsiFrame::decode`] for the
    /// frame block itself.
    pub fn decode(mut buf: &[u8]) -> Result<SyncedSample, DecodeError> {
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n_ant = buf.get_u32();
        if n_ant > MAX_ANTENNAS {
            return Err(DecodeError::BadDimension);
        }
        if buf.remaining() < n_ant as usize + 4 {
            return Err(DecodeError::Truncated);
        }
        let mut present = Vec::with_capacity(n_ant as usize);
        for _ in 0..n_ant {
            present.push(buf.get_u8() == 1);
        }
        let len = buf.get_u32() as usize;
        if buf.remaining() < len {
            return Err(DecodeError::Truncated);
        }
        let frame = CsiFrame::decode(&buf[..len])?;
        if frame.rx.len() != present.iter().filter(|&&p| p).count() {
            return Err(DecodeError::BadDimension);
        }
        let mut it = frame.rx.into_iter();
        let antennas = present
            .into_iter()
            .map(|p| if p { it.next() } else { None })
            .collect();
        Ok(SyncedSample {
            seq: frame.seq,
            antennas,
        })
    }
}

/// Merges per-NIC frame streams by sequence number.
///
/// `streams[n]` holds the frames NIC `n` actually received (strictly
/// increasing `seq` within each stream); `antennas_per_nic[n]` is the
/// antenna count of that NIC (needed to emit the right number of nulls
/// when a frame is missing). The output covers every sequence number from
/// the smallest to the largest observed on any NIC.
///
/// # Panics
/// Panics if `streams` and `antennas_per_nic` lengths differ, or a stream
/// is not strictly increasing in `seq`.
pub fn synchronize(streams: &[Vec<CsiFrame>], antennas_per_nic: &[usize]) -> Vec<SyncedSample> {
    assert_eq!(
        streams.len(),
        antennas_per_nic.len(),
        "one antenna count per NIC"
    );
    for s in streams {
        for w in s.windows(2) {
            assert!(
                w[0].seq < w[1].seq,
                "stream must be strictly increasing in seq"
            );
        }
    }
    let lo = streams
        .iter()
        .filter_map(|s| s.first())
        .map(|f| f.seq)
        .min();
    let hi = streams.iter().filter_map(|s| s.last()).map(|f| f.seq).max();
    let (Some(lo), Some(hi)) = (lo, hi) else {
        return Vec::new();
    };
    let mut cursors = vec![0usize; streams.len()];
    let mut out = Vec::with_capacity((hi - lo + 1) as usize);
    for seq in lo..=hi {
        let mut antennas = Vec::new();
        for (n, stream) in streams.iter().enumerate() {
            let cur = &mut cursors[n];
            if *cur < stream.len() && stream[*cur].seq == seq {
                for snap in &stream[*cur].rx {
                    antennas.push(Some(snap.clone()));
                }
                *cur += 1;
            } else {
                for _ in 0..antennas_per_nic[n] {
                    antennas.push(None);
                }
            }
        }
        out.push(SyncedSample { seq, antennas });
    }
    out
}

/// Converts an antenna-major [`CsiRecording`] (with per-sample loss holes)
/// into the sample-major [`SyncedSample`] sequence the gap-aware streaming
/// front-end consumes: `seq` is the sample index, and every antenna that
/// lost the packet maps to `None`.
///
/// This is the lossy counterpart of `CsiRecording::interpolated()` — it
/// preserves the holes so the consumer can decide how to repair or split,
/// instead of interpolating them away up front.
pub fn synced_from_recording(recording: &CsiRecording) -> Vec<SyncedSample> {
    let n = recording.n_samples();
    (0..n)
        .map(|i| SyncedSample {
            seq: i as u64,
            antennas: recording
                .antennas
                .iter()
                .map(|ant| ant[i].clone())
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_dsp::complex::Complex64;

    fn frame(seq: u64, n_rx: usize, tag: f64) -> CsiFrame {
        CsiFrame {
            seq,
            timestamp_s: seq as f64 * 0.005,
            rx: (0..n_rx)
                .map(|r| CsiSnapshot {
                    per_tx: vec![vec![Complex64::from_re(tag + r as f64)]],
                })
                .collect(),
        }
    }

    #[test]
    fn merges_complete_streams() {
        let a = vec![frame(10, 3, 1.0), frame(11, 3, 1.0)];
        let b = vec![frame(10, 3, 2.0), frame(11, 3, 2.0)];
        let synced = synchronize(&[a, b], &[3, 3]);
        assert_eq!(synced.len(), 2);
        assert_eq!(synced[0].seq, 10);
        assert_eq!(synced[0].antennas.len(), 6);
        assert!(synced[0].antennas.iter().all(|s| s.is_some()));
        // NIC order preserved: first three antennas are NIC A's.
        assert_eq!(synced[0].antennas[0].as_ref().unwrap().per_tx[0][0].re, 1.0);
        assert_eq!(synced[0].antennas[3].as_ref().unwrap().per_tx[0][0].re, 2.0);
    }

    #[test]
    fn inserts_nulls_for_lost_packets() {
        let a = vec![frame(5, 3, 1.0), frame(7, 3, 1.0)]; // lost 6
        let b = vec![frame(5, 3, 2.0), frame(6, 3, 2.0), frame(7, 3, 2.0)];
        let synced = synchronize(&[a, b], &[3, 3]);
        assert_eq!(synced.len(), 3);
        let s6 = &synced[1];
        assert_eq!(s6.seq, 6);
        assert!(s6.antennas[..3].iter().all(|s| s.is_none()), "NIC A nulled");
        assert!(s6.antennas[3..].iter().all(|s| s.is_some()), "NIC B intact");
    }

    #[test]
    fn covers_union_of_ranges() {
        let a = vec![frame(3, 1, 1.0)];
        let b = vec![frame(1, 1, 2.0), frame(5, 1, 2.0)];
        let synced = synchronize(&[a, b], &[1, 1]);
        assert_eq!(synced.len(), 5);
        assert_eq!(synced[0].seq, 1);
        assert_eq!(synced[4].seq, 5);
        // seq 3: A present, B missing.
        assert!(synced[2].antennas[0].is_some());
        assert!(synced[2].antennas[1].is_none());
    }

    #[test]
    fn empty_streams_yield_empty() {
        assert!(synchronize(&[vec![], vec![]], &[3, 3]).is_empty());
        let empty: &[Vec<CsiFrame>] = &[];
        assert!(synchronize(empty, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_out_of_order_stream() {
        let a = vec![frame(5, 1, 1.0), frame(5, 1, 1.0)];
        let _ = synchronize(&[a], &[1]);
    }

    #[test]
    fn synced_sample_encode_round_trips_with_holes() {
        let snap = |tag: f64| CsiSnapshot {
            per_tx: vec![vec![Complex64::new(tag, -tag); 4]; 2],
        };
        let sample = SyncedSample {
            seq: 917,
            antennas: vec![Some(snap(1.0)), None, Some(snap(3.0)), None],
        };
        let bytes = sample.encode();
        let back = SyncedSample::decode(&bytes).unwrap();
        assert_eq!(back, sample);
        // All-lost and empty samples survive too.
        for sample in [
            SyncedSample {
                seq: 1,
                antennas: vec![None, None],
            },
            SyncedSample {
                seq: 2,
                antennas: vec![],
            },
        ] {
            let back = SyncedSample::decode(&sample.encode()).unwrap();
            assert_eq!(back, sample);
        }
    }

    #[test]
    fn synced_sample_decode_rejects_corrupt_buffers() {
        let sample = SyncedSample {
            seq: 5,
            antennas: vec![Some(CsiSnapshot {
                per_tx: vec![vec![Complex64::new(1.0, 2.0)]],
            })],
        };
        let bytes = sample.encode();
        for cut in [0, 3, bytes.len() - 1] {
            assert_eq!(
                SyncedSample::decode(&bytes[..cut]),
                Err(DecodeError::Truncated),
                "cut {cut}"
            );
        }
        let mut huge = bytes.to_vec();
        huge[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(SyncedSample::decode(&huge), Err(DecodeError::BadDimension));
        // Presence bitmap claiming a lost antenna while the frame still
        // carries its snapshot is a structural mismatch.
        let mut mismatch = bytes.to_vec();
        mismatch[4] = 0;
        assert_eq!(
            SyncedSample::decode(&mismatch),
            Err(DecodeError::BadDimension)
        );
    }

    #[test]
    fn recording_maps_to_synced_samples_preserving_holes() {
        let snap = |tag: f64| CsiSnapshot {
            per_tx: vec![vec![Complex64::from_re(tag)]],
        };
        let recording = CsiRecording {
            sample_rate_hz: 100.0,
            subcarrier_indices: vec![0],
            antennas: vec![
                vec![Some(snap(1.0)), None, Some(snap(3.0))],
                vec![Some(snap(10.0)), Some(snap(20.0)), None],
            ],
        };
        let synced = synced_from_recording(&recording);
        assert_eq!(synced.len(), 3);
        assert_eq!(synced[0].seq, 0);
        assert_eq!(synced[2].seq, 2);
        assert_eq!(synced[0].antennas.len(), 2);
        assert!(synced[0].antennas.iter().all(|s| s.is_some()));
        assert!(synced[1].antennas[0].is_none());
        assert_eq!(
            synced[1].antennas[1].as_ref().unwrap().per_tx[0][0].re,
            20.0
        );
        assert!(synced[2].antennas[1].is_none());
    }
}
