//! CSI frames and snapshots.
//!
//! A [`CsiSnapshot`] is what one receive antenna measures from one packet:
//! a CFR vector per transmit antenna. A [`CsiFrame`] is the full per-packet
//! report of one NIC (all of its receive antennas), tagged with the
//! packet's sequence number — the quantity the modified driver exports in
//! the paper's prototype (§5). Frames can be serialised to a compact wire
//! format (the `bytes` crate) so recordings can be stored or piped between
//! processes like the paper's Galileo-to-Windows pipeline.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rim_dsp::complex::Complex64;

/// CSI measured by a single receive antenna for a single packet.
#[derive(Debug, Clone, PartialEq)]
pub struct CsiSnapshot {
    /// `per_tx[k][s]` is the complex channel of subcarrier `s` from TX
    /// antenna `k` to this RX antenna.
    pub per_tx: Vec<Vec<Complex64>>,
}

impl CsiSnapshot {
    /// Number of transmit antennas.
    pub fn n_tx(&self) -> usize {
        self.per_tx.len()
    }

    /// Number of subcarriers (0 when there are no TX streams).
    pub fn n_subcarriers(&self) -> usize {
        self.per_tx.first().map_or(0, Vec::len)
    }

    /// True when every CFR entry is finite.
    pub fn is_finite(&self) -> bool {
        self.per_tx
            .iter()
            .all(|cfr| cfr.iter().all(|h| h.is_finite()))
    }
}

/// One packet's CSI as reported by one NIC: a snapshot per RX antenna plus
/// the broadcast sequence number used for cross-NIC synchronisation.
#[derive(Debug, Clone, PartialEq)]
pub struct CsiFrame {
    /// Broadcast packet sequence number (shared across NICs).
    pub seq: u64,
    /// Receive timestamp, seconds.
    pub timestamp_s: f64,
    /// One snapshot per RX antenna of this NIC.
    pub rx: Vec<CsiSnapshot>,
}

/// Magic bytes of the frame wire format.
const FRAME_MAGIC: u32 = 0x5249_4d31; // "RIM1"

/// Errors decoding a serialised frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than the header or declared payload.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// A declared dimension was implausibly large.
    BadDimension,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame buffer truncated"),
            DecodeError::BadMagic => write!(f, "bad frame magic"),
            DecodeError::BadDimension => write!(f, "implausible frame dimension"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound on any declared dimension, to reject corrupt headers before
/// allocating.
const MAX_DIM: u32 = 4096;

impl CsiFrame {
    /// Serialises the frame to the compact binary wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(FRAME_MAGIC);
        buf.put_u64(self.seq);
        buf.put_f64(self.timestamp_s);
        buf.put_u32(self.rx.len() as u32);
        for snap in &self.rx {
            buf.put_u32(snap.per_tx.len() as u32);
            for cfr in &snap.per_tx {
                buf.put_u32(cfr.len() as u32);
                for h in cfr {
                    buf.put_f64(h.re);
                    buf.put_f64(h.im);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a frame from the wire format.
    pub fn decode(mut buf: &[u8]) -> Result<CsiFrame, DecodeError> {
        if buf.remaining() < 4 + 8 + 8 + 4 {
            return Err(DecodeError::Truncated);
        }
        if buf.get_u32() != FRAME_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let seq = buf.get_u64();
        let timestamp_s = buf.get_f64();
        let n_rx = buf.get_u32();
        if n_rx > MAX_DIM {
            return Err(DecodeError::BadDimension);
        }
        let mut rx = Vec::with_capacity(n_rx as usize);
        for _ in 0..n_rx {
            if buf.remaining() < 4 {
                return Err(DecodeError::Truncated);
            }
            let n_tx = buf.get_u32();
            if n_tx > MAX_DIM {
                return Err(DecodeError::BadDimension);
            }
            let mut per_tx = Vec::with_capacity(n_tx as usize);
            for _ in 0..n_tx {
                if buf.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let n_sc = buf.get_u32();
                if n_sc > MAX_DIM {
                    return Err(DecodeError::BadDimension);
                }
                if buf.remaining() < n_sc as usize * 16 {
                    return Err(DecodeError::Truncated);
                }
                let mut cfr = Vec::with_capacity(n_sc as usize);
                for _ in 0..n_sc {
                    let re = buf.get_f64();
                    let im = buf.get_f64();
                    cfr.push(Complex64::new(re, im));
                }
                per_tx.push(cfr);
            }
            rx.push(CsiSnapshot { per_tx });
        }
        Ok(CsiFrame {
            seq,
            timestamp_s,
            rx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> CsiFrame {
        let snap = |base: f64| CsiSnapshot {
            per_tx: (0..3)
                .map(|t| {
                    (0..8)
                        .map(|s| Complex64::new(base + t as f64, s as f64 * 0.5))
                        .collect()
                })
                .collect(),
        };
        CsiFrame {
            seq: 42,
            timestamp_s: 1.25,
            rx: vec![snap(1.0), snap(2.0), snap(3.0)],
        }
    }

    #[test]
    fn snapshot_dimensions() {
        let f = sample_frame();
        assert_eq!(f.rx[0].n_tx(), 3);
        assert_eq!(f.rx[0].n_subcarriers(), 8);
        assert!(f.rx[0].is_finite());
        let empty = CsiSnapshot { per_tx: vec![] };
        assert_eq!(empty.n_subcarriers(), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = sample_frame();
        let bytes = f.encode();
        let g = CsiFrame::decode(&bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let f = sample_frame();
        let mut bytes = f.encode().to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(CsiFrame::decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn decode_rejects_truncation() {
        let f = sample_frame();
        let bytes = f.encode();
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert_eq!(
                CsiFrame::decode(&bytes[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_huge_dimension() {
        let mut buf = BytesMut::new();
        buf.put_u32(FRAME_MAGIC);
        buf.put_u64(0);
        buf.put_f64(0.0);
        buf.put_u32(u32::MAX); // absurd RX antenna count
        assert_eq!(CsiFrame::decode(&buf), Err(DecodeError::BadDimension));
    }

    #[test]
    fn non_finite_detected() {
        let mut f = sample_frame();
        f.rx[1].per_tx[0][3] = Complex64::new(f64::NAN, 0.0);
        assert!(!f.rx[1].is_finite());
        assert!(f.rx[0].is_finite());
    }
}
