//! Recording storage: persist CSI recordings to disk and load them back.
//!
//! The paper's workflow records CSI on the device and analyses it later in
//! MATLAB; this module provides the equivalent capture file. The format is
//! a small header (rate, subcarrier indices, antenna count) followed by
//! per-sample length-prefixed [`CsiFrame`](crate::frame::CsiFrame)-encoded
//! blocks, with absent frames marking packet loss.

use crate::frame::{CsiFrame, CsiSnapshot, DecodeError};
use crate::recorder::CsiRecording;
use bytes::{Buf, BufMut, BytesMut};
use std::io::{self, Read, Write};

/// Magic bytes of the capture format.
const CAPTURE_MAGIC: u32 = 0x5249_4d43; // "RIMC"
/// Format version.
const VERSION: u16 = 1;

/// Errors loading a capture.
#[derive(Debug)]
pub enum LoadError {
    /// I/O failure.
    Io(io::Error),
    /// Structural problem in the capture data.
    Corrupt(&'static str),
    /// A frame block failed to decode.
    Frame(DecodeError),
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<DecodeError> for LoadError {
    fn from(e: DecodeError) -> Self {
        LoadError::Frame(e)
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Corrupt(what) => write!(f, "corrupt capture: {what}"),
            LoadError::Frame(e) => write!(f, "bad frame: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Serialises a recording to a writer.
///
/// Each sample stores a presence bitmap over antennas followed by one
/// frame holding the present snapshots (so loss patterns survive a round
/// trip exactly).
pub fn save_recording<W: Write>(rec: &CsiRecording, mut w: W) -> io::Result<()> {
    let mut head = BytesMut::new();
    head.put_u32(CAPTURE_MAGIC);
    head.put_u16(VERSION);
    head.put_f64(rec.sample_rate_hz);
    head.put_u32(rec.n_antennas() as u32);
    head.put_u32(rec.n_samples() as u32);
    head.put_u32(rec.subcarrier_indices.len() as u32);
    for &i in &rec.subcarrier_indices {
        head.put_i32(i);
    }
    w.write_all(&head)?;

    for t in 0..rec.n_samples() {
        // Presence bitmap (one byte per antenna keeps it simple).
        let mut body = BytesMut::new();
        let mut present: Vec<&CsiSnapshot> = Vec::new();
        for a in 0..rec.n_antennas() {
            match &rec.antennas[a][t] {
                Some(s) => {
                    body.put_u8(1);
                    present.push(s);
                }
                None => body.put_u8(0),
            }
        }
        let frame = CsiFrame {
            seq: t as u64,
            timestamp_s: t as f64 / rec.sample_rate_hz,
            rx: present.into_iter().cloned().collect(),
        };
        let encoded = frame.encode();
        body.put_u32(encoded.len() as u32);
        body.put_slice(&encoded);
        w.write_all(&body)?;
    }
    Ok(())
}

/// Loads a recording from a reader.
pub fn load_recording<R: Read>(mut r: R) -> Result<CsiRecording, LoadError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    let mut cur = &buf[..];
    if cur.remaining() < 4 + 2 + 8 + 12 {
        return Err(LoadError::Corrupt("truncated header"));
    }
    if cur.get_u32() != CAPTURE_MAGIC {
        return Err(LoadError::Corrupt("bad magic"));
    }
    if cur.get_u16() != VERSION {
        return Err(LoadError::Corrupt("unsupported version"));
    }
    let sample_rate_hz = cur.get_f64();
    if !(sample_rate_hz.is_finite() && sample_rate_hz > 0.0) {
        return Err(LoadError::Corrupt("bad sample rate"));
    }
    let n_ant = cur.get_u32() as usize;
    let n_samples = cur.get_u32() as usize;
    let n_sc = cur.get_u32() as usize;
    if n_ant > 64 || n_sc > 4096 {
        return Err(LoadError::Corrupt("implausible dimensions"));
    }
    if cur.remaining() < n_sc * 4 {
        return Err(LoadError::Corrupt("truncated subcarrier table"));
    }
    let mut subcarrier_indices = Vec::with_capacity(n_sc);
    for _ in 0..n_sc {
        subcarrier_indices.push(cur.get_i32());
    }

    let mut antennas: Vec<Vec<Option<CsiSnapshot>>> = vec![Vec::with_capacity(n_samples); n_ant];
    for _ in 0..n_samples {
        if cur.remaining() < n_ant + 4 {
            return Err(LoadError::Corrupt("truncated sample"));
        }
        let mut present = Vec::with_capacity(n_ant);
        for _ in 0..n_ant {
            present.push(cur.get_u8() == 1);
        }
        let len = cur.get_u32() as usize;
        if cur.remaining() < len {
            return Err(LoadError::Corrupt("truncated frame block"));
        }
        let frame = CsiFrame::decode(&cur[..len])?;
        cur.advance(len);
        let mut it = frame.rx.into_iter();
        for (a, &p) in present.iter().enumerate() {
            if p {
                let snap = it
                    .next()
                    .ok_or(LoadError::Corrupt("bitmap/frame mismatch"))?;
                antennas[a].push(Some(snap));
            } else {
                antennas[a].push(None);
            }
        }
    }
    Ok(CsiRecording {
        sample_rate_hz,
        subcarrier_indices,
        antennas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_dsp::complex::Complex64;

    fn recording_with_loss() -> CsiRecording {
        let snap = |tag: f64| CsiSnapshot {
            per_tx: vec![vec![Complex64::new(tag, -tag); 6]; 2],
        };
        CsiRecording {
            sample_rate_hz: 200.0,
            subcarrier_indices: vec![-3, -2, -1, 1, 2, 3],
            antennas: vec![
                vec![Some(snap(1.0)), None, Some(snap(3.0))],
                vec![Some(snap(4.0)), Some(snap(5.0)), None],
            ],
        }
    }

    #[test]
    fn save_load_round_trip() {
        let rec = recording_with_loss();
        let mut buf = Vec::new();
        save_recording(&rec, &mut buf).unwrap();
        let loaded = load_recording(&buf[..]).unwrap();
        assert_eq!(loaded.sample_rate_hz, rec.sample_rate_hz);
        assert_eq!(loaded.subcarrier_indices, rec.subcarrier_indices);
        assert_eq!(loaded.n_antennas(), 2);
        assert_eq!(loaded.n_samples(), 3);
        for a in 0..2 {
            for t in 0..3 {
                assert_eq!(loaded.antennas[a][t], rec.antennas[a][t], "({a},{t})");
            }
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let rec = recording_with_loss();
        let mut buf = Vec::new();
        save_recording(&rec, &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            load_recording(&bad[..]),
            Err(LoadError::Corrupt(_))
        ));
        for cut in [3usize, 10, buf.len() - 2] {
            assert!(load_recording(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn empty_recording_round_trips() {
        let rec = CsiRecording {
            sample_rate_hz: 100.0,
            subcarrier_indices: vec![1, 2],
            antennas: vec![Vec::new(); 3],
        };
        let mut buf = Vec::new();
        save_recording(&rec, &mut buf).unwrap();
        let loaded = load_recording(&buf[..]).unwrap();
        assert_eq!(loaded.n_antennas(), 3);
        assert_eq!(loaded.n_samples(), 0);
    }
}
