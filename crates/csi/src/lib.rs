//! # rim-csi
//!
//! CSI acquisition substrate for the RIM reproduction — everything between
//! the physical channel and the RIM algorithms:
//!
//! * [`frame`] — per-packet CSI frames with a compact wire format;
//! * [`impairments`] — the phase/amplitude distortions of commodity WiFi
//!   front-ends (CFO, SFO/STO, PLL initial phase, AGC, AWGN);
//! * [`sanitize`] — SpotFi-style linear phase sanitation;
//! * [`loss`] — i.i.d. and bursty packet-loss models;
//! * [`sync`] — broadcast sequence-number synchronisation across NICs;
//! * [`recorder`] — records a device trajectory against the channel
//!   simulator into the dense CSI series the RIM core consumes;
//! * [`storage`] — capture files: persist recordings and load them back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod impairments;
pub mod loss;
mod noise;
pub mod recorder;
pub mod sanitize;
pub mod storage;
pub mod sync;

pub use frame::{CsiFrame, CsiSnapshot, DecodeError};
pub use impairments::{HardwareProfile, ImpairmentModel};
pub use loss::{LossModel, LossProcess};
pub use recorder::{CsiRecorder, CsiRecording, DenseCsi, DeviceConfig, NicConfig, RecorderConfig};
pub use sanitize::{
    sanitize_linear_phase, sanitize_matched_delay, sanitize_snapshot, unwrap_phase, NonFiniteCsi,
};
pub use storage::{load_recording, save_recording, LoadError};
pub use sync::{synced_from_recording, synchronize, SyncedSample};
