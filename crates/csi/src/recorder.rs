//! CSI recording: drives the channel simulator along a device trajectory
//! and produces what the paper's modified drivers deliver — per-antenna,
//! per-packet, impairment-laden, optionally sanitised CSI series.
//!
//! The device model mirrors the prototype (§5): one or two NICs, each with
//! up to three antennas at fixed offsets in the device frame. Packets are
//! AP broadcasts at the trajectory's sample rate; each NIC loses packets
//! according to its loss model; antennas on one NIC share per-packet clock
//! impairments.

use crate::frame::{CsiFrame, CsiSnapshot};
use crate::impairments::{HardwareProfile, ImpairmentModel};
use crate::loss::{LossModel, LossProcess};
use crate::sanitize::sanitize_snapshot;
use rim_channel::simulator::ChannelSimulator;
use rim_channel::trajectory::Trajectory;
use rim_dsp::complex::Complex64;
use rim_dsp::geom::Vec2;
use rim_dsp::interp::fill_gaps_complex;

/// Configuration of one NIC on the tracked device.
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// Antenna offsets in the device frame, metres.
    pub antenna_offsets: Vec<Vec2>,
    /// Front-end impairment profile.
    pub profile: HardwareProfile,
    /// Packet-loss behaviour.
    pub loss: LossModel,
}

/// The tracked device: one or more NICs.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// NICs in antenna-numbering order.
    pub nics: Vec<NicConfig>,
}

impl DeviceConfig {
    /// Single-NIC device with the given antenna offsets and a commodity
    /// front-end without packet loss.
    pub fn single_nic(antenna_offsets: Vec<Vec2>) -> Self {
        Self {
            nics: vec![NicConfig {
                antenna_offsets,
                profile: HardwareProfile::commodity(),
                loss: LossModel::None,
            }],
        }
    }

    /// Two-NIC device splitting `antenna_offsets` evenly (first half on
    /// NIC 0) — the hexagonal-array arrangement of the prototype.
    ///
    /// # Panics
    /// Panics if the offset count is odd.
    pub fn dual_nic(antenna_offsets: Vec<Vec2>) -> Self {
        assert!(
            antenna_offsets.len().is_multiple_of(2),
            "dual-NIC device needs an even antenna count"
        );
        let half = antenna_offsets.len() / 2;
        let (a, b) = antenna_offsets.split_at(half);
        Self {
            nics: vec![
                NicConfig {
                    antenna_offsets: a.to_vec(),
                    profile: HardwareProfile::commodity(),
                    loss: LossModel::None,
                },
                NicConfig {
                    antenna_offsets: b.to_vec(),
                    profile: HardwareProfile::commodity(),
                    loss: LossModel::None,
                },
            ],
        }
    }

    /// Total antenna count across NICs.
    pub fn n_antennas(&self) -> usize {
        self.nics.iter().map(|n| n.antenna_offsets.len()).sum()
    }

    /// All antenna offsets in global antenna order.
    pub fn all_offsets(&self) -> Vec<Vec2> {
        self.nics
            .iter()
            .flat_map(|n| n.antenna_offsets.iter().copied())
            .collect()
    }

    /// Sets every NIC's impairment profile.
    pub fn with_profile(mut self, profile: HardwareProfile) -> Self {
        for nic in &mut self.nics {
            nic.profile = profile;
        }
        self
    }

    /// Sets every NIC's loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        for nic in &mut self.nics {
            nic.loss = loss;
        }
        self
    }
}

/// Recorder options.
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Apply linear phase sanitation to every CFR (as the paper does before
    /// computing TRRS).
    pub sanitize: bool,
    /// Seed for impairments and loss processes.
    pub seed: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            sanitize: true,
            seed: 0,
        }
    }
}

/// A recorded CSI time series for the whole device.
#[derive(Debug, Clone)]
pub struct CsiRecording {
    /// Packet / sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Subcarrier indices of every CFR.
    pub subcarrier_indices: Vec<i32>,
    /// `antennas[a][i]` — antenna `a` at sample `i`; `None` when the
    /// carrying NIC lost that packet.
    pub antennas: Vec<Vec<Option<CsiSnapshot>>>,
}

impl CsiRecording {
    /// Number of antennas.
    pub fn n_antennas(&self) -> usize {
        self.antennas.len()
    }

    /// Number of time samples.
    pub fn n_samples(&self) -> usize {
        self.antennas.first().map_or(0, Vec::len)
    }

    /// Fraction of antenna-samples lost to packet loss.
    pub fn loss_rate(&self) -> f64 {
        let total: usize = self.antennas.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let lost: usize = self
            .antennas
            .iter()
            .map(|s| s.iter().filter(|v| v.is_none()).count())
            .sum();
        lost as f64 / total as f64
    }

    /// Applies a loss model to an already-recorded series, dropping whole
    /// device samples (every antenna at once, like a lost broadcast
    /// packet). Lets a fault harness record one clean capture and derive
    /// arbitrarily many seeded loss scenarios from it without re-running
    /// the channel simulator.
    pub fn degrade(&self, model: LossModel, seed: u64) -> CsiRecording {
        let mut process = LossProcess::new(model, seed);
        let lost: Vec<bool> = (0..self.n_samples()).map(|_| process.next_lost()).collect();
        CsiRecording {
            sample_rate_hz: self.sample_rate_hz,
            subcarrier_indices: self.subcarrier_indices.clone(),
            antennas: self
                .antennas
                .iter()
                .map(|series| {
                    series
                        .iter()
                        .zip(&lost)
                        .map(|(s, &l)| if l { None } else { s.clone() })
                        .collect()
                })
                .collect(),
        }
    }

    /// Repairs packet loss by per-subcarrier linear interpolation (paper
    /// §5/§7), producing a gap-free series. Returns `None` if any antenna
    /// lost *every* packet.
    pub fn interpolated(&self) -> Option<DenseCsi> {
        let n_samples = self.n_samples();
        let mut antennas = Vec::with_capacity(self.antennas.len());
        for series in &self.antennas {
            // Establish dimensions from the first present snapshot.
            let proto = series.iter().flatten().next()?;
            let n_tx = proto.n_tx();
            let n_sc = proto.n_subcarriers();
            let mut dense: Vec<CsiSnapshot> = (0..n_samples)
                .map(|_| CsiSnapshot {
                    per_tx: vec![vec![rim_dsp::complex::ZERO; n_sc]; n_tx],
                })
                .collect();
            let mut lane = Vec::with_capacity(n_samples);
            for tx in 0..n_tx {
                for sc in 0..n_sc {
                    lane.clear();
                    lane.extend(
                        series
                            .iter()
                            .map(|s| s.as_ref().map(|snap| snap.per_tx[tx][sc])),
                    );
                    let filled = fill_gaps_complex(&lane)?;
                    for (i, v) in filled.into_iter().enumerate() {
                        dense[i].per_tx[tx][sc] = v;
                    }
                }
            }
            antennas.push(dense);
        }
        Some(DenseCsi {
            sample_rate_hz: self.sample_rate_hz,
            subcarrier_indices: self.subcarrier_indices.clone(),
            antennas,
        })
    }
}

/// A gap-free CSI series (after interpolation), the input the RIM core
/// consumes.
#[derive(Debug, Clone)]
pub struct DenseCsi {
    /// Packet / sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Subcarrier indices of every CFR.
    pub subcarrier_indices: Vec<i32>,
    /// `antennas[a][i]` — antenna `a` at sample `i`.
    pub antennas: Vec<Vec<CsiSnapshot>>,
}

impl DenseCsi {
    /// Number of antennas.
    pub fn n_antennas(&self) -> usize {
        self.antennas.len()
    }

    /// Number of time samples.
    pub fn n_samples(&self) -> usize {
        self.antennas.first().map_or(0, Vec::len)
    }

    /// Keeps every `factor`-th sample — used for the sampling-rate sweep
    /// (paper Fig. 16).
    pub fn decimate(&self, factor: usize) -> DenseCsi {
        assert!(factor > 0, "decimation factor must be positive");
        DenseCsi {
            sample_rate_hz: self.sample_rate_hz / factor as f64,
            subcarrier_indices: self.subcarrier_indices.clone(),
            antennas: self
                .antennas
                .iter()
                .map(|s| s.iter().step_by(factor).cloned().collect())
                .collect(),
        }
    }
}

/// Records CSI along trajectories against a channel simulator.
pub struct CsiRecorder<'a> {
    sim: &'a ChannelSimulator,
    device: DeviceConfig,
    config: RecorderConfig,
}

impl<'a> CsiRecorder<'a> {
    /// Creates a recorder.
    ///
    /// # Panics
    /// Panics if the device has no antennas.
    pub fn new(sim: &'a ChannelSimulator, device: DeviceConfig, config: RecorderConfig) -> Self {
        assert!(device.n_antennas() > 0, "device needs antennas");
        Self {
            sim,
            device,
            config,
        }
    }

    /// The device configuration.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Records the full trajectory into a [`CsiRecording`].
    pub fn record(&self, traj: &Trajectory) -> CsiRecording {
        self.record_probed(traj, &rim_obs::NullProbe)
    }

    /// [`CsiRecorder::record`] with an observability probe: acquisition
    /// reports snapshots ingested/dropped and sanitize rejections
    /// (snapshots left with non-finite values) under
    /// [`rim_obs::stage::CSI_INGEST`].
    pub fn record_probed<P: rim_obs::Probe + ?Sized>(
        &self,
        traj: &Trajectory,
        probe: &P,
    ) -> CsiRecording {
        let ingest_span = probe.span(rim_obs::stage::CSI_INGEST);
        let mut ingested = 0u64;
        let mut dropped = 0u64;
        let mut rejected = 0u64;
        let sampler = self.sim.sampler();
        let indices = self.sim.layout().indices.clone();
        let n_ant = self.device.n_antennas();
        let mut antennas: Vec<Vec<Option<CsiSnapshot>>> =
            vec![Vec::with_capacity(traj.len()); n_ant];
        let mut impairments: Vec<ImpairmentModel> = self
            .device
            .nics
            .iter()
            .enumerate()
            .map(|(n, nic)| {
                ImpairmentModel::new(
                    nic.profile,
                    nic.antenna_offsets.len(),
                    self.config
                        .seed
                        .wrapping_add(n as u64)
                        .wrapping_mul(0x9E37_79B9),
                )
            })
            .collect();
        let mut losses: Vec<LossProcess> = self
            .device
            .nics
            .iter()
            .enumerate()
            .map(|(n, nic)| {
                LossProcess::new(nic.loss, self.config.seed.wrapping_add(77 + n as u64))
            })
            .collect();

        for i in 0..traj.len() {
            let t = traj.time(i);
            let mut ant_base = 0usize;
            for (n, nic) in self.device.nics.iter().enumerate() {
                let n_rx = nic.antenna_offsets.len();
                if losses[n].next_lost() {
                    for a in 0..n_rx {
                        antennas[ant_base + a].push(None);
                    }
                    dropped += n_rx as u64;
                    ant_base += n_rx;
                    continue;
                }
                // Noiseless MIMO CSI for this NIC's antennas.
                let mut csi: Vec<Vec<Vec<Complex64>>> = nic
                    .antenna_offsets
                    .iter()
                    .map(|&off| {
                        let pos = traj.antenna_position(i, off);
                        sampler.mimo_cfr(pos, t).per_tx
                    })
                    .collect();
                impairments[n].apply(&mut csi, &indices, t);
                for (a, mut snap) in csi.into_iter().enumerate() {
                    ingested += 1;
                    if self.config.sanitize {
                        if sanitize_snapshot(&mut snap, &indices).is_err() {
                            // Non-finite CSI is indistinguishable from a
                            // corrupt report; record it as loss so the
                            // interpolation layer repairs it instead of
                            // TRRS silently absorbing NaN.
                            rejected += 1;
                            antennas[ant_base + a].push(None);
                            continue;
                        }
                    } else if snap.iter().any(|cfr| cfr.iter().any(|h| !h.is_finite())) {
                        rejected += 1;
                        antennas[ant_base + a].push(None);
                        continue;
                    }
                    antennas[ant_base + a].push(Some(CsiSnapshot { per_tx: snap }));
                }
                ant_base += n_rx;
            }
        }
        drop(ingest_span);
        probe.count(rim_obs::stage::CSI_INGEST, "snapshots_ingested", ingested);
        probe.count(rim_obs::stage::CSI_INGEST, "snapshots_dropped", dropped);
        probe.count(rim_obs::stage::CSI_INGEST, "sanitize_rejections", rejected);
        CsiRecording {
            sample_rate_hz: traj.sample_rate_hz(),
            subcarrier_indices: indices,
            antennas,
        }
    }

    /// Records the trajectory as per-NIC frame streams (the wire-level
    /// view; lost packets are simply absent from a stream).
    pub fn record_frames(&self, traj: &Trajectory) -> Vec<Vec<CsiFrame>> {
        let recording = self.record(traj);
        let mut out = Vec::with_capacity(self.device.nics.len());
        let mut ant_base = 0usize;
        for nic in &self.device.nics {
            let n_rx = nic.antenna_offsets.len();
            let mut stream = Vec::new();
            for i in 0..recording.n_samples() {
                let rx: Option<Vec<CsiSnapshot>> = (0..n_rx)
                    .map(|a| recording.antennas[ant_base + a][i].clone())
                    .collect();
                if let Some(rx) = rx {
                    stream.push(CsiFrame {
                        seq: i as u64,
                        timestamp_s: i as f64 / recording.sample_rate_hz,
                        rx,
                    });
                }
            }
            out.push(stream);
            ant_base += n_rx;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_channel::trajectory::{line, OrientationMode};
    use rim_dsp::geom::Point2;

    fn device3() -> DeviceConfig {
        let d = 0.0258;
        DeviceConfig::single_nic(vec![
            Vec2::new(-d, 0.0),
            Vec2::new(0.0, 0.0),
            Vec2::new(d, 0.0),
        ])
    }

    fn short_traj() -> Trajectory {
        line(
            Point2::new(0.0, 2.0),
            0.0,
            0.25,
            1.0,
            200.0,
            OrientationMode::FollowPath,
        )
    }

    #[test]
    fn recording_dimensions() {
        let sim = ChannelSimulator::open_lab(7);
        let rec = CsiRecorder::new(&sim, device3(), RecorderConfig::default());
        let r = rec.record(&short_traj());
        assert_eq!(r.n_antennas(), 3);
        assert_eq!(r.n_samples(), short_traj().len());
        assert_eq!(r.loss_rate(), 0.0);
        let snap = r.antennas[0][0].as_ref().unwrap();
        assert_eq!(snap.n_tx(), 3);
        assert_eq!(snap.n_subcarriers(), 114);
    }

    #[test]
    fn recording_is_deterministic() {
        let sim = ChannelSimulator::open_lab(7);
        let rec = CsiRecorder::new(&sim, device3(), RecorderConfig::default());
        let a = rec.record(&short_traj());
        let b = rec.record(&short_traj());
        assert_eq!(a.antennas[1][5], b.antennas[1][5]);
    }

    #[test]
    fn loss_produces_gaps_and_interpolation_repairs() {
        let sim = ChannelSimulator::open_lab(7);
        let device = device3().with_loss(LossModel::Iid { p: 0.2 });
        let rec = CsiRecorder::new(&sim, device, RecorderConfig::default());
        let r = rec.record(&short_traj());
        assert!(r.loss_rate() > 0.05, "losses happened: {}", r.loss_rate());
        let dense = r.interpolated().expect("interpolable");
        assert_eq!(dense.n_samples(), r.n_samples());
        assert!(dense.antennas.iter().flatten().all(|s| s.is_finite()));
    }

    #[test]
    fn dual_nic_loses_independently() {
        let sim = ChannelSimulator::open_lab(7);
        let d = 0.0258;
        let offsets: Vec<Vec2> = (0..6)
            .map(|k| {
                let ang = k as f64 * std::f64::consts::FRAC_PI_3;
                Vec2::from_angle(ang) * d
            })
            .collect();
        let device = DeviceConfig::dual_nic(offsets).with_loss(LossModel::Iid { p: 0.3 });
        let rec = CsiRecorder::new(&sim, device, RecorderConfig::default());
        let r = rec.record(&short_traj());
        // Find a sample where NIC 0 lost and NIC 1 did not.
        let independent =
            (0..r.n_samples()).any(|i| r.antennas[0][i].is_none() && r.antennas[3][i].is_some());
        assert!(independent, "NICs lose packets independently");
        // Antennas within one NIC lose together.
        for i in 0..r.n_samples() {
            assert_eq!(r.antennas[0][i].is_none(), r.antennas[1][i].is_none());
            assert_eq!(r.antennas[0][i].is_none(), r.antennas[2][i].is_none());
        }
    }

    #[test]
    fn record_frames_matches_sync_contract() {
        let sim = ChannelSimulator::open_lab(7);
        let device = device3().with_loss(LossModel::Iid { p: 0.15 });
        let rec = CsiRecorder::new(&sim, device, RecorderConfig::default());
        let traj = short_traj();
        let streams = rec.record_frames(&traj);
        assert_eq!(streams.len(), 1);
        // Streams are strictly increasing and synchronizable.
        let synced = crate::sync::synchronize(&streams, &[3]);
        assert!(!synced.is_empty());
        assert!(synced.len() <= traj.len());
    }

    #[test]
    fn degrade_applies_seeded_whole_device_loss() {
        let sim = ChannelSimulator::open_lab(7);
        let rec = CsiRecorder::new(&sim, device3(), RecorderConfig::default());
        let clean = rec.record(&short_traj());
        assert_eq!(clean.loss_rate(), 0.0);
        let lossy = rec
            .record(&short_traj())
            .degrade(LossModel::Iid { p: 0.3 }, 11);
        assert!(lossy.loss_rate() > 0.1, "{}", lossy.loss_rate());
        // Whole-device: all antennas drop together.
        for i in 0..lossy.n_samples() {
            let n_lost = lossy.antennas.iter().filter(|a| a[i].is_none()).count();
            assert!(n_lost == 0 || n_lost == lossy.n_antennas());
        }
        // Seeded: same seed reproduces, different seed differs.
        let again = clean.degrade(LossModel::Iid { p: 0.3 }, 11);
        let other = clean.degrade(LossModel::Iid { p: 0.3 }, 12);
        let mask = |r: &CsiRecording| -> Vec<bool> {
            (0..r.n_samples())
                .map(|i| r.antennas[0][i].is_none())
                .collect()
        };
        assert_eq!(mask(&lossy), mask(&again));
        assert_ne!(mask(&again), mask(&other));
        // Surviving samples are untouched.
        for i in 0..clean.n_samples() {
            if again.antennas[0][i].is_some() {
                assert_eq!(again.antennas[0][i], clean.antennas[0][i]);
            }
        }
    }

    #[test]
    fn decimation_halves_rate() {
        let sim = ChannelSimulator::open_lab(7);
        let rec = CsiRecorder::new(&sim, device3(), RecorderConfig::default());
        let dense = rec.record(&short_traj()).interpolated().unwrap();
        let half = dense.decimate(2);
        assert_eq!(half.sample_rate_hz, 100.0);
        assert_eq!(half.n_samples(), dense.n_samples().div_ceil(2));
    }

    #[test]
    fn sanitation_flattens_linear_phase() {
        // With sanitize on, the per-packet STO slope is removed: TRRS of
        // consecutive static samples stays ~1 even with heavy impairments.
        let sim = ChannelSimulator::open_lab(7);
        let device = device3().with_profile(HardwareProfile {
            snr_db: f64::INFINITY,
            sto_slope_std: 0.2,
            residual_cfo_hz: 200.0,
            agc_std: 0.0,
            chain_phase_std: 2.0,
        });
        let rec = CsiRecorder::new(&sim, device, RecorderConfig::default());
        let traj = rim_channel::trajectory::dwell(Point2::new(1.0, 2.0), 0.0, 0.1, 200.0);
        let r = rec.record(&traj);
        let a = r.antennas[0][0].as_ref().unwrap();
        let b = r.antennas[0][10].as_ref().unwrap();
        let trrs = {
            let ip = rim_dsp::inner_product(&a.per_tx[0], &b.per_tx[0]).abs();
            ip * ip / (rim_dsp::norm_sqr(&a.per_tx[0]) * rim_dsp::norm_sqr(&b.per_tx[0]))
        };
        assert!(trrs > 0.99, "static + sanitised => TRRS ≈ 1, got {trrs}");
    }
}
