//! Per-request trace context for the serve path.
//!
//! A trace follows one admitted sample end to end: allocated at
//! admission, carried on the pending frame through the session manager's
//! ingress queue, threaded into the stream's ingest call, and committed
//! when the sample's analysis completes. Each hop records a [`TraceSpan`]
//! with monotonic microsecond timestamps relative to the trace's own
//! epoch, and parent links reconstruct the span tree (the ingest span is
//! the parent of the flush span it triggered).
//!
//! Committed traces land in a bounded ring inside [`Tracer`] for live
//! inspection, and their span durations feed the
//! [`crate::stage::LATENCY_ATTRIBUTION`] distributions of a
//! [`Recorder`], so a run report decomposes the ingest→estimate tail
//! into queue wait vs. batch scheduling vs. compute vs. wire time
//! instead of only observing it.

use crate::recorder::Recorder;
use crate::{attribution_metric, stage};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Committed traces retained in the [`Tracer`] ring.
pub const TRACE_RING_CAP: usize = 512;

/// The span taxonomy of the serve path, in lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Admission control: shard lookup, session creation, queue push.
    Admission,
    /// From queue push to the scheduler worker picking the sample up.
    QueueWait,
    /// From the scheduler tick's start to this sample's worker pickup
    /// (fan-out and cross-session contention).
    BatchSchedule,
    /// The stream's ingest call: gap repair, column build, movement
    /// state machine, provisional tracking. Parent of [`SpanKind::Flush`].
    IncrementalIngest,
    /// Segment flush inside an ingest: materialisation plus the
    /// per-segment pipeline run.
    Flush,
    /// Encoding and writing the response frame that shipped the
    /// session's events back over the wire.
    EventWireOut,
}

impl SpanKind {
    /// Canonical lowercase name (used in exposition text and reports).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Admission => "admission",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::BatchSchedule => "batch_schedule",
            SpanKind::IncrementalIngest => "incremental_ingest",
            SpanKind::Flush => "flush",
            SpanKind::EventWireOut => "event_wire_out",
        }
    }

    /// Every kind, in lifecycle order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Admission,
        SpanKind::QueueWait,
        SpanKind::BatchSchedule,
        SpanKind::IncrementalIngest,
        SpanKind::Flush,
        SpanKind::EventWireOut,
    ];

    /// The latency-attribution distribution this kind feeds.
    pub fn attribution_metric(self) -> &'static str {
        match self {
            SpanKind::Admission => attribution_metric::ADMISSION_US,
            SpanKind::QueueWait => attribution_metric::QUEUE_WAIT_US,
            SpanKind::BatchSchedule => attribution_metric::BATCH_SCHEDULE_US,
            SpanKind::IncrementalIngest => attribution_metric::COMPUTE_US,
            SpanKind::Flush => attribution_metric::FLUSH_US,
            SpanKind::EventWireOut => attribution_metric::WIRE_US,
        }
    }
}

/// Process-unique trace identifier, allocated at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

/// Identifier of one span within its trace (dense, allocation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u32);

/// One completed (or still-open) span of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// What this span measures.
    pub kind: SpanKind,
    /// This span's id within the trace.
    pub id: SpanId,
    /// The enclosing span, if any (root spans have none).
    pub parent: Option<SpanId>,
    /// Start offset from the trace epoch, microseconds (monotonic).
    pub start_us: u64,
    /// Duration, microseconds. Still-open spans report 0.
    pub dur_us: u64,
}

/// A committed per-request trace: the spans of one admitted sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// The trace id allocated at admission.
    pub trace_id: TraceId,
    /// The session the sample belonged to.
    pub session_id: u64,
    /// The sample's sequence number.
    pub seq: u64,
    /// Spans in allocation order.
    pub spans: Vec<TraceSpan>,
}

impl TraceRecord {
    /// Duration of the first span of `kind`, if recorded.
    pub fn span_us(&self, kind: SpanKind) -> Option<u64> {
        self.spans.iter().find(|s| s.kind == kind).map(|s| s.dur_us)
    }

    /// End offset of the latest-ending span — the trace's total extent
    /// on its own time axis, microseconds.
    pub fn total_us(&self) -> u64 {
        self.spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or(0)
    }

    /// One-line summary for exposition text and `rim top`.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "trace {} session={} seq={} total_us={}",
            self.trace_id.0,
            self.session_id,
            self.seq,
            self.total_us()
        );
        for kind in SpanKind::ALL {
            if let Some(us) = self.span_us(kind) {
                let _ = write!(out, " {}={us}", kind.as_str());
            }
        }
        out
    }
}

/// A trace being recorded: owned by the pending sample as it moves
/// through the serve path. Spans open and close against the trace's own
/// monotonic epoch, and an open-span stack supplies parent links, so
/// call sites never thread span ids by hand.
#[derive(Debug)]
pub struct ActiveTrace {
    trace_id: TraceId,
    session_id: u64,
    seq: u64,
    epoch: Instant,
    spans: Vec<TraceSpan>,
    /// Indices into `spans` of the currently open spans (innermost last).
    open: Vec<usize>,
}

impl ActiveTrace {
    /// Starts a trace with its epoch at "now".
    pub fn new(trace_id: TraceId, session_id: u64, seq: u64) -> Self {
        Self {
            trace_id,
            session_id,
            seq,
            epoch: Instant::now(),
            spans: Vec::with_capacity(8),
            open: Vec::with_capacity(4),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Opens a span of `kind` starting now. The innermost open span (if
    /// any) becomes its parent. Close with [`ActiveTrace::close`].
    pub fn open(&mut self, kind: SpanKind) -> SpanId {
        let id = SpanId(self.spans.len() as u32);
        let parent = self.open.last().map(|&i| self.spans[i].id);
        let start_us = self.now_us();
        self.spans.push(TraceSpan {
            kind,
            id,
            parent,
            start_us,
            dur_us: 0,
        });
        self.open.push(id.0 as usize);
        id
    }

    /// Closes the span, recording its duration. Any spans opened after
    /// it that are still open are closed with it (a span cannot outlive
    /// its parent).
    pub fn close(&mut self, id: SpanId) {
        let now = self.now_us();
        while let Some(idx) = self.open.pop() {
            let span = &mut self.spans[idx];
            span.dur_us = now.saturating_sub(span.start_us);
            if span.id == id {
                return;
            }
        }
    }

    /// Closes the innermost open span of `kind`, if any — for call sites
    /// (e.g. queue pickup) that cannot carry the [`SpanId`] from where
    /// the span was opened.
    pub fn close_open(&mut self, kind: SpanKind) {
        if let Some(&idx) = self
            .open
            .iter()
            .rev()
            .find(|&&i| self.spans[i].kind == kind)
        {
            let id = self.spans[idx].id;
            self.close(id);
        }
    }

    /// Records a completed span whose start was measured externally
    /// (e.g. a scheduler tick's start instant), parented like
    /// [`ActiveTrace::open`].
    pub fn record_since(&mut self, kind: SpanKind, start: Instant) {
        let id = SpanId(self.spans.len() as u32);
        let parent = self.open.last().map(|&i| self.spans[i].id);
        let start_us = start
            .checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_micros().min(u64::MAX as u128) as u64);
        let dur_us = self.now_us().saturating_sub(start_us);
        self.spans.push(TraceSpan {
            kind,
            id,
            parent,
            start_us,
            dur_us,
        });
    }

    /// The trace id allocated at admission.
    pub fn trace_id(&self) -> TraceId {
        self.trace_id
    }

    /// Seals the trace into an immutable record (open spans close now).
    pub fn finish(mut self) -> TraceRecord {
        let now = self.now_us();
        while let Some(idx) = self.open.pop() {
            let span = &mut self.spans[idx];
            span.dur_us = now.saturating_sub(span.start_us);
        }
        TraceRecord {
            trace_id: self.trace_id,
            session_id: self.session_id,
            seq: self.seq,
            spans: self.spans,
        }
    }
}

/// Allocates, samples, and retains traces. One per [`SessionManager`]
/// (or per bench harness); all methods take `&self`.
///
/// [`SessionManager`]: ../../rim_serve/struct.SessionManager.html
#[derive(Debug)]
pub struct Tracer {
    /// Trace every Nth admitted sample; `0` disables tracing entirely.
    sample_every: usize,
    next_id: AtomicU64,
    admitted: AtomicU64,
    ring: Mutex<VecDeque<TraceRecord>>,
}

impl Tracer {
    /// A tracer sampling every `sample_every`-th admission (`0` = off,
    /// `1` = every sample).
    pub fn new(sample_every: usize) -> Self {
        Self {
            sample_every,
            next_id: AtomicU64::new(1),
            admitted: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(if sample_every == 0 {
                0
            } else {
                TRACE_RING_CAP.min(64)
            })),
        }
    }

    /// Whether any tracing is configured.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }

    /// Starts a trace for this admission if it falls on the sampling
    /// cadence; the zero-cost answer otherwise.
    pub fn try_start(&self, session_id: u64, seq: u64) -> Option<ActiveTrace> {
        if self.sample_every == 0 {
            return None;
        }
        let n = self.admitted.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.sample_every as u64) {
            return None;
        }
        let id = TraceId(self.next_id.fetch_add(1, Ordering::Relaxed));
        Some(ActiveTrace::new(id, session_id, seq))
    }

    /// Commits a finished trace: retains it in the bounded ring and
    /// feeds each span's duration into `recorder`'s
    /// [`stage::LATENCY_ATTRIBUTION`] distributions.
    pub fn commit(&self, trace: ActiveTrace, recorder: &Recorder) {
        let record = trace.finish();
        for span in &record.spans {
            recorder.observe(
                stage::LATENCY_ATTRIBUTION,
                span.kind.attribution_metric(),
                span.dur_us as f64,
            );
        }
        recorder.observe(
            stage::LATENCY_ATTRIBUTION,
            attribution_metric::TOTAL_US,
            record.total_us() as f64,
        );
        let mut ring = lock(&self.ring);
        if ring.len() >= TRACE_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Attaches an [`SpanKind::EventWireOut`] span to the most recent
    /// committed trace that lacks one (events leave on the next response
    /// frame, after their trace committed) and feeds the wire
    /// attribution distribution. No-op when tracing is off.
    pub fn attach_wire_out(&self, dur_us: u64, recorder: &Recorder) {
        if self.sample_every == 0 {
            return;
        }
        recorder.observe(
            stage::LATENCY_ATTRIBUTION,
            attribution_metric::WIRE_US,
            dur_us as f64,
        );
        let mut ring = lock(&self.ring);
        if let Some(record) = ring
            .iter_mut()
            .rev()
            .find(|r| r.span_us(SpanKind::EventWireOut).is_none())
        {
            let id = SpanId(record.spans.len() as u32);
            let start_us = record.total_us();
            record.spans.push(TraceSpan {
                kind: SpanKind::EventWireOut,
                id,
                parent: None,
                start_us,
                dur_us,
            });
        }
    }

    /// The most recent `n` committed traces, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceRecord> {
        let ring = lock(&self.ring);
        ring.iter().rev().take(n).rev().cloned().collect()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_parent_links_hold() {
        let mut trace = ActiveTrace::new(TraceId(7), 3, 41);
        let outer = trace.open(SpanKind::IncrementalIngest);
        let inner = trace.open(SpanKind::Flush);
        trace.close(inner);
        trace.close(outer);
        let record = trace.finish();
        assert_eq!(record.spans.len(), 2);
        assert_eq!(record.spans[0].parent, None);
        assert_eq!(record.spans[1].parent, Some(record.spans[0].id));
        assert!(record.span_us(SpanKind::Flush).is_some());
        assert!(record.span_us(SpanKind::Admission).is_none());
        // The parent's extent covers the child's.
        let outer_span = &record.spans[0];
        let inner_span = &record.spans[1];
        assert!(outer_span.start_us <= inner_span.start_us);
        assert!(outer_span.start_us + outer_span.dur_us >= inner_span.start_us + inner_span.dur_us);
    }

    #[test]
    fn closing_a_parent_closes_orphaned_children() {
        let mut trace = ActiveTrace::new(TraceId(1), 0, 0);
        let outer = trace.open(SpanKind::IncrementalIngest);
        let _leaked = trace.open(SpanKind::Flush);
        trace.close(outer);
        let record = trace.finish();
        assert!(record.spans.iter().all(|s| s.id.0 < 2));
        // finish() found nothing left open.
        assert_eq!(record.spans.len(), 2);
    }

    #[test]
    fn tracer_samples_on_cadence_and_bounds_the_ring() {
        let tracer = Tracer::new(3);
        let recorder = Recorder::new();
        let mut started = 0;
        for seq in 0..9u64 {
            if let Some(trace) = tracer.try_start(1, seq) {
                started += 1;
                tracer.commit(trace, &recorder);
            }
        }
        assert_eq!(started, 3, "every 3rd admission traced");
        assert_eq!(tracer.recent(10).len(), 3);
        let report = recorder.report();
        let attr = report.stage(stage::LATENCY_ATTRIBUTION).expect("stage");
        assert!(attr
            .distributions
            .iter()
            .any(|d| d.name == attribution_metric::TOTAL_US && d.count == 3));
        // Disabled tracer starts nothing.
        assert!(Tracer::new(0).try_start(1, 0).is_none());
        assert!(!Tracer::new(0).enabled());
    }

    #[test]
    fn wire_out_attaches_to_the_newest_uncovered_trace() {
        let tracer = Tracer::new(1);
        let recorder = Recorder::new();
        for seq in 0..2u64 {
            let mut t = tracer.try_start(9, seq).expect("sampling every admit");
            let id = t.open(SpanKind::Admission);
            t.close(id);
            tracer.commit(t, &recorder);
        }
        tracer.attach_wire_out(120, &recorder);
        let recent = tracer.recent(2);
        assert_eq!(recent.len(), 2);
        // Newest trace got the wire span; the older one did not.
        assert_eq!(recent[1].span_us(SpanKind::EventWireOut), Some(120));
        assert_eq!(recent[0].span_us(SpanKind::EventWireOut), None);
        let summary = recent[1].summary();
        assert!(summary.contains("event_wire_out=120"), "{summary}");
    }

    #[test]
    fn span_kind_names_match_attribution_metrics() {
        for kind in SpanKind::ALL {
            assert!(!kind.as_str().is_empty());
            assert!(kind.attribution_metric().ends_with("_us"));
        }
    }
}
