//! Aggregation backend for live instrumentation.

use crate::report::{DistributionReport, RunReport, StageReport};
use crate::window::{Frame, FrameStage, WindowSnapshot, WindowState, DEFAULT_WINDOWS};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Number of log₂ latency buckets: bucket `i` holds durations whose
/// nanosecond count has `i` significant bits, so the histogram spans
/// 1 ns ..= u64::MAX ns with ~2× resolution.
pub(crate) const BUCKETS: usize = 64;

/// Cap on retained samples per value distribution. Keeping the first N
/// samples (rather than a random reservoir) is deterministic, which the
/// golden-report tests rely on; beyond the cap only count/sum/min/max
/// keep updating.
const DIST_SAMPLE_CAP: usize = 4096;

/// Aggregates stage timings, counters, gauges, and value distributions.
///
/// Interior mutability via a `Mutex` keeps the recording API `&self`, so
/// one recorder can thread through the pipeline alongside borrowed CSI
/// data and also be shared across threads. The pipeline is
/// single-threaded, so the lock is uncontended (`parking_lot` is not
/// available in this build environment; `std::sync::Mutex` is equivalent
/// here).
#[derive(Debug)]
pub struct Recorder {
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::with_windows(DEFAULT_WINDOWS)
    }
}

#[derive(Debug)]
struct Inner {
    stages: BTreeMap<&'static str, StageStats>,
    windows: WindowState,
}

#[derive(Debug)]
struct StageStats {
    calls: u64,
    total_ns: u64,
    latency_hist: [u64; BUCKETS],
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    distributions: BTreeMap<&'static str, Distribution>,
}

impl Default for StageStats {
    fn default() -> Self {
        Self {
            calls: 0,
            total_ns: 0,
            latency_hist: [0; BUCKETS],
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            distributions: BTreeMap::new(),
        }
    }
}

#[derive(Debug, Default)]
struct Distribution {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

impl Distribution {
    fn push(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        if self.samples.len() < DIST_SAMPLE_CAP {
            self.samples.push(value);
        }
    }
}

/// Log₂ bucket index for a duration in nanoseconds.
fn bucket_of(ns: u64) -> usize {
    (64 - ns.max(1).leading_zeros()) as usize - 1
}

/// Representative duration (ns) for a bucket: its geometric midpoint,
/// `2^i * 1.5`.
fn bucket_value(bucket: usize) -> f64 {
    (1u64 << bucket) as f64 * 1.5
}

impl Recorder {
    /// New empty recorder with the default sliding window
    /// ([`DEFAULT_WINDOWS`]×1 s).
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty recorder whose live window spans the last `n`×1 s
    /// frames (`n` is clamped to at least 1). Windowing costs nothing on
    /// the recording path — frames only roll when
    /// [`Recorder::window_snapshot`] is called.
    pub fn with_windows(n: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                stages: BTreeMap::new(),
                windows: WindowState::new(n, Instant::now()),
            }),
        }
    }

    /// Records one completed invocation of `stage` (called by
    /// [`crate::Span`] on drop).
    pub fn record_duration(&self, stage: &'static str, ns: u64) {
        let mut inner = self.inner.lock().unwrap();
        let stats = inner.stages.entry(stage).or_default();
        stats.calls += 1;
        stats.total_ns = stats.total_ns.saturating_add(ns);
        stats.latency_hist[bucket_of(ns)] += 1;
    }

    /// Adds `n` to a named counter under `stage`.
    pub fn count(&self, stage: &'static str, counter: &'static str, n: u64) {
        let mut inner = self.inner.lock().unwrap();
        let stats = inner.stages.entry(stage).or_default();
        *stats.counters.entry(counter).or_insert(0) += n;
    }

    /// Sets a named gauge under `stage` to its latest value.
    pub fn gauge(&self, stage: &'static str, gauge: &'static str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        let stats = inner.stages.entry(stage).or_default();
        stats.gauges.insert(gauge, value);
    }

    /// Feeds one sample into a named value distribution under `stage`.
    pub fn observe(&self, stage: &'static str, distribution: &'static str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        let stats = inner.stages.entry(stage).or_default();
        stats
            .distributions
            .entry(distribution)
            .or_default()
            .push(value);
    }

    /// Snapshots the aggregate state into an immutable [`RunReport`].
    /// Stages appear in name order; recording may continue afterwards.
    pub fn report(&self) -> RunReport {
        let inner = self.inner.lock().unwrap();
        RunReport {
            stages: inner
                .stages
                .iter()
                .map(|(name, stats)| StageReport {
                    name: (*name).to_string(),
                    calls: stats.calls,
                    total_ms: stats.total_ns as f64 / 1e6,
                    p50_ms: latency_percentile_ms(&stats.latency_hist, stats.calls, 0.50),
                    p95_ms: latency_percentile_ms(&stats.latency_hist, stats.calls, 0.95),
                    counters: stats
                        .counters
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), *v))
                        .collect(),
                    gauges: stats
                        .gauges
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), *v))
                        .collect(),
                    distributions: stats
                        .distributions
                        .iter()
                        .map(|(k, d)| distribution_report(k, d))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Live sliding-window view: per-stage counter deltas, merged
    /// latency percentiles, and gauge last-values over the last ~N
    /// seconds (see [`Recorder::with_windows`]). Rolls the window ring
    /// lazily on read; recording may continue concurrently.
    pub fn window_snapshot(&self) -> WindowSnapshot {
        let mut inner = self.inner.lock().unwrap();
        let current = Frame {
            at: Instant::now(),
            stages: inner
                .stages
                .iter()
                .map(|(name, stats)| {
                    (
                        *name,
                        FrameStage {
                            calls: stats.calls,
                            total_ns: stats.total_ns,
                            hist: stats.latency_hist,
                            counters: stats.counters.clone(),
                            gauges: stats.gauges.clone(),
                        },
                    )
                })
                .collect(),
        };
        inner.windows.snapshot(current)
    }
}

/// Percentile (in ms) from a log₂ latency histogram: walk cumulative
/// counts to the target rank's bucket and return that bucket's geometric
/// midpoint. Resolution is therefore ~2×, which is plenty for a stage
/// profile.
pub(crate) fn latency_percentile_ms(hist: &[u64; BUCKETS], calls: u64, q: f64) -> f64 {
    if calls == 0 {
        return 0.0;
    }
    // Rank of the q-th percentile, 1-based: ceil(q * calls) clamped to
    // [1, calls].
    let rank = ((q * calls as f64).ceil() as u64).clamp(1, calls);
    let mut seen = 0u64;
    for (bucket, &n) in hist.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return bucket_value(bucket) / 1e6;
        }
    }
    bucket_value(BUCKETS - 1) / 1e6
}

fn distribution_report(name: &str, d: &Distribution) -> DistributionReport {
    let mut sorted = d.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let sample_percentile = |q: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    };
    DistributionReport {
        name: name.to_string(),
        count: d.count,
        mean: if d.count == 0 {
            0.0
        } else {
            d.sum / d.count as f64
        },
        min: d.min,
        max: d.max,
        p50: sample_percentile(0.50),
        p95: sample_percentile(0.95),
        p99: sample_percentile(0.99),
        p999: sample_percentile(0.999),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0); // clamped to 1 ns
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(1025), 10);
        assert_eq!(bucket_of(2047), 10);
        assert_eq!(bucket_of(2048), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn percentiles_walk_cumulative_counts() {
        let mut hist = [0u64; BUCKETS];
        // 90 fast calls in bucket 10 (~1 µs), 10 slow in bucket 20 (~1 ms).
        hist[10] = 90;
        hist[20] = 10;
        let p50 = latency_percentile_ms(&hist, 100, 0.50);
        let p95 = latency_percentile_ms(&hist, 100, 0.95);
        assert_eq!(p50, bucket_value(10) / 1e6);
        assert_eq!(p95, bucket_value(20) / 1e6);
        // p90 rank = 90 → still the fast bucket.
        assert_eq!(
            latency_percentile_ms(&hist, 100, 0.90),
            bucket_value(10) / 1e6
        );
        // Empty histogram reports zero.
        assert_eq!(latency_percentile_ms(&[0; BUCKETS], 0, 0.5), 0.0);
    }

    #[test]
    fn single_call_percentiles_are_its_bucket() {
        let recorder = Recorder::new();
        recorder.record_duration("s", 1_000_000); // 1 ms → bucket 19
        let report = recorder.report();
        let stage = report.stage("s").unwrap();
        assert_eq!(stage.calls, 1);
        assert_eq!(stage.p50_ms, stage.p95_ms);
        // Geometric midpoint of the enclosing power-of-two bucket.
        let bucket = bucket_of(1_000_000);
        assert_eq!(stage.p50_ms, bucket_value(bucket) / 1e6);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let recorder = Recorder::new();
        recorder.count("s", "snapshots", 3);
        recorder.count("s", "snapshots", 4);
        recorder.gauge("s", "occupancy", 0.2);
        recorder.gauge("s", "occupancy", 0.8);
        let report = recorder.report();
        let stage = report.stage("s").unwrap();
        assert_eq!(stage.counters, vec![("snapshots".to_string(), 7)]);
        assert_eq!(stage.gauges, vec![("occupancy".to_string(), 0.8)]);
    }

    #[test]
    fn distributions_track_summary_and_percentiles() {
        let recorder = Recorder::new();
        for v in 1..=100 {
            recorder.observe("s", "prominence", v as f64);
        }
        let report = recorder.report();
        let dist = &report.stage("s").unwrap().distributions[0];
        assert_eq!(dist.name, "prominence");
        assert_eq!(dist.count, 100);
        assert_eq!(dist.min, 1.0);
        assert_eq!(dist.max, 100.0);
        assert!((dist.mean - 50.5).abs() < 1e-9);
        assert_eq!(dist.p50, 50.0);
        assert_eq!(dist.p95, 95.0);
        assert_eq!(dist.p99, 99.0);
        assert_eq!(dist.p999, 100.0);
    }

    #[test]
    fn window_snapshot_reports_recent_activity() {
        let recorder = Recorder::with_windows(4);
        recorder.record_duration("s", 1_000);
        recorder.count("s", "items", 5);
        recorder.gauge("s", "level", 2.5);
        let snap = recorder.window_snapshot();
        // First read: baseline is the empty creation frame.
        let stage = snap.stage("s").expect("stage windowed");
        assert_eq!(stage.calls, 1);
        assert_eq!(stage.counters, vec![("items".to_string(), 5)]);
        assert_eq!(stage.gauges, vec![("level".to_string(), 2.5)]);
        // Reads within the same 1 s frame keep accumulating against the
        // same baseline.
        recorder.count("s", "items", 2);
        let snap = recorder.window_snapshot();
        assert_eq!(
            snap.stage("s").unwrap().counters,
            vec![("items".to_string(), 7)]
        );
    }

    #[test]
    fn distribution_sample_cap_keeps_summary_exact() {
        let recorder = Recorder::new();
        for v in 0..(DIST_SAMPLE_CAP + 500) {
            recorder.observe("s", "d", v as f64);
        }
        let report = recorder.report();
        let dist = &report.stage("s").unwrap().distributions[0];
        assert_eq!(dist.count, (DIST_SAMPLE_CAP + 500) as u64);
        assert_eq!(dist.max, (DIST_SAMPLE_CAP + 500 - 1) as f64);
    }
}
