//! Immutable run reports: the machine-readable product of a recorded run.

use crate::json::{self, JsonValue};
use std::fmt::Write as _;

/// Schema tag stamped into the JSON form, bumped on breaking layout
/// changes. v2 added tail percentiles (`p99`, `p999`) to distributions.
pub const SCHEMA: &str = "rim-obs/2";

/// Snapshot of every instrumented stage of one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Per-stage aggregates, sorted by stage name.
    pub stages: Vec<StageReport>,
}

/// Aggregates for one named stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name (see [`crate::stage`] for the pipeline's canonical set).
    pub name: String,
    /// Completed span count.
    pub calls: u64,
    /// Total wall time across calls, milliseconds.
    pub total_ms: f64,
    /// Median per-call latency (log₂-bucket resolution), milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-call latency, milliseconds.
    pub p95_ms: f64,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Named gauges (latest value wins), sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Named value distributions, sorted by name.
    pub distributions: Vec<DistributionReport>,
}

/// Summary of one value distribution (e.g. ridge prominence).
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionReport {
    /// Distribution name.
    pub name: String,
    /// Samples observed.
    pub count: u64,
    /// Arithmetic mean over all samples.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median of the retained sample prefix.
    pub p50: f64,
    /// 95th percentile of the retained sample prefix.
    pub p95: f64,
    /// 99th percentile of the retained sample prefix.
    pub p99: f64,
    /// 99.9th percentile of the retained sample prefix.
    pub p999: f64,
}

impl RunReport {
    /// The stage named `name`, if recorded.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Serialises to a compact single-document JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":");
        json::write_string(&mut out, SCHEMA);
        out.push_str(",\"stages\":[");
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            stage.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Parses a report serialised by [`RunReport::to_json`].
    pub fn from_json(input: &str) -> Result<Self, String> {
        let doc = json::parse(input)?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("unsupported schema {other:?}")),
        }
        let stages = doc
            .get("stages")
            .and_then(JsonValue::as_array)
            .ok_or("missing stages array")?;
        Ok(RunReport {
            stages: stages
                .iter()
                .map(StageReport::from_json_value)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Renders the human-readable stage table (columns in the style of the
    /// bench figure reports). Extra sections such as heatmaps are appended
    /// by callers.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== RIM run report {}", "=".repeat(56));
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12} {:>10} {:>10}",
            "stage", "calls", "total_ms", "p50_ms", "p95_ms"
        );
        let _ = writeln!(out, "{}", "-".repeat(74));
        for stage in &self.stages {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>12.3} {:>10.4} {:>10.4}",
                stage.name, stage.calls, stage.total_ms, stage.p50_ms, stage.p95_ms
            );
            if !stage.counters.is_empty() {
                let list = stage
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join("  ");
                let _ = writeln!(out, "    counters: {list}");
            }
            if !stage.gauges.is_empty() {
                let list = stage
                    .gauges
                    .iter()
                    .map(|(k, v)| format!("{k}={v:.4}"))
                    .collect::<Vec<_>>()
                    .join("  ");
                let _ = writeln!(out, "    gauges:   {list}");
            }
            for dist in &stage.distributions {
                let _ = writeln!(
                    out,
                    "    dist {}: n={} mean={:.4} min={:.4} p50={:.4} p95={:.4} p99={:.4} p999={:.4} max={:.4}",
                    dist.name,
                    dist.count,
                    dist.mean,
                    dist.min,
                    dist.p50,
                    dist.p95,
                    dist.p99,
                    dist.p999,
                    dist.max
                );
            }
        }
        let _ = writeln!(out, "{}", "=".repeat(74));
        out
    }
}

impl StageReport {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        json::write_string(out, &self.name);
        let _ = write!(out, ",\"calls\":{}", self.calls);
        out.push_str(",\"total_ms\":");
        json::write_f64(out, self.total_ms);
        out.push_str(",\"p50_ms\":");
        json::write_f64(out, self.p50_ms);
        out.push_str(",\"p95_ms\":");
        json::write_f64(out, self.p95_ms);
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(out, k);
            out.push(':');
            json::write_f64(out, *v);
        }
        out.push_str("},\"distributions\":[");
        for (i, dist) in self.distributions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_string(out, &dist.name);
            let _ = write!(out, ",\"count\":{}", dist.count);
            for (key, value) in [
                ("mean", dist.mean),
                ("min", dist.min),
                ("max", dist.max),
                ("p50", dist.p50),
                ("p95", dist.p95),
                ("p99", dist.p99),
                ("p999", dist.p999),
            ] {
                let _ = write!(out, ",\"{key}\":");
                json::write_f64(out, value);
            }
            out.push('}');
        }
        out.push_str("]}");
    }

    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("stage missing name")?
            .to_string();
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("stage {name} missing {key}"))
        };
        let mut counters = Vec::new();
        if let Some(JsonValue::Object(map)) = v.get("counters") {
            for (k, c) in map {
                counters.push((
                    k.clone(),
                    c.as_u64().ok_or_else(|| format!("bad counter {k}"))?,
                ));
            }
        }
        let mut gauges = Vec::new();
        if let Some(JsonValue::Object(map)) = v.get("gauges") {
            for (k, g) in map {
                gauges.push((
                    k.clone(),
                    g.as_f64().ok_or_else(|| format!("bad gauge {k}"))?,
                ));
            }
        }
        let mut distributions = Vec::new();
        if let Some(dists) = v.get("distributions").and_then(JsonValue::as_array) {
            for d in dists {
                let dname = d
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("distribution missing name")?
                    .to_string();
                let dnum = |key: &str| -> Result<f64, String> {
                    d.get(key)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("distribution {dname} missing {key}"))
                };
                distributions.push(DistributionReport {
                    count: d
                        .get("count")
                        .and_then(JsonValue::as_u64)
                        .ok_or("distribution missing count")?,
                    mean: dnum("mean")?,
                    min: dnum("min")?,
                    max: dnum("max")?,
                    p50: dnum("p50")?,
                    p95: dnum("p95")?,
                    p99: dnum("p99")?,
                    p999: dnum("p999")?,
                    name: dname,
                });
            }
        }
        Ok(StageReport {
            calls: v
                .get("calls")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("stage {name} missing calls"))?,
            total_ms: num("total_ms")?,
            p50_ms: num("p50_ms")?,
            p95_ms: num("p95_ms")?,
            counters,
            gauges,
            distributions,
            name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            stages: vec![
                StageReport {
                    name: "dp_tracking".into(),
                    calls: 12,
                    total_ms: 34.5,
                    p50_ms: 2.1,
                    p95_ms: 6.3,
                    counters: vec![("peaks".into(), 240)],
                    gauges: vec![("matrix_rows".into(), 61.0)],
                    distributions: vec![DistributionReport {
                        name: "prominence".into(),
                        count: 240,
                        mean: 0.42,
                        min: 0.01,
                        max: 0.99,
                        p50: 0.40,
                        p95: 0.88,
                        p99: 0.95,
                        p999: 0.985,
                    }],
                },
                StageReport {
                    name: "movement_detection".into(),
                    calls: 1,
                    total_ms: 0.75,
                    p50_ms: 0.75,
                    p95_ms: 0.75,
                    counters: vec![],
                    gauges: vec![],
                    distributions: vec![],
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample_report();
        let json = report.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn json_rejects_wrong_schema() {
        assert!(RunReport::from_json("{\"schema\":\"other/9\",\"stages\":[]}").is_err());
        assert!(RunReport::from_json("{\"stages\":[]}").is_err());
        assert!(RunReport::from_json("not json").is_err());
    }

    #[test]
    fn render_lists_every_stage_and_annotation() {
        let text = sample_report().render();
        assert!(text.contains("dp_tracking"));
        assert!(text.contains("movement_detection"));
        assert!(text.contains("peaks=240"));
        assert!(text.contains("matrix_rows=61.0000"));
        assert!(text.contains("dist prominence: n=240"));
    }
}
