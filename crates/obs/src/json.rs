//! Minimal self-contained JSON value model, writer, and parser.
//!
//! The build environment has no serde_json, so run reports serialise
//! through this module. It supports exactly the JSON this crate emits:
//! objects, arrays, strings, finite f64 numbers, u64 integers, booleans,
//! and null. Non-finite floats serialise as `null` (JSON has no NaN) and
//! parse back as `0.0`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (u64 integers that fit are still `Number`s; the
    /// accessors convert).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved sorted for deterministic output.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as an f64 (numbers only; `null` reads as 0.0).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            JsonValue::Null => Some(0.0),
            _ => None,
        }
    }

    /// This value as a u64 (non-negative integral numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes and quotes a string into `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a finite f64 in shortest round-trip form; non-finite → `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trip float formatting.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe: continue
                    // over continuation bytes).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#" {"a": [1, 2.5, -3e2], "b": {"c": "x\"y\n"}, "t": true, "n": null} "#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\"y\n")
        );
        assert_eq!(v.get("t"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn float_writer_round_trips() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 123456.789, -0.0, 0.0] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, v, "{s}");
        }
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn string_writer_escapes() {
        let mut s = String::new();
        write_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, r#""a\"b\\c\nd\u0001""#);
        let back = parse(&s).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}"));
    }
}
