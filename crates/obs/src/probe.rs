//! The instrumentation interface the pipeline is written against.

use crate::recorder::Recorder;
use std::time::Instant;

/// Instrumentation sink threaded through the pipeline as a generic
/// parameter (`P: Probe + ?Sized`), so the disabled case monomorphises
/// away completely.
///
/// Implementors only supply [`Probe::recorder`]; every hook has a default
/// body that routes to the recorder when one is present and does nothing
/// otherwise.
pub trait Probe {
    /// The recorder backing this probe, if instrumentation is on.
    fn recorder(&self) -> Option<&Recorder> {
        None
    }

    /// Whether instrumentation is live (lets call sites skip building
    /// expensive metric inputs).
    #[inline]
    fn enabled(&self) -> bool {
        self.recorder().is_some()
    }

    /// Starts a wall-clock span for `stage`; the elapsed time is recorded
    /// when the returned guard drops. Disabled probes return an inert
    /// guard without reading the clock.
    #[inline]
    fn span(&self, stage: &'static str) -> Span<'_> {
        match self.recorder() {
            Some(recorder) => Span {
                inner: Some(SpanInner {
                    recorder,
                    stage,
                    start: Instant::now(),
                }),
            },
            None => Span { inner: None },
        }
    }

    /// Adds `n` to the named counter under `stage`.
    #[inline]
    fn count(&self, stage: &'static str, counter: &'static str, n: u64) {
        if let Some(recorder) = self.recorder() {
            recorder.count(stage, counter, n);
        }
    }

    /// Sets the named gauge under `stage` to its latest value.
    #[inline]
    fn gauge(&self, stage: &'static str, gauge: &'static str, value: f64) {
        if let Some(recorder) = self.recorder() {
            recorder.gauge(stage, gauge, value);
        }
    }

    /// Feeds one sample into the named value distribution under `stage`.
    #[inline]
    fn observe(&self, stage: &'static str, distribution: &'static str, value: f64) {
        if let Some(recorder) = self.recorder() {
            recorder.observe(stage, distribution, value);
        }
    }
}

/// The no-op probe: zero-sized, every hook an empty inlineable body.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

impl Probe for Recorder {
    #[inline]
    fn recorder(&self) -> Option<&Recorder> {
        Some(self)
    }
}

/// RAII wall-clock timer for one stage invocation; see [`Probe::span`].
#[must_use = "a span measures until it is dropped; binding it to _ drops immediately"]
pub struct Span<'a> {
    inner: Option<SpanInner<'a>>,
}

struct SpanInner<'a> {
    recorder: &'a Recorder,
    stage: &'static str,
    start: Instant,
}

impl Span<'_> {
    /// Whether this span is actually timing (false for [`NullProbe`]).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.start.elapsed();
            inner
                .recorder
                .record_duration(inner.stage, elapsed.as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<NullProbe>(), 0);
        let probe = NullProbe;
        assert!(!probe.enabled());
        let span = probe.span("movement_detection");
        assert!(!span.is_enabled());
        probe.count("s", "c", 1);
        probe.gauge("s", "g", 1.0);
        probe.observe("s", "d", 1.0);
    }

    #[test]
    fn recorder_probe_times_spans() {
        let recorder = Recorder::new();
        {
            let _span = recorder.span("dp_tracking");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let report = recorder.report();
        let stage = report.stage("dp_tracking").expect("stage recorded");
        assert_eq!(stage.calls, 1);
        assert!(stage.total_ms >= 1.0, "total_ms = {}", stage.total_ms);
    }

    #[test]
    fn nested_spans_attribute_time_to_each_stage() {
        let recorder = Recorder::new();
        {
            let _outer = recorder.span("outer");
            let _inner = recorder.span("inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let report = recorder.report();
        let outer = report.stage("outer").unwrap();
        let inner = report.stage("inner").unwrap();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // Outer encloses inner, so its wall time is at least inner's.
        assert!(outer.total_ms >= inner.total_ms);
    }
}
