//! Sliding-window metric snapshots for live reads.
//!
//! A [`crate::Recorder`] only aggregates cumulatively; a dashboard needs
//! *recent* behaviour. The window layer keeps a bounded ring of frames —
//! cumulative per-stage snapshots stamped at ≥1 s intervals — and a live
//! read subtracts the oldest retained frame from the current totals:
//! counter deltas, histogram merges (bucket-wise subtraction of the
//! monotone log₂ histograms), and gauge last-values over the last ~N
//! seconds. Frames only roll when a snapshot is taken, so the recording
//! hot path pays nothing for windowing.

use crate::json::{self, JsonValue};
use crate::recorder::{latency_percentile_ms, BUCKETS};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag stamped into windowed-snapshot JSON.
pub const WINDOW_SCHEMA: &str = "rim-window/1";

/// Default ring length: snapshots cover the last ~8 seconds.
pub const DEFAULT_WINDOWS: usize = 8;

/// One cumulative per-stage capture, stamped when it was taken.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    pub(crate) at: Instant,
    pub(crate) stages: BTreeMap<&'static str, FrameStage>,
}

impl Frame {
    pub(crate) fn empty(at: Instant) -> Self {
        Self {
            at,
            stages: BTreeMap::new(),
        }
    }
}

/// Cumulative stats of one stage inside a [`Frame`] (distributions are
/// deliberately excluded: the latency histograms already cover timing,
/// and retained-sample vectors would make frames unbounded).
#[derive(Debug, Clone)]
pub(crate) struct FrameStage {
    pub(crate) calls: u64,
    pub(crate) total_ns: u64,
    pub(crate) hist: [u64; BUCKETS],
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) gauges: BTreeMap<&'static str, f64>,
}

impl Default for FrameStage {
    fn default() -> Self {
        Self {
            calls: 0,
            total_ns: 0,
            hist: [0; BUCKETS],
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }
}

/// The ring of frames behind a recorder's live window. Rolls lazily: a
/// new frame is retained only when a snapshot is taken ≥`period_s` after
/// the newest retained frame.
#[derive(Debug)]
pub(crate) struct WindowState {
    n: usize,
    period_s: f64,
    frames: VecDeque<Frame>,
}

impl WindowState {
    pub(crate) fn new(n: usize, at: Instant) -> Self {
        Self::with_period(n, 1.0, at)
    }

    pub(crate) fn with_period(n: usize, period_s: f64, at: Instant) -> Self {
        let n = n.max(1);
        let mut frames = VecDeque::with_capacity(n + 1);
        // The creation-time baseline: the first window spans the run so
        // far until enough frames have rolled.
        frames.push_back(Frame::empty(at));
        Self {
            n,
            period_s,
            frames,
        }
    }

    /// Rolls the ring if due, then reports `current` minus the oldest
    /// retained frame.
    pub(crate) fn snapshot(&mut self, current: Frame) -> WindowSnapshot {
        let newest_at = self.frames.back().expect("ring never empty").at;
        if current
            .at
            .saturating_duration_since(newest_at)
            .as_secs_f64()
            >= self.period_s
        {
            self.frames.push_back(current.clone());
            while self.frames.len() > self.n + 1 {
                self.frames.pop_front();
            }
        }
        let base = self.frames.front().expect("ring never empty");
        delta_snapshot(base, &current)
    }
}

fn delta_snapshot(base: &Frame, current: &Frame) -> WindowSnapshot {
    let empty = FrameStage::default();
    let stages = current
        .stages
        .iter()
        .map(|(name, cur)| {
            let old = base.stages.get(name).unwrap_or(&empty);
            let calls = cur.calls.saturating_sub(old.calls);
            let mut hist = [0u64; BUCKETS];
            for (h, (c, o)) in hist.iter_mut().zip(cur.hist.iter().zip(old.hist.iter())) {
                *h = c.saturating_sub(*o);
            }
            WindowStageSnapshot {
                name: (*name).to_string(),
                calls,
                total_ms: cur.total_ns.saturating_sub(old.total_ns) as f64 / 1e6,
                p50_ms: latency_percentile_ms(&hist, calls, 0.50),
                p95_ms: latency_percentile_ms(&hist, calls, 0.95),
                counters: cur
                    .counters
                    .iter()
                    .map(|(k, v)| {
                        let prev = old.counters.get(k).copied().unwrap_or(0);
                        ((*k).to_string(), v.saturating_sub(prev))
                    })
                    .collect(),
                gauges: cur
                    .gauges
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), *v))
                    .collect(),
            }
        })
        .collect();
    WindowSnapshot {
        span_s: current.at.saturating_duration_since(base.at).as_secs_f64(),
        stages,
    }
}

/// Live view over the recorder's recent past: per-stage call/counter
/// deltas, merged latency percentiles, and gauge last-values covering
/// the last [`WindowSnapshot::span_s`] seconds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowSnapshot {
    /// Wall-clock seconds the window covers (oldest retained frame to
    /// the read instant).
    pub span_s: f64,
    /// Per-stage deltas, sorted by stage name.
    pub stages: Vec<WindowStageSnapshot>,
}

/// One stage's activity inside a [`WindowSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStageSnapshot {
    /// Stage name (see [`crate::stage`]).
    pub name: String,
    /// Spans completed inside the window.
    pub calls: u64,
    /// Wall time accumulated inside the window, milliseconds.
    pub total_ms: f64,
    /// Median per-call latency inside the window, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-call latency inside the window, milliseconds.
    pub p95_ms: f64,
    /// Counter increments inside the window, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge last-values (gauges are instantaneous; no delta), sorted by
    /// name.
    pub gauges: Vec<(String, f64)>,
}

impl WindowSnapshot {
    /// The stage named `name`, if active in the window.
    pub fn stage(&self, name: &str) -> Option<&WindowStageSnapshot> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Serialises to a compact single-document JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":");
        json::write_string(&mut out, WINDOW_SCHEMA);
        out.push_str(",\"span_s\":");
        json::write_f64(&mut out, self.span_s);
        out.push_str(",\"stages\":[");
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_string(&mut out, &stage.name);
            let _ = write!(out, ",\"calls\":{}", stage.calls);
            for (key, value) in [
                ("total_ms", stage.total_ms),
                ("p50_ms", stage.p50_ms),
                ("p95_ms", stage.p95_ms),
            ] {
                let _ = write!(out, ",\"{key}\":");
                json::write_f64(&mut out, value);
            }
            out.push_str(",\"counters\":{");
            for (i, (k, v)) in stage.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_string(&mut out, k);
                let _ = write!(out, ":{v}");
            }
            out.push_str("},\"gauges\":{");
            for (i, (k, v)) in stage.gauges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_string(&mut out, k);
                out.push(':');
                json::write_f64(&mut out, *v);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a snapshot serialised by [`WindowSnapshot::to_json`].
    pub fn from_json(input: &str) -> Result<Self, String> {
        let doc = json::parse(input)?;
        match doc.get("schema").and_then(JsonValue::as_str) {
            Some(WINDOW_SCHEMA) => {}
            other => return Err(format!("unsupported window schema {other:?}")),
        }
        let span_s = doc
            .get("span_s")
            .and_then(JsonValue::as_f64)
            .ok_or("missing span_s")?;
        let mut stages = Vec::new();
        for v in doc
            .get("stages")
            .and_then(JsonValue::as_array)
            .ok_or("missing stages array")?
        {
            let name = v
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("stage missing name")?
                .to_string();
            let num = |key: &str| -> Result<f64, String> {
                v.get(key)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("stage {name} missing {key}"))
            };
            let mut counters = Vec::new();
            if let Some(JsonValue::Object(map)) = v.get("counters") {
                for (k, c) in map {
                    counters.push((
                        k.clone(),
                        c.as_u64().ok_or_else(|| format!("bad counter {k}"))?,
                    ));
                }
            }
            let mut gauges = Vec::new();
            if let Some(JsonValue::Object(map)) = v.get("gauges") {
                for (k, g) in map {
                    gauges.push((
                        k.clone(),
                        g.as_f64().ok_or_else(|| format!("bad gauge {k}"))?,
                    ));
                }
            }
            stages.push(WindowStageSnapshot {
                calls: v
                    .get("calls")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("stage {name} missing calls"))?,
                total_ms: num("total_ms")?,
                p50_ms: num("p50_ms")?,
                p95_ms: num("p95_ms")?,
                counters,
                gauges,
                name,
            });
        }
        Ok(WindowSnapshot { span_s, stages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(at: Instant, calls: u64, admitted: u64, depth: f64) -> Frame {
        let mut stages = BTreeMap::new();
        let mut hist = [0u64; BUCKETS];
        hist[10] = calls; // everything ~1 µs
        let mut counters = BTreeMap::new();
        counters.insert("samples_admitted", admitted);
        let mut gauges = BTreeMap::new();
        gauges.insert("queue_depth", depth);
        stages.insert(
            "serve",
            FrameStage {
                calls,
                total_ns: calls * 1024,
                hist,
                counters,
                gauges,
            },
        );
        Frame { at, stages }
    }

    #[test]
    fn deltas_subtract_the_oldest_retained_frame() {
        let t0 = Instant::now();
        // period 0 → every snapshot rolls; ring of 2 windows.
        let mut ws = WindowState::with_period(2, 0.0, t0);
        let snap = ws.snapshot(frame(t0, 10, 100, 3.0));
        // Against the empty creation baseline: full totals.
        let s = snap.stage("serve").unwrap();
        assert_eq!(s.calls, 10);
        assert_eq!(s.counters, vec![("samples_admitted".to_string(), 100)]);
        assert_eq!(s.gauges, vec![("queue_depth".to_string(), 3.0)]);

        let snap = ws.snapshot(frame(t0, 25, 260, 7.0));
        let s = snap.stage("serve").unwrap();
        // Baseline is still the empty creation frame (ring holds it +
        // the two rolled frames).
        assert_eq!(s.calls, 25);

        let snap = ws.snapshot(frame(t0, 40, 400, 1.0));
        let s = snap.stage("serve").unwrap();
        // Ring evicted the creation baseline: delta vs the 10-call frame.
        assert_eq!(s.calls, 30);
        assert_eq!(s.counters, vec![("samples_admitted".to_string(), 300)]);
        // Gauges stay last-value, not delta.
        assert_eq!(s.gauges, vec![("queue_depth".to_string(), 1.0)]);
        assert!(s.p50_ms > 0.0, "merged histogram has mass");
    }

    #[test]
    fn long_period_keeps_the_baseline_fixed() {
        let t0 = Instant::now();
        let mut ws = WindowState::with_period(4, 3600.0, t0);
        ws.snapshot(frame(t0, 5, 50, 1.0));
        let snap = ws.snapshot(frame(t0, 8, 80, 2.0));
        // Nothing rolled (period far away): still the creation baseline.
        assert_eq!(snap.stage("serve").unwrap().calls, 8);
    }

    #[test]
    fn window_json_round_trips_exactly() {
        let snapshot = WindowSnapshot {
            span_s: 7.25,
            stages: vec![WindowStageSnapshot {
                name: "serve".into(),
                calls: 41,
                total_ms: 3.5,
                p50_ms: 0.0015,
                p95_ms: 0.012,
                counters: vec![("samples_admitted".into(), 410)],
                gauges: vec![("queue_depth".into(), 6.0)],
            }],
        };
        let json = snapshot.to_json();
        let back = WindowSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snapshot);
        assert!(WindowSnapshot::from_json("{\"schema\":\"other/1\"}").is_err());
    }
}
