//! Structured observability for the RIM pipeline.
//!
//! The pipeline stages (paper §4.2–§4.5: movement detection,
//! pre-detection, alignment-matrix build, DP tracking, post-detection,
//! reckoning) are instrumented against the [`Probe`] trait defined here.
//! Callers choose at the call site what instrumentation costs:
//!
//! * [`NullProbe`] — the default. A zero-sized type whose hooks are empty
//!   inlineable bodies, so the instrumented pipeline monomorphises to the
//!   uninstrumented machine code. No timer reads, no allocation.
//! * [`Recorder`] — aggregates per-stage call counts, wall-time totals,
//!   log-scale latency histograms (for p50/p95), named counters, gauges,
//!   and bounded value distributions. A finished run snapshots into a
//!   [`RunReport`] that renders as a human text table
//!   ([`RunReport::render`]) or machine-readable JSON
//!   ([`RunReport::to_json`] / [`RunReport::from_json`]).
//!
//! The crate is dependency-light on purpose: timing uses
//! `std::time::Instant` (monotonic), aggregation uses `std::sync::Mutex`
//! (uncontended in the single-threaded pipeline; the lock exists so a
//! `Recorder` can be shared across threads), and JSON is a small
//! self-contained writer/parser in [`json`].

//! Since v2 the crate also carries the serve path's live-telemetry
//! layer: per-request traces ([`Tracer`], [`TraceRecord`], span taxonomy
//! in [`SpanKind`]) whose span durations feed the
//! [`stage::LATENCY_ATTRIBUTION`] distributions, and sliding-window
//! snapshots ([`Recorder::window_snapshot`] → [`WindowSnapshot`]) for
//! reading metrics mid-run without stopping it.

mod json;
mod probe;
mod recorder;
mod report;
mod trace;
mod window;

pub use json::JsonValue;
pub use probe::{NullProbe, Probe, Span};
pub use recorder::Recorder;
pub use report::{DistributionReport, RunReport, StageReport};
pub use trace::{
    ActiveTrace, SpanId, SpanKind, TraceId, TraceRecord, TraceSpan, Tracer, TRACE_RING_CAP,
};
pub use window::{WindowSnapshot, WindowStageSnapshot, DEFAULT_WINDOWS, WINDOW_SCHEMA};

/// Canonical stage names, in pipeline order. Instrumentation sites use
/// these constants so reports, tests, and docs agree on spelling.
pub mod stage {
    /// §4.2 movement detection over TRRS self-similarity.
    pub const MOVEMENT_DETECTION: &str = "movement_detection";
    /// §4.5 pre-detection: prominence blocks gating segment analysis.
    pub const PRE_DETECTION: &str = "pre_detection";
    /// §4.3 alignment-matrix build (virtual-antenna TRRS averaging).
    pub const ALIGNMENT_BUILD: &str = "alignment_build";
    /// §4.4 dynamic-programming peak tracking across the matrix.
    pub const DP_TRACKING: &str = "dp_tracking";
    /// §4.5 post-detection: hysteresis on tracked-path quality.
    pub const POST_DETECTION: &str = "post_detection";
    /// §4.5 reckoning: speed/heading integration into displacement.
    pub const RECKONING: &str = "reckoning";

    /// Streaming front-end (ring buffer, incremental flushes, gap
    /// repair, degraded-mode watchdog). Not one of the six offline
    /// stages, so not part of [`PIPELINE`]. Its counters and gauges use
    /// the canonical names in [`super::stream_metric`].
    pub const STREAM: &str = "stream";
    /// The rim-par work-stealing pool (tiles, steals, per-worker busy
    /// time). Cross-cutting, so not part of [`PIPELINE`].
    pub const PARALLEL: &str = "parallel_pool";
    /// CSI acquisition (snapshots ingested/dropped, sanitize rejections).
    /// Upstream of the pipeline, so not part of [`PIPELINE`].
    pub const CSI_INGEST: &str = "csi_ingest";
    /// Multi-session serving front-end (admission, queueing, batch
    /// scheduling, eviction). Wraps the per-session streams, so not part
    /// of [`PIPELINE`]. Its counters and gauges use the canonical names
    /// in [`super::serve_metric`].
    pub const SERVE: &str = "serve";
    /// Incremental alignment engine (online cross-TRRS columns, cached
    /// column reuse at flush, provisional estimates). Runs inside the
    /// streaming front-end rather than as an offline stage, so not part
    /// of [`PIPELINE`]. Its counters and distributions use the canonical
    /// names in [`super::incremental_metric`].
    pub const INCREMENTAL: &str = "incremental";
    /// Per-request latency attribution: trace-span durations (µs)
    /// aggregated by span kind, so the serve tail decomposes into queue
    /// wait vs. batch scheduling vs. compute vs. wire. Fed by
    /// [`crate::Tracer::commit`]; distribution names come from
    /// [`super::attribution_metric`]. Synthetic (no code runs "inside"
    /// it), so not part of [`PIPELINE`].
    pub const LATENCY_ATTRIBUTION: &str = "latency_attribution";
    /// The readiness-driven serve I/O loop (poll wakeups, ready events,
    /// frame assembly, write backpressure). Sits between the sockets and
    /// [`SERVE`] admission, so not part of [`PIPELINE`]. Its counters use
    /// the canonical names in [`super::reactor_metric`].
    pub const REACTOR: &str = "reactor";
    /// RIM×IMU fusion engine (error-state Kalman filter, ZUPT detection,
    /// IMU coasting through CSI blackouts). Wraps the streaming front-end
    /// rather than running inside the offline pipeline, so not part of
    /// [`PIPELINE`]. Its counters and distributions use the canonical
    /// names in [`super::fusion_metric`].
    pub const FUSION: &str = "fusion";

    /// All six pipeline stages in execution order.
    pub const PIPELINE: [&str; 6] = [
        MOVEMENT_DETECTION,
        PRE_DETECTION,
        ALIGNMENT_BUILD,
        DP_TRACKING,
        POST_DETECTION,
        RECKONING,
    ];
}

/// Canonical counter / gauge names emitted by the streaming front-end
/// under [`stage::STREAM`]. Kept here (rather than in `rim-core`) so the
/// CLI, tests, and report tooling can reference them without depending
/// on the engine crate.
pub mod stream_metric {
    /// Counter: input gaps observed (each run of missing sequence
    /// numbers counts once, whether bridged or split).
    pub const GAPS: &str = "stream_gaps";
    /// Counter: samples synthesised by interpolation to bridge short
    /// gaps (`gap ≤ max_gap`).
    pub const INTERPOLATED: &str = "gap_samples_interpolated";
    /// Counter: duplicate deliveries dropped (sequence number already
    /// delivered).
    pub const DUPLICATES: &str = "duplicates_dropped";
    /// Counter: out-of-order deliveries that arrived too late to use.
    pub const REORDERED: &str = "reordered_dropped";
    /// Counter: samples dropped because no antenna data was present (or
    /// the stream had no history to repair a partial sample from).
    pub const INCOMPLETE: &str = "incomplete_dropped";
    /// Counter: segment splits forced by gaps longer than `max_gap`.
    pub const SPLITS: &str = "stream_splits";
    /// Counter: `StreamEvent::Degraded` transitions emitted.
    pub const DEGRADED_EVENTS: &str = "degraded_events";
    /// Counter: `StreamEvent::Recovered` transitions emitted.
    pub const RECOVERED_EVENTS: &str = "recovered_events";
    /// Gauge: cumulative wall-clock seconds of stream time spent in
    /// degraded mode.
    pub const DEGRADED_TIME_S: &str = "degraded_time_s";
    /// Gauge: fraction of the watchdog window that is interpolated.
    pub const INTERPOLATED_FRACTION: &str = "interpolated_fraction";
    /// Counter: ingested samples whose antennas disagreed on the TX
    /// count, forcing `trrs_avg`'s truncation to the common prefix.
    pub const TX_MISMATCH: &str = "tx_mismatch";
}

/// Canonical counter / gauge / distribution names emitted by the RIM×IMU
/// fusion engine under [`stage::FUSION`]. Kept here for the same reason
/// as [`stream_metric`]: the CLI, tests, and report tooling reference
/// them without depending on the fusion crate.
pub mod fusion_metric {
    /// Counter: IMU samples ingested by the fusion filter.
    pub const IMU_SAMPLES: &str = "imu_samples";
    /// Counter: IMU samples offered to a CSI-only stream and dropped
    /// (no fusion layer attached to consume them).
    pub const IMU_SAMPLES_DROPPED: &str = "imu_samples_dropped";
    /// Counter: zero-velocity pseudo-measurements applied.
    pub const ZUPT_COUNT: &str = "zupt_count";
    /// Counter: RIM distance/heading corrections applied.
    pub const RIM_UPDATES: &str = "rim_updates";
    /// Counter: RIM corrections dropped below the confidence floor.
    pub const LOW_CONFIDENCE_DROPPED: &str = "low_confidence_dropped";
    /// Gauge: cumulative stream microseconds spent coasting on the IMU
    /// (moving with no usable RIM anchor).
    pub const COAST_TIME_US: &str = "coast_time_us";
    /// Distribution: speed-innovation magnitude of accepted RIM distance
    /// corrections, metres.
    pub const SPEED_INNOVATION: &str = "speed_innovation_m";
    /// Distribution: heading-innovation magnitude of accepted heading
    /// corrections, radians.
    pub const HEADING_INNOVATION: &str = "heading_innovation_rad";
}

/// Canonical counter / distribution names emitted by the incremental
/// alignment engine under [`stage::INCREMENTAL`]. Kept here for the same
/// reason as [`stream_metric`]: the CLI, tests, and report tooling
/// reference them without depending on the engine crate.
pub mod incremental_metric {
    /// Counter: cross-TRRS column entries computed online (one per
    /// `trrs_norm` evaluation, appends and backfills alike).
    pub const COLUMNS_BUILT: &str = "columns_built";
    /// Counter: base-matrix columns and pre-detection probes served from
    /// the incremental cache at segment flush instead of being recomputed.
    pub const CACHE_HITS: &str = "cache_hits";
    /// Distribution: wall-clock microseconds spent ingesting one sample
    /// (gap repair, column build, provisional tracking included).
    pub const INGEST_LATENCY_US: &str = "ingest_latency_us";
    /// Counter: provisional estimates emitted while motion was open.
    pub const PROVISIONALS: &str = "provisionals";
}

/// Canonical counter / gauge / distribution names emitted by the
/// multi-session serving front-end under [`stage::SERVE`]. Kept here for
/// the same reason as [`stream_metric`]: the CLI, tests, and report
/// tooling reference them without depending on `rim-serve`.
pub mod serve_metric {
    /// Counter: samples admitted into a per-session ingress queue.
    pub const ADMITTED: &str = "samples_admitted";
    /// Counter: samples throttled because the session's queue was full.
    pub const THROTTLED: &str = "samples_throttled";
    /// Counter: samples rejected outright (session table full or
    /// manager shut down).
    pub const REJECTED: &str = "samples_rejected";
    /// Counter: sessions evicted by the idle policy.
    pub const SESSIONS_EVICTED: &str = "sessions_evicted";
    /// Counter: batch scheduler ticks that moved at least one sample.
    pub const BATCHES: &str = "batches_scheduled";
    /// Gauge: sessions currently resident.
    pub const SESSIONS_ACTIVE: &str = "sessions_active";
    /// Gauge: total queued samples across sessions at the last tick.
    pub const QUEUE_DEPTH: &str = "queue_depth";
    /// Distribution: microseconds from a sample's admission to the batch
    /// tick that analysed it (end-to-end ingest→estimate latency).
    /// The millisecond alias (`ingest_to_estimate_ms`) was removed in the
    /// v2 report schema; this is the only spelling.
    pub const INGEST_TO_ESTIMATE_US: &str = "ingest_to_estimate_us";
    /// Counter: samples throttled because the admission predictor
    /// expected the queue wait to blow the session's latency budget
    /// (`ServeConfig::latency_budget_us`). A subset of [`THROTTLED`]
    /// causes; tracked separately so capacity tuning can distinguish
    /// "queue physically full" from "deadline would be missed".
    pub const THROTTLED_PREDICTED: &str = "samples_throttled_predicted";
}

/// Canonical counter names emitted by the readiness-driven serve I/O
/// loop under [`stage::REACTOR`]. Kept here for the same reason as
/// [`stream_metric`]: the CLI, tests, and report tooling reference them
/// without depending on `rim-serve`.
pub mod reactor_metric {
    /// Counter: `poll(2)` wakeups (one per loop iteration that returned
    /// at least one ready descriptor or picked up new connections).
    pub const WAKEUPS: &str = "reactor_wakeups";
    /// Counter: readiness events delivered across all wakeups (a single
    /// wakeup may report many ready sockets).
    pub const READY_EVENTS: &str = "ready_events";
    /// Counter: complete request frames assembled from nonblocking reads.
    pub const FRAMES_IN: &str = "frames_in";
    /// Counter: response frames fully written to a socket.
    pub const FRAMES_OUT: &str = "frames_out";
    /// Counter: writes that hit `WouldBlock` and parked the remainder in
    /// the per-connection backpressure queue.
    pub const WRITE_STALLS: &str = "write_stalls";
    /// Counter: requests answered `Rejected` (or suppressed) because the
    /// connection's write queue exceeded its high watermark.
    pub const BACKPRESSURE_REJECTED: &str = "backpressure_rejected";
    /// Counter: connections accepted.
    pub const CONNS_OPENED: &str = "conns_opened";
    /// Counter: connections closed (clean EOF, protocol error, or
    /// shutdown).
    pub const CONNS_CLOSED: &str = "conns_closed";
}

/// Canonical distribution names under [`stage::LATENCY_ATTRIBUTION`]:
/// per-request trace-span durations in microseconds, one distribution
/// per [`SpanKind`] (see [`SpanKind::attribution_metric`]) plus the
/// end-to-end total.
pub mod attribution_metric {
    /// Admission control ([`crate::SpanKind::Admission`]).
    pub const ADMISSION_US: &str = "admission_us";
    /// Ingress-queue wait ([`crate::SpanKind::QueueWait`]).
    pub const QUEUE_WAIT_US: &str = "queue_wait_us";
    /// Scheduler fan-out ([`crate::SpanKind::BatchSchedule`]).
    pub const BATCH_SCHEDULE_US: &str = "batch_schedule_us";
    /// Stream ingest compute ([`crate::SpanKind::IncrementalIngest`]).
    pub const COMPUTE_US: &str = "compute_us";
    /// Segment flush within an ingest ([`crate::SpanKind::Flush`]).
    pub const FLUSH_US: &str = "flush_us";
    /// Response encode + socket write ([`crate::SpanKind::EventWireOut`]).
    pub const WIRE_US: &str = "wire_us";
    /// Whole-trace extent (admission through the last span).
    pub const TOTAL_US: &str = "total_us";
}

#[cfg(test)]
mod stage_tests {
    /// The canonical metric names are part of the report format; keep
    /// them unique so counters can't shadow each other.
    #[test]
    fn stream_metric_names_are_unique() {
        let names = [
            super::stream_metric::GAPS,
            super::stream_metric::INTERPOLATED,
            super::stream_metric::DUPLICATES,
            super::stream_metric::REORDERED,
            super::stream_metric::INCOMPLETE,
            super::stream_metric::SPLITS,
            super::stream_metric::DEGRADED_EVENTS,
            super::stream_metric::RECOVERED_EVENTS,
            super::stream_metric::DEGRADED_TIME_S,
            super::stream_metric::INTERPOLATED_FRACTION,
            super::stream_metric::TX_MISMATCH,
        ];
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn serve_metric_names_are_unique() {
        let names = [
            super::serve_metric::ADMITTED,
            super::serve_metric::THROTTLED,
            super::serve_metric::REJECTED,
            super::serve_metric::SESSIONS_EVICTED,
            super::serve_metric::BATCHES,
            super::serve_metric::SESSIONS_ACTIVE,
            super::serve_metric::QUEUE_DEPTH,
            super::serve_metric::INGEST_TO_ESTIMATE_US,
            super::serve_metric::THROTTLED_PREDICTED,
        ];
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn reactor_metric_names_are_unique() {
        let names = [
            super::reactor_metric::WAKEUPS,
            super::reactor_metric::READY_EVENTS,
            super::reactor_metric::FRAMES_IN,
            super::reactor_metric::FRAMES_OUT,
            super::reactor_metric::WRITE_STALLS,
            super::reactor_metric::BACKPRESSURE_REJECTED,
            super::reactor_metric::CONNS_OPENED,
            super::reactor_metric::CONNS_CLOSED,
        ];
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn attribution_metric_names_are_unique_and_cover_every_span_kind() {
        let names = [
            super::attribution_metric::ADMISSION_US,
            super::attribution_metric::QUEUE_WAIT_US,
            super::attribution_metric::BATCH_SCHEDULE_US,
            super::attribution_metric::COMPUTE_US,
            super::attribution_metric::FLUSH_US,
            super::attribution_metric::WIRE_US,
            super::attribution_metric::TOTAL_US,
        ];
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        // Every span kind maps into the list above.
        for kind in super::SpanKind::ALL {
            assert!(names.contains(&kind.attribution_metric()));
        }
    }

    #[test]
    fn incremental_metric_names_are_unique() {
        let names = [
            super::incremental_metric::COLUMNS_BUILT,
            super::incremental_metric::CACHE_HITS,
            super::incremental_metric::INGEST_LATENCY_US,
            super::incremental_metric::PROVISIONALS,
        ];
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
