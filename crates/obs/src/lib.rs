//! Structured observability for the RIM pipeline.
//!
//! The pipeline stages (paper §4.2–§4.5: movement detection,
//! pre-detection, alignment-matrix build, DP tracking, post-detection,
//! reckoning) are instrumented against the [`Probe`] trait defined here.
//! Callers choose at the call site what instrumentation costs:
//!
//! * [`NullProbe`] — the default. A zero-sized type whose hooks are empty
//!   inlineable bodies, so the instrumented pipeline monomorphises to the
//!   uninstrumented machine code. No timer reads, no allocation.
//! * [`Recorder`] — aggregates per-stage call counts, wall-time totals,
//!   log-scale latency histograms (for p50/p95), named counters, gauges,
//!   and bounded value distributions. A finished run snapshots into a
//!   [`RunReport`] that renders as a human text table
//!   ([`RunReport::render`]) or machine-readable JSON
//!   ([`RunReport::to_json`] / [`RunReport::from_json`]).
//!
//! The crate is dependency-light on purpose: timing uses
//! `std::time::Instant` (monotonic), aggregation uses `std::sync::Mutex`
//! (uncontended in the single-threaded pipeline; the lock exists so a
//! `Recorder` can be shared across threads), and JSON is a small
//! self-contained writer/parser in [`json`].

mod json;
mod probe;
mod recorder;
mod report;

pub use json::JsonValue;
pub use probe::{NullProbe, Probe, Span};
pub use recorder::Recorder;
pub use report::{DistributionReport, RunReport, StageReport};

/// Canonical stage names, in pipeline order. Instrumentation sites use
/// these constants so reports, tests, and docs agree on spelling.
pub mod stage {
    /// §4.2 movement detection over TRRS self-similarity.
    pub const MOVEMENT_DETECTION: &str = "movement_detection";
    /// §4.5 pre-detection: prominence blocks gating segment analysis.
    pub const PRE_DETECTION: &str = "pre_detection";
    /// §4.3 alignment-matrix build (virtual-antenna TRRS averaging).
    pub const ALIGNMENT_BUILD: &str = "alignment_build";
    /// §4.4 dynamic-programming peak tracking across the matrix.
    pub const DP_TRACKING: &str = "dp_tracking";
    /// §4.5 post-detection: hysteresis on tracked-path quality.
    pub const POST_DETECTION: &str = "post_detection";
    /// §4.5 reckoning: speed/heading integration into displacement.
    pub const RECKONING: &str = "reckoning";

    /// Streaming front-end (ring buffer, incremental flushes). Not one of
    /// the six offline stages, so not part of [`PIPELINE`].
    pub const STREAM: &str = "stream";
    /// The rim-par work-stealing pool (tiles, steals, per-worker busy
    /// time). Cross-cutting, so not part of [`PIPELINE`].
    pub const PARALLEL: &str = "parallel_pool";
    /// CSI acquisition (snapshots ingested/dropped, sanitize rejections).
    /// Upstream of the pipeline, so not part of [`PIPELINE`].
    pub const CSI_INGEST: &str = "csi_ingest";

    /// All six pipeline stages in execution order.
    pub const PIPELINE: [&str; 6] = [
        MOVEMENT_DETECTION,
        PRE_DETECTION,
        ALIGNMENT_BUILD,
        DP_TRACKING,
        POST_DETECTION,
        RECKONING,
    ];
}
