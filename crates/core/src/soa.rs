//! Structure-of-arrays CSI storage for the TRRS kernels.
//!
//! [`crate::trrs::NormSnapshot`] is an array-of-structures: one heap
//! vector of `Complex64` per TX chain per snapshot. The hot loops compare
//! one snapshot against a *run* of consecutive snapshots (the lag window
//! of a cross-TRRS row, the backfill span of the incremental cache), and
//! in AoS form each comparison walks freshly scattered allocations.
//!
//! [`SoaSeries`] transposes a snapshot series into subcarrier-major real
//! planes:
//!
//! ```text
//! row (tx, k)   →   re[(tx·n_sub + k)·cap + t],  t ∈ start..start+len
//! ```
//!
//! so the `v` operands of one SIMD row kernel — the same `(tx, k)`
//! element of `v` *consecutive snapshots* — are `v` contiguous reals, one
//! aligned vector load. The time-fixed side of a comparison is gathered
//! once per row into a contiguous scratch (O(S·N), amortised over the
//! O(W·S·N) row) and broadcast per element.
//!
//! The container doubles as the incremental engine's ring mirror:
//! `push`/`pop_front` keep a sliding window in lockstep with the stream's
//! snapshot ring, compacting or growing amortised-O(1).
//!
//! Series whose snapshots disagree on shape (TX count or subcarrier
//! count) latch `ragged` and the callers fall back to the scalar AoS
//! path; shape handling stays in one place instead of per element.

use crate::trrs::NormSnapshot;
use rim_simd::{Fixed, Lanes};

/// Element type of an SoA series: `f64` (reference) or `f32` (fast).
/// Bridges to the matching `rim_simd` row kernel, widening results to the
/// `f64` the alignment matrices store.
pub(crate) trait SoaScalar:
    Copy + Default + Send + Sync + std::fmt::Debug + 'static
{
    /// Converts from the `f64` the snapshots store.
    fn from_f64(v: f64) -> Self;
    /// Runs the row kernel: `out[i]` is the TRRS of `a` against lane
    /// position `b.off + i`, widened to `f64`.
    fn trrs_lanes(a: Fixed<'_, Self>, b: Lanes<'_, Self>, dims: (usize, usize), out: &mut [f64]);
}

impl SoaScalar for f64 {
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline(always)]
    fn trrs_lanes(a: Fixed<'_, f64>, b: Lanes<'_, f64>, dims: (usize, usize), out: &mut [f64]) {
        rim_simd::trrs_row_f64(a, b, dims, out);
    }
}

impl SoaScalar for f32 {
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline(always)]
    fn trrs_lanes(a: Fixed<'_, f32>, b: Lanes<'_, f32>, dims: (usize, usize), out: &mut [f64]) {
        // Chunk through a stack buffer (multiple of the f32 lane width)
        // so the hot path never allocates for the widening copy. 64 lanes
        // covers a full ±W window row for W ≤ 31 in one kernel call.
        let mut tmp = [0.0f32; 64];
        let mut done = 0usize;
        while done < out.len() {
            let n = (out.len() - done).min(tmp.len());
            let b_chunk = Lanes {
                re: b.re,
                im: b.im,
                stride: b.stride,
                off: b.off + done,
            };
            rim_simd::trrs_row_f32(a, b_chunk, dims, &mut tmp[..n]);
            for (o, &v) in out[done..done + n].iter_mut().zip(&tmp[..n]) {
                *o = v as f64;
            }
            done += n;
        }
    }
}

/// A snapshot series transposed to subcarrier-major real planes (see the
/// module docs), with `push`/`pop_front` for ring mirroring.
#[derive(Debug, Clone)]
pub(crate) struct SoaSeries<T> {
    /// `(n_tx, n_sub)` of every stored snapshot; `None` until the first
    /// one arrives.
    shape: Option<(usize, usize)>,
    /// Some snapshot disagreed with `shape` (or the shape is degenerate):
    /// the data planes are unusable, callers take the scalar AoS path.
    ragged: bool,
    /// Absolute index of element 0 — the ring base for mirrors, the pack
    /// range start for batch packs.
    offset: usize,
    /// Row capacity in elements (the lane stride).
    cap: usize,
    /// First valid position within each row.
    start: usize,
    /// Valid positions per row.
    len: usize,
    re: Vec<T>,
    im: Vec<T>,
}

impl<T: SoaScalar> SoaSeries<T> {
    /// An empty series whose element 0 will be absolute index `offset`.
    pub(crate) fn empty(offset: usize) -> Self {
        Self {
            shape: None,
            ragged: false,
            offset,
            cap: 0,
            start: 0,
            len: 0,
            re: Vec::new(),
            im: Vec::new(),
        }
    }

    /// Packs `series[r0..r1]` with exact capacity; element 0 is absolute
    /// index `r0`.
    ///
    /// The fill is a blocked transpose: a naive per-snapshot scatter
    /// touches a distinct cache line per subcarrier row (the write stride
    /// is the full row capacity), which at typical shapes costs more than
    /// the kernel work it feeds. Time-blocks small enough that the
    /// block's snapshots stay L1-resident let every row sweep them with
    /// sequential writes instead. Values are bit-identical to the
    /// [`Self::push`] path — both store `T::from_f64` of the same field.
    pub(crate) fn pack_range(series: &[NormSnapshot], r0: usize, r1: usize) -> Self {
        let mut s = Self::empty(r0);
        s.cap = r1 - r0;
        let slice = &series[r0..r1];
        let Some(first) = slice.first() else {
            return s;
        };
        let n_tx = first.per_tx.len();
        let n_sub = first.per_tx.first().map_or(0, Vec::len);
        s.shape = Some((n_tx, n_sub));
        if n_tx == 0
            || n_sub == 0
            || slice
                .iter()
                .any(|sn| sn.per_tx.len() != n_tx || sn.per_tx.iter().any(|v| v.len() != n_sub))
        {
            s.ragged = true;
            s.len = slice.len();
            return s;
        }
        let rows = n_tx * n_sub;
        s.re = vec![T::default(); rows * s.cap];
        s.im = vec![T::default(); rows * s.cap];
        const BLOCK: usize = 16;
        for t0 in (0..slice.len()).step_by(BLOCK) {
            let t1 = (t0 + BLOCK).min(slice.len());
            for (tx, k2) in (0..n_tx).flat_map(|tx| (0..n_sub).map(move |k| (tx, k))) {
                let base = (tx * n_sub + k2) * s.cap;
                for (t, snap) in slice.iter().enumerate().take(t1).skip(t0) {
                    let z = snap.per_tx[tx][k2];
                    s.re[base + t] = T::from_f64(z.re);
                    s.im[base + t] = T::from_f64(z.im);
                }
            }
        }
        s.len = slice.len();
        s
    }

    /// Number of stored snapshots.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Absolute index of element 0.
    pub(crate) fn offset(&self) -> usize {
        self.offset
    }

    /// True when the planes are unusable (shape disagreement or a
    /// degenerate shape) and callers must fall back to the AoS path.
    pub(crate) fn is_ragged(&self) -> bool {
        self.ragged
    }

    /// `(n_tx, n_sub)`, once known.
    pub(crate) fn shape(&self) -> Option<(usize, usize)> {
        self.shape
    }

    fn rows(&self) -> usize {
        self.shape.map_or(0, |(tx, sub)| tx * sub)
    }

    /// Appends one snapshot (the mirror call for every ring append).
    pub(crate) fn push(&mut self, snap: &NormSnapshot) {
        let (n_tx, n_sub) = *self.shape.get_or_insert_with(|| {
            let n_tx = snap.per_tx.len();
            let n_sub = snap.per_tx.first().map_or(0, Vec::len);
            (n_tx, n_sub)
        });
        if !self.ragged
            && (n_tx == 0
                || n_sub == 0
                || snap.per_tx.len() != n_tx
                || snap.per_tx.iter().any(|v| v.len() != n_sub))
        {
            self.ragged = true;
        }
        if self.ragged {
            // Keep the index bookkeeping in lockstep; the planes are dead.
            self.len += 1;
            return;
        }
        if self.start + self.len == self.cap {
            self.make_room();
        }
        // A pre-sized pack (`pack_range`) sets `cap` before the first
        // push; allocate the planes once the shape is known.
        let plane = self.rows() * self.cap;
        if self.re.len() < plane {
            self.re.resize(plane, T::default());
            self.im.resize(plane, T::default());
        }
        let pos = self.start + self.len;
        for (tx, cfr) in snap.per_tx.iter().enumerate() {
            for (k, z) in cfr.iter().enumerate() {
                let row = tx * n_sub + k;
                self.re[row * self.cap + pos] = T::from_f64(z.re);
                self.im[row * self.cap + pos] = T::from_f64(z.im);
            }
        }
        self.len += 1;
    }

    /// Makes space for one more position: compacts when at least half the
    /// row is dead prefix, doubles the capacity otherwise — amortised
    /// O(1) per push either way.
    fn make_room(&mut self) {
        let rows = self.rows();
        if self.start >= (self.cap / 2).max(1) {
            for r in 0..rows {
                let base = r * self.cap;
                self.re
                    .copy_within(base + self.start..base + self.start + self.len, base);
                self.im
                    .copy_within(base + self.start..base + self.start + self.len, base);
            }
            self.start = 0;
            return;
        }
        let new_cap = (self.cap * 2).max(16);
        let mut re = vec![T::default(); rows * new_cap];
        let mut im = vec![T::default(); rows * new_cap];
        for r in 0..rows {
            let src = r * self.cap + self.start;
            re[r * new_cap..r * new_cap + self.len].copy_from_slice(&self.re[src..src + self.len]);
            im[r * new_cap..r * new_cap + self.len].copy_from_slice(&self.im[src..src + self.len]);
        }
        self.re = re;
        self.im = im;
        self.cap = new_cap;
        self.start = 0;
    }

    /// Drops the oldest snapshot (the mirror call for a ring trim). On an
    /// empty series only the offset advances, staying in lockstep with a
    /// ring whose trim overshoots its content.
    pub(crate) fn pop_front(&mut self) {
        self.offset += 1;
        if self.len == 0 {
            return;
        }
        self.start += 1;
        self.len -= 1;
        if self.len == 0 {
            self.start = 0;
        }
    }

    /// Discards everything including the shape — a new stream epoch after
    /// a split; element 0 will be absolute index `offset`.
    pub(crate) fn reset(&mut self, offset: usize) {
        self.shape = None;
        self.ragged = false;
        self.offset = offset;
        self.start = 0;
        self.len = 0;
    }

    /// Lane view with lane 0 at absolute index `lo_abs`.
    fn lanes_abs(&self, lo_abs: usize) -> Lanes<'_, T> {
        Lanes {
            re: &self.re,
            im: &self.im,
            stride: self.cap,
            off: self.start + (lo_abs - self.offset),
        }
    }
}

/// The cross-TRRS row kernel for one series pair, with everything the
/// historical per-entry loop recomputed hoisted to construction time: the
/// common TX count, the shared subcarrier count, and — the fix this PR
/// pins with a regression test — the `src_len` masking bound, which used
/// to be re-derived per call (and silently wrong for asymmetric series,
/// hence the equal-length assert it replaces).
#[derive(Debug)]
pub(crate) struct PairKernel<'s, T: SoaScalar> {
    a: &'s SoaSeries<T>,
    b: &'s SoaSeries<T>,
    window: usize,
    /// Absolute length of the source series `b` — lag entries whose
    /// source index falls at or beyond it are masked to 0.
    src_len: usize,
    /// `(min(a.n_tx, b.n_tx), n_sub)`.
    dims: (usize, usize),
    scratch_re: Vec<T>,
    scratch_im: Vec<T>,
    tmp: Vec<f64>,
}

impl<'s, T: SoaScalar> PairKernel<'s, T> {
    /// Builds the kernel, or `None` when the pair cannot take the SoA
    /// path (ragged series, empty series, or disagreeing subcarrier
    /// counts — the scalar AoS fallback handles those shapes).
    pub(crate) fn new(
        a: &'s SoaSeries<T>,
        b: &'s SoaSeries<T>,
        window: usize,
        src_len: usize,
    ) -> Option<Self> {
        if a.is_ragged() || b.is_ragged() {
            return None;
        }
        let (a_tx, a_sub) = a.shape()?;
        let (b_tx, b_sub) = b.shape()?;
        if a_sub != b_sub || a_sub == 0 {
            return None;
        }
        let n_tx = a_tx.min(b_tx);
        if n_tx == 0 {
            return None;
        }
        Some(Self {
            a,
            b,
            window,
            src_len,
            dims: (n_tx, a_sub),
            scratch_re: Vec::new(),
            scratch_im: Vec::new(),
            tmp: vec![0.0; 2 * window + 1],
        })
    }

    /// The masked source range of column `t_abs`: absolute source indices
    /// within the lag window that exist both in the series bounds and in
    /// the packed/mirrored span of `b`.
    fn src_range(&self, t_abs: usize) -> Option<(usize, usize)> {
        let lo = t_abs.saturating_sub(self.window).max(self.b.offset());
        let hi = (t_abs + self.window).min(
            self.src_len
                .min(self.b.offset() + self.b.len())
                .checked_sub(1)?,
        );
        (lo <= hi).then_some((lo, hi))
    }

    /// Copies the fixed-side snapshot into the contiguous scratch planes.
    /// Reading the AoS snapshot (one sequential sweep) instead of a
    /// time-column of the SoA planes (one strided read per subcarrier row)
    /// is the difference between an L1-friendly gather and a cache-miss
    /// per element; the values are bit-identical because the planes store
    /// exactly `T::from_f64` of the same snapshot.
    fn gather_snapshot(&mut self, snap: &NormSnapshot) {
        self.scratch_re.clear();
        self.scratch_im.clear();
        for cfr in snap.per_tx.iter().take(self.dims.0) {
            debug_assert_eq!(
                cfr.len(),
                self.dims.1,
                "snapshot disagrees with the packed shape"
            );
            for z in cfr {
                self.scratch_re.push(T::from_f64(z.re));
                self.scratch_im.push(T::from_f64(z.im));
            }
        }
    }

    /// One cross-TRRS row: `row[k]` is the TRRS of `a[t_abs]` against
    /// `b[t_abs − (k − W)]`, 0 where the source is masked. `snap` must be
    /// the series-`a` snapshot at `t_abs` (the caller always has it in AoS
    /// form, which gathers far faster than a strided SoA column). Returns
    /// the number of entries computed.
    pub(crate) fn row_into(&mut self, t_abs: usize, snap: &NormSnapshot, row: &mut [f64]) -> usize {
        debug_assert_eq!(row.len(), 2 * self.window + 1);
        row.fill(0.0);
        let Some((lo, hi)) = self.src_range(t_abs) else {
            return 0;
        };
        let n = hi - lo + 1;
        self.gather_snapshot(snap);
        let fixed = Fixed {
            re: &self.scratch_re,
            im: &self.scratch_im,
        };
        T::trrs_lanes(fixed, self.b.lanes_abs(lo), self.dims, &mut self.tmp[..n]);
        // Lane i holds source lo + i; its lag index is t + W − src.
        for (i, &v) in self.tmp[..n].iter().enumerate() {
            row[t_abs + self.window - (lo + i)] = v;
        }
        n
    }

    /// The backfill lanes of the incremental cache: `out[i]` is the TRRS
    /// of `a[lo_abs + i]` against the fixed `snap_b` (the series-`b`
    /// snapshot the roles pivot on). The roles are swapped relative to
    /// [`Self::row_into`] — the kernel conjugates the fixed side — which
    /// is bit-identical to conjugating the varying side: the real part of
    /// the inner product is unchanged term by term and the imaginary part
    /// is exactly negated, so `hypot` (and the f32 path's `re² + im²`)
    /// sees the same magnitude bits.
    pub(crate) fn lanes_fixed_b(&mut self, snap_b: &NormSnapshot, lo_abs: usize, out: &mut [f64]) {
        self.gather_snapshot(snap_b);
        let fixed = Fixed {
            re: &self.scratch_re,
            im: &self.scratch_im,
        };
        T::trrs_lanes(fixed, self.a.lanes_abs(lo_abs), self.dims, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trrs::{trrs_norm, trrs_norm_f32};
    use rim_csi::frame::CsiSnapshot;
    use rim_dsp::complex::Complex64;

    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn snapshot(tag: u64, n_tx: usize, n_sub: usize) -> NormSnapshot {
        NormSnapshot::from_snapshot(&CsiSnapshot {
            per_tx: (0..n_tx)
                .map(|tx| {
                    (0..n_sub)
                        .map(|k| {
                            let x = (mix(tag ^ ((tx as u64) << 32) ^ (k as u64 * 0x9E3779B9)) >> 11)
                                as f64
                                / (1u64 << 53) as f64;
                            Complex64::from_polar(0.5 + x, x * 6.0)
                        })
                        .collect()
                })
                .collect(),
        })
    }

    fn series(seed: u64, len: usize, n_tx: usize, n_sub: usize) -> Vec<NormSnapshot> {
        (0..len as u64)
            .map(|t| snapshot(seed.wrapping_mul(1000) + t, n_tx, n_sub))
            .collect()
    }

    #[test]
    fn f64_rows_match_trrs_norm_bitwise() {
        let a = series(1, 30, 2, 13);
        let b = series(2, 30, 2, 13);
        let w = 6;
        let sa = SoaSeries::<f64>::pack_range(&a, 0, a.len());
        let sb = SoaSeries::<f64>::pack_range(&b, 0, b.len());
        let mut kern = PairKernel::new(&sa, &sb, w, b.len()).unwrap();
        let mut row = vec![0.0; 2 * w + 1];
        for (t, snap) in a.iter().enumerate() {
            kern.row_into(t, snap, &mut row);
            for (k, &got) in row.iter().enumerate() {
                let src = t as isize - (k as isize - w as isize);
                let want = if src < 0 || src as usize >= b.len() {
                    0.0
                } else {
                    trrs_norm(&a[t], &b[src as usize])
                };
                assert_eq!(got.to_bits(), want.to_bits(), "t={t} k={k}");
            }
        }
    }

    #[test]
    fn f32_rows_match_aos_f32_fallback_bitwise() {
        let a = series(3, 24, 1, 56);
        let b = series(4, 24, 1, 56);
        let w = 5;
        let sa = SoaSeries::<f32>::pack_range(&a, 0, a.len());
        let sb = SoaSeries::<f32>::pack_range(&b, 0, b.len());
        let mut kern = PairKernel::new(&sa, &sb, w, b.len()).unwrap();
        let mut row = vec![0.0; 2 * w + 1];
        for (t, snap) in a.iter().enumerate() {
            kern.row_into(t, snap, &mut row);
            for (k, &got) in row.iter().enumerate() {
                let src = t as isize - (k as isize - w as isize);
                let want = if src < 0 || src as usize >= b.len() {
                    0.0
                } else {
                    trrs_norm_f32(&a[t], &b[src as usize])
                };
                assert_eq!(got.to_bits(), want.to_bits(), "t={t} k={k}");
                if want > 0.0 {
                    let reference = trrs_norm(&a[t], &b[src as usize]);
                    assert!((got - reference).abs() < 1e-4, "f32 drift at t={t} k={k}");
                }
            }
        }
    }

    #[test]
    fn swapped_roles_are_bitwise_symmetric() {
        // The backfill kernel conjugates the other operand; §docs argue
        // the magnitude bits cannot change. Pin it.
        let a = series(5, 20, 2, 17);
        let b = series(6, 20, 2, 17);
        let sa = SoaSeries::<f64>::pack_range(&a, 0, a.len());
        let sb = SoaSeries::<f64>::pack_range(&b, 0, b.len());
        let mut kern = PairKernel::new(&sa, &sb, 4, b.len()).unwrap();
        let mut out = vec![0.0; 12];
        kern.lanes_fixed_b(&b[9], 3, &mut out);
        for (i, &got) in out.iter().enumerate() {
            let want = trrs_norm(&a[3 + i], &b[9]);
            assert_eq!(got.to_bits(), want.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn ring_mirror_tracks_push_pop_and_reset() {
        let s = series(7, 40, 1, 9);
        let mut ring = SoaSeries::<f64>::empty(0);
        let mut popped = 0usize;
        for (t, snap) in s.iter().enumerate() {
            ring.push(snap);
            if t % 3 == 2 {
                ring.pop_front();
                popped += 1;
            }
        }
        assert_eq!(ring.len(), s.len() - popped);
        assert_eq!(ring.offset(), popped);
        // Every retained snapshot must read back exactly.
        let full = SoaSeries::<f64>::pack_range(&s, 0, s.len());
        let mut ka = PairKernel::new(&ring, &ring, 2, s.len()).unwrap();
        let mut kb = PairKernel::new(&full, &full, 2, s.len()).unwrap();
        let mut ra = vec![0.0; 5];
        let mut rb = vec![0.0; 5];
        for (t, snap) in s.iter().enumerate().skip(popped) {
            ka.row_into(t, snap, &mut ra);
            kb.row_into(t, snap, &mut rb);
            for (x, y) in ra.iter().zip(&rb) {
                // The mirror can only mask *more* (older sources dropped).
                assert!(x.to_bits() == y.to_bits() || *x == 0.0, "t={t}");
            }
        }
        ring.reset(100);
        assert_eq!(ring.len(), 0);
        assert!(ring.shape().is_none());
        ring.push(&snapshot(999, 3, 4));
        assert_eq!(ring.shape(), Some((3, 4)));
        assert_eq!(ring.offset(), 100);
    }

    #[test]
    fn ragged_series_refuse_the_kernel() {
        let mut s = series(8, 6, 2, 8);
        s.push(snapshot(9, 1, 8)); // TX count change → ragged
        let soa = SoaSeries::<f64>::pack_range(&s, 0, s.len());
        assert!(soa.is_ragged());
        let other = SoaSeries::<f64>::pack_range(&s, 0, 6);
        assert!(PairKernel::new(&soa, &other, 3, 6).is_none());
        // Disagreeing subcarrier counts refuse too.
        let narrow = series(10, 6, 2, 4);
        let sn = SoaSeries::<f64>::pack_range(&narrow, 0, narrow.len());
        assert!(PairKernel::new(&sn, &other, 3, 6).is_none());
        // Mismatched TX counts truncate (min) rather than refuse.
        let wide = series(11, 6, 3, 8);
        let sw = SoaSeries::<f64>::pack_range(&wide, 0, wide.len());
        let mut kern = PairKernel::new(&sw, &other, 3, 6).unwrap();
        let mut row = vec![0.0; 7];
        kern.row_into(2, &wide[2], &mut row);
        let want = trrs_norm(&wide[2], &s[2]);
        assert_eq!(row[3].to_bits(), want.to_bits());
    }
}
