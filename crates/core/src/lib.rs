//! # rim-core
//!
//! The RIM algorithms — the paper's primary contribution:
//!
//! * [`trrs`] — Time-Reversal Resonating Strength (Eqns. 1–4), with
//!   TX-antenna and virtual-massive-antenna averaging;
//! * [`alignment`] — alignment/TRRS matrices (Eqn. 5) computed with a
//!   box-filter identity that avoids the naive `O(T·W·V·S·N)` cost;
//! * [`movement`] — self-TRRS movement detection (§4.1);
//! * [`tracking_dp`] — dynamic-programming peak tracking (§4.2,
//!   Eqns. 6–8) in `O(T·W)` via a distance transform;
//! * [`reckoning`] — speed / heading / rotation math (§4.4) and the
//!   deviated-retracing error model (§3.2);
//! * [`pipeline`] — the [`pipeline::Rim`] engine tying it all together,
//!   from dense CSI to a [`pipeline::MotionEstimate`];
//! * [`stream`] — the push-based, bounded-memory real-time variant
//!   (the paper's C++ online system);
//! * [`incremental`] — the online column cache + provisional tracker
//!   that spreads segment analysis across ingest and emits mid-motion
//!   [`StreamEvent::Provisional`] estimates;
//! * [`wiball`] — the WiBall-style single-antenna speed estimator the
//!   paper discusses as a complement (§7).
//!
//! ## Entry points and errors
//!
//! Construct a [`Rim`] with [`Rim::new`] (which validates the
//! [`RimConfig`] and geometry) and analyze through the session builder:
//!
//! ```text
//! let rim = Rim::new(geometry, config)?;
//! let estimate = rim.session().probe(&recorder).analyze(&csi)?;
//! let batch    = rim.session().analyze_batch(&[&csi_a, &csi_b])?;
//! ```
//!
//! Fallible operations return [`Error`], whose messages name the
//! offending parameter and the fix — user input never panics. The
//! alignment hot path runs on a deterministic work-stealing pool
//! (`rim-par`), sized by [`RimConfig::with_threads`] or `RIM_THREADS`;
//! results are bit-identical at every thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod diagnostics;
pub mod error;
pub mod incremental;
pub mod movement;
pub mod pipeline;
pub mod reckoning;
mod soa;
pub mod stream;
pub mod tracking_dp;
pub mod trrs;
pub mod wiball;

pub use alignment::{alignment_matrix, AlignmentConfig, AlignmentMatrix};
pub use error::Error;
pub use incremental::ColumnCache;
pub use movement::{auto_threshold, detect_movement, movement_indicator, MovementConfig};
pub use pipeline::{
    Confidence, GapConfig, MotionEstimate, Precision, Rim, RimConfig, SegmentEstimate, SegmentKind,
    Session,
};
pub use stream::{
    DegradeReason, DropReason, FusedMode, GapFilter, GapOutcome, GapSample, ImuSample, RimStream,
    StreamAggregate, StreamEvent, StreamEventKind, StreamInput, StreamSession,
};
pub use tracking_dp::{track_peaks, DpConfig, TrackedPath};
pub use trrs::{
    trrs_avg, trrs_cfr, trrs_cir, trrs_massive, trrs_norm, trrs_norm_f32, NormSnapshot,
};
