//! Alignment (TRRS) matrices — paper §3.2, Eqn. 5.
//!
//! For an antenna pair `(i, j)` the alignment matrix holds
//! `G[t][l] = κ(P_i(t), P_j(t − l))` for lags `l ∈ [−W, W]`: how well
//! antenna `i`'s virtual-massive profile at time `t` matches antenna `j`'s
//! profile `l` samples earlier. A ridge of large values at lag `l(t)`
//! means `i` is retracing `j`'s footprints with delay `l(t)` — the raw
//! material for speed estimation.
//!
//! Computation exploits the identity that the massive-average of Eqn. 4 is
//! a box filter along the time axis of the single-snapshot cross-TRRS
//! matrix `B[t][l] = κ̄(H_i(t), H_j(t−l))`: `B` is computed once
//! (`O(T·W·S·N)` inner products) and every lag column is then averaged in
//! `O(T·W)`, instead of the naive `O(T·W·V·S·N)`.

use crate::pipeline::Precision;
use crate::soa::{PairKernel, SoaScalar, SoaSeries};
use crate::trrs::{trrs_norm, trrs_norm_f32, NormSnapshot};
use rim_par::Pool;
use rim_simd::lanes::f64x4;

/// Parameters of alignment-matrix computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentConfig {
    /// Lag half-window `W`, in samples. Must exceed the largest expected
    /// alignment delay (≈ antenna separation / slowest speed × rate).
    pub window: usize,
    /// Number of virtual massive antennas `V` (block length of Eqn. 4).
    pub virtual_antennas: usize,
}

impl AlignmentConfig {
    /// Paper-style defaults for a given sample rate: `W` sized for delays
    /// up to 0.5 s (§3.2 "within a short period (e.g., 0.5 seconds)") and
    /// `V` per §6.2.7 ("a number larger than 30 should suffice for … 200
    /// Hz", scaled with rate).
    pub fn for_sample_rate(sample_rate_hz: f64) -> Self {
        Self {
            window: ((0.5 * sample_rate_hz).round() as usize).max(4),
            virtual_antennas: ((0.15 * sample_rate_hz).round() as usize).clamp(3, 60),
        }
    }
}

/// An alignment matrix: `values[t][k]` is the TRRS at time `t` and lag
/// `k − window` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentMatrix {
    /// Lag half-window `W`.
    pub window: usize,
    /// `values[t][k]`, `k ∈ 0..2W+1`; entries whose `t − l` fell outside
    /// the series are 0.
    pub values: Vec<Vec<f64>>,
}

impl AlignmentMatrix {
    /// Number of time columns.
    pub fn n_times(&self) -> usize {
        self.values.len()
    }

    /// Number of lag rows (`2W + 1`).
    pub fn n_lags(&self) -> usize {
        2 * self.window + 1
    }

    /// Signed lag (samples) of lag-index `k`.
    pub fn lag_of(&self, k: usize) -> isize {
        k as isize - self.window as isize
    }

    /// Lag-index of a signed lag.
    pub fn index_of(&self, lag: isize) -> usize {
        (lag + self.window as isize) as usize
    }

    /// The TRRS at time `t`, signed lag `lag`.
    pub fn at(&self, t: usize, lag: isize) -> f64 {
        self.values[t][self.index_of(lag)]
    }

    /// Element-wise average of several matrices (for parallel isometric
    /// pair groups, §4.2).
    ///
    /// # Panics
    /// Panics if the list is empty or shapes differ.
    pub fn average(mats: &[&AlignmentMatrix]) -> AlignmentMatrix {
        Self::average_with(mats, &Pool::serial())
    }

    /// [`AlignmentMatrix::average`] as a parallel reduction: time rows are
    /// tiled across `pool`'s workers. Each element sums its inputs in
    /// matrix order regardless of scheduling, so the result is
    /// bit-identical to the serial average.
    ///
    /// # Panics
    /// Panics if the list is empty or shapes differ.
    pub fn average_with(mats: &[&AlignmentMatrix], pool: &Pool) -> AlignmentMatrix {
        assert!(!mats.is_empty(), "need at least one matrix");
        let w = mats[0].window;
        let t = mats[0].n_times();
        assert!(
            mats.iter().all(|m| m.window == w && m.n_times() == t),
            "matrix shapes must agree"
        );
        let inv = 1.0 / mats.len() as f64;
        let tiles = pool.run_tiles(t, |_, rows| {
            rows.map(|row| {
                let mut acc = vec![0.0f64; 2 * w + 1];
                for m in mats {
                    for (a, &v) in acc.iter_mut().zip(&m.values[row]) {
                        *a += v;
                    }
                }
                for v in &mut acc {
                    *v *= inv;
                }
                acc
            })
            .collect::<Vec<Vec<f64>>>()
        });
        AlignmentMatrix {
            window: w,
            values: tiles.into_iter().flatten().collect(),
        }
    }

    /// Median TRRS of column `t` — the column's noise floor. Ridge
    /// detection is done *relative* to this floor because the absolute
    /// cross-antenna TRRS floor varies with the environment's multipath
    /// richness.
    pub fn column_floor(&self, t: usize) -> f64 {
        rim_dsp::stats::median(&self.values[t])
    }

    /// [`Self::column_floor`] for every column at once, sharing one sort
    /// scratch buffer — the per-call allocation dominates when a caller
    /// needs the floor of each sample in a segment. Each entry equals the
    /// corresponding `column_floor(t)` bit for bit.
    pub fn column_floors(&self) -> Vec<f64> {
        let mut scratch = Vec::new();
        self.values
            .iter()
            .map(|row| rim_dsp::stats::quantile_with(row, 0.5, &mut scratch))
            .collect()
    }

    /// Parabolic sub-sample refinement of a ridge lag: fits a parabola to
    /// the TRRS at `lag − 1, lag, lag + 1` and returns the fractional lag
    /// of its vertex (clamped to ±0.5 around `lag`). Falls back to the
    /// integer lag at the window edges or on degenerate curvature.
    pub fn refine_lag(&self, t: usize, lag: isize) -> f64 {
        let w = self.window as isize;
        if lag <= -w || lag >= w {
            return lag as f64;
        }
        let g_m = self.at(t, lag - 1);
        let g_0 = self.at(t, lag);
        let g_p = self.at(t, lag + 1);
        let denom = g_m - 2.0 * g_0 + g_p;
        if denom >= -1e-12 {
            return lag as f64; // Not a local maximum.
        }
        let delta = 0.5 * (g_m - g_p) / denom;
        lag as f64 + delta.clamp(-0.5, 0.5)
    }

    /// Per-column maximum TRRS and its signed lag.
    pub fn column_peaks(&self) -> Vec<(isize, f64)> {
        self.values
            .iter()
            .map(|row| {
                let (k, &v) = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .expect("rows are non-empty");
                (k as isize - self.window as isize, v)
            })
            .collect()
    }
}

/// Computes the single-snapshot cross-TRRS matrix
/// `B[t][l] = κ̄(a[t], b[t−l])` for lags `|l| ≤ window`. Out-of-range
/// entries are 0.
pub fn base_cross_trrs(a: &[NormSnapshot], b: &[NormSnapshot], window: usize) -> AlignmentMatrix {
    base_cross_trrs_range(a, b, window, 0, a.len().min(b.len()))
}

/// Computes cross-TRRS columns for `t ∈ t0..t1` only; lags still reference
/// the *full* series, so `b[t − l]` may reach outside the column range.
/// Row 0 of the result corresponds to `t0`. The series may have different
/// lengths: columns index `a`, and entries whose source `t − l` falls
/// outside `b` are 0.
///
/// # Panics
/// Panics if the column range exceeds `a`.
pub fn base_cross_trrs_range(
    a: &[NormSnapshot],
    b: &[NormSnapshot],
    window: usize,
    t0: usize,
    t1: usize,
) -> AlignmentMatrix {
    base_cross_trrs_range_with(a, b, window, t0, t1, &Pool::serial())
}

/// One time column of the cross-TRRS matrix, in the scalar
/// array-of-structures layout — the bit-exact reference the SoA/SIMD path
/// is tested against, and the fallback for shapes the SoA packing refuses
/// (ragged series). The incremental column cache
/// ([`crate::incremental::ColumnCache`]) builds its entries with the same
/// masking, so matrices materialised from the cache are bit-identical to
/// this path. Masks against `b` — the series the lag actually indexes —
/// not `a` (for the historical equal-length callers the two are the
/// same).
pub(crate) fn cross_trrs_row(
    a: &[NormSnapshot],
    b: &[NormSnapshot],
    window: usize,
    t: usize,
) -> Vec<f64> {
    let src_len = b.len();
    let w = window as isize;
    let mut row = vec![0.0; 2 * window + 1];
    for (k, slot) in row.iter_mut().enumerate() {
        let lag = k as isize - w;
        let src = t as isize - lag;
        if src < 0 || src as usize >= src_len {
            continue;
        }
        *slot = trrs_norm(&a[t], &b[src as usize]);
    }
    row
}

/// [`cross_trrs_row`] in reduced precision: the same masking with
/// [`trrs_norm_f32`] per entry — the scalar reference (and ragged-shape
/// fallback) of the f32 SIMD path.
pub(crate) fn cross_trrs_row_f32(
    a: &[NormSnapshot],
    b: &[NormSnapshot],
    window: usize,
    t: usize,
) -> Vec<f64> {
    let src_len = b.len();
    let w = window as isize;
    let mut row = vec![0.0; 2 * window + 1];
    for (k, slot) in row.iter_mut().enumerate() {
        let lag = k as isize - w;
        let src = t as isize - lag;
        if src < 0 || src as usize >= src_len {
            continue;
        }
        *slot = trrs_norm_f32(&a[t], &b[src as usize]);
    }
    row
}

/// [`base_cross_trrs_range`] with the time columns tiled across `pool`'s
/// workers — the dominant `O(T·W·S·N)` cost of the pipeline. Every column
/// is independent and computed by per-element arithmetic identical to the
/// scalar path, so the result is bit-identical regardless of thread count
/// or SIMD dispatch tier.
///
/// # Panics
/// Panics if the column range exceeds `a`.
pub fn base_cross_trrs_range_with(
    a: &[NormSnapshot],
    b: &[NormSnapshot],
    window: usize,
    t0: usize,
    t1: usize,
    pool: &Pool,
) -> AlignmentMatrix {
    base_cross_trrs_range_prec(a, b, window, (t0, t1), pool, Precision::F64Reference)
}

/// Column ranges at least this wide take the SoA/SIMD path; narrower
/// ranges (the pre-detection single-column probes) go scalar, where the
/// packing transpose would cost more than it saves. The threshold never
/// affects results — both paths are bit-identical per precision.
const SOA_MIN_COLUMNS: usize = 4;

/// [`base_cross_trrs_range_with`] at an explicit [`Precision`] — the
/// entry point the pipeline uses. `range` is `(t0, t1)` over `a`'s
/// columns. For [`Precision::F64Reference`] the result is bit-identical
/// to the historical scalar loop; for [`Precision::F32Fast`] it is
/// bit-identical to [`trrs_norm_f32`] per entry.
///
/// # Panics
/// Panics if the column range exceeds `a`.
pub fn base_cross_trrs_range_prec(
    a: &[NormSnapshot],
    b: &[NormSnapshot],
    window: usize,
    range: (usize, usize),
    pool: &Pool,
    precision: Precision,
) -> AlignmentMatrix {
    let (t0, t1) = range;
    assert!(t0 <= t1 && t1 <= a.len(), "column range out of bounds");
    if t1 - t0 >= SOA_MIN_COLUMNS {
        let soa = match precision {
            Precision::F64Reference => base_cross_soa::<f64>(a, b, window, t0, t1, pool),
            Precision::F32Fast => base_cross_soa::<f32>(a, b, window, t0, t1, pool),
        };
        if let Some(m) = soa {
            return m;
        }
    }
    let tiles = pool.run_tiles(t1 - t0, |_, rows| {
        rows.map(|row_idx| match precision {
            Precision::F64Reference => cross_trrs_row(a, b, window, t0 + row_idx),
            Precision::F32Fast => cross_trrs_row_f32(a, b, window, t0 + row_idx),
        })
        .collect::<Vec<Vec<f64>>>()
    });
    AlignmentMatrix {
        window,
        values: tiles.into_iter().flatten().collect(),
    }
}

/// The SoA/SIMD path: packs the column range of `a` and the reachable lag
/// span of `b` into subcarrier-major planes once, then runs the row
/// kernel per column. `None` when the shapes refuse the packing (ragged
/// series) — the caller falls back to the scalar rows.
fn base_cross_soa<T: SoaScalar>(
    a: &[NormSnapshot],
    b: &[NormSnapshot],
    window: usize,
    t0: usize,
    t1: usize,
    pool: &Pool,
) -> Option<AlignmentMatrix> {
    let sa = SoaSeries::<T>::pack_range(a, t0, t1);
    let b0 = t0.saturating_sub(window);
    let b1 = (t1 + window).min(b.len()).max(b0);
    let sb = SoaSeries::<T>::pack_range(b, b0, b1);
    // Probe usability once before fanning out.
    PairKernel::new(&sa, &sb, window, b.len())?;
    let tiles = pool.run_tiles(t1 - t0, |_, rows| {
        let mut kern = PairKernel::new(&sa, &sb, window, b.len()).expect("usability probed above");
        rows.map(|r| {
            let mut row = vec![0.0f64; 2 * window + 1];
            kern.row_into(t0 + r, &a[t0 + r], &mut row);
            row
        })
        .collect::<Vec<Vec<f64>>>()
    });
    Some(AlignmentMatrix {
        window,
        values: tiles.into_iter().flatten().collect(),
    })
}

/// Applies the virtual-massive-antenna average (Eqn. 4): a centred box
/// filter of length `v` along the time axis, per lag. Edge positions
/// average over the in-range part of the block.
pub fn virtual_average(base: &AlignmentMatrix, v: usize) -> AlignmentMatrix {
    virtual_average_with(base, v, &Pool::serial())
}

/// [`virtual_average`] as a parallel reduction: lag columns are tiled
/// across `pool`'s workers, each running the identical per-lag prefix-sum
/// arithmetic, then transposed back to row-major. Bit-identical to the
/// serial path for any thread count.
pub fn virtual_average_with(base: &AlignmentMatrix, v: usize, pool: &Pool) -> AlignmentMatrix {
    if v <= 1 {
        return base.clone();
    }
    let t_len = base.n_times();
    let n_lags = base.n_lags();
    let half = (v / 2) as isize;
    // Prefix sums per lag for O(1) window averages; one column per lag,
    // transposed to row-major afterwards. Lags run four at a time through
    // f64 SIMD lanes — each lane performs the identical per-lag sequence
    // of sums and one division, so the lanes (and the scalar tail) are
    // bit-identical to the historical per-lag loop.
    let tiles = pool.run_tiles(n_lags, |_, lags| {
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(lags.len());
        let mut k = lags.start;
        let mut prefix4 = vec![f64x4::ZERO; t_len + 1];
        while k + 4 <= lags.end {
            for t in 0..t_len {
                prefix4[t + 1] = prefix4[t] + f64x4::from_slice(&base.values[t][k..]);
            }
            let mut cols = [(); 4].map(|_| vec![0.0f64; t_len]);
            for t in 0..t_len {
                let lo = (t as isize - half).max(0) as usize;
                let hi = ((t as isize + half) as usize).min(t_len - 1);
                let avg = (prefix4[hi + 1] - prefix4[lo]) / f64x4::splat((hi - lo + 1) as f64);
                for (col, x) in cols.iter_mut().zip(avg.to_array()) {
                    col[t] = x;
                }
            }
            out.extend(cols);
            k += 4;
        }
        let mut prefix = vec![0.0f64; t_len + 1];
        for k in k..lags.end {
            prefix[0] = 0.0;
            for t in 0..t_len {
                prefix[t + 1] = prefix[t] + base.values[t][k];
            }
            let mut col = vec![0.0f64; t_len];
            for (t, slot) in col.iter_mut().enumerate() {
                let lo = (t as isize - half).max(0) as usize;
                let hi = ((t as isize + half) as usize).min(t_len - 1);
                *slot = (prefix[hi + 1] - prefix[lo]) / (hi - lo + 1) as f64;
            }
            out.push(col);
        }
        out
    });
    let mut values = vec![vec![0.0; n_lags]; t_len];
    for (k, col) in tiles.into_iter().flatten().enumerate() {
        for (t, x) in col.into_iter().enumerate() {
            values[t][k] = x;
        }
    }
    AlignmentMatrix {
        window: base.window,
        values,
    }
}

/// Alias of [`virtual_average`] for range-computed base matrices: the box
/// filter clamps to the available columns, so segment edges average over
/// the in-range part of the block.
pub fn virtual_average_range(base: &AlignmentMatrix, v: usize) -> AlignmentMatrix {
    virtual_average(base, v)
}

/// Alias of [`virtual_average_with`] for range-computed base matrices.
pub fn virtual_average_range_with(
    base: &AlignmentMatrix,
    v: usize,
    pool: &Pool,
) -> AlignmentMatrix {
    virtual_average_with(base, v, pool)
}

/// Convenience: full alignment matrix `G` for a pair of antenna series
/// (base cross-TRRS followed by the massive average).
pub fn alignment_matrix(
    a: &[NormSnapshot],
    b: &[NormSnapshot],
    config: AlignmentConfig,
) -> AlignmentMatrix {
    let base = base_cross_trrs(a, b, config.window);
    virtual_average(&base, config.virtual_antennas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_csi::frame::CsiSnapshot;
    use rim_dsp::complex::Complex64;

    /// splitmix64-style avalanche so values are nonlinear in the input
    /// (a linear hash makes every snapshot a pure linear-phase vector,
    /// which the TRRS cannot tell apart).
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn snapshot(tag: u64) -> CsiSnapshot {
        CsiSnapshot {
            per_tx: vec![(0..16)
                .map(|k| {
                    let x = (mix(tag.wrapping_mul(0x9E3779B9).wrapping_add(k as u64)) >> 12) as f64
                        / (1u64 << 52) as f64;
                    Complex64::from_polar(1.0, x * std::f64::consts::TAU)
                })
                .collect()],
        }
    }

    /// A series where the "channel" repeats with a known shift: sample t of
    /// series B equals sample t+shift of series A.
    fn shifted_series(len: usize, shift: usize) -> (Vec<NormSnapshot>, Vec<NormSnapshot>) {
        let a: Vec<CsiSnapshot> = (0..len as u64).map(snapshot).collect();
        let b: Vec<CsiSnapshot> = (0..len as u64)
            .map(|t| snapshot(t.saturating_sub(shift as u64)))
            .collect();
        (NormSnapshot::series(&a), NormSnapshot::series(&b))
    }

    #[test]
    fn base_matrix_peaks_at_true_shift() {
        // b[t] = a[t - 3]: κ(a[t], b[t - l]) is maximal when t - l - 3 == t,
        // i.e. lag l = -3.
        let (a, b) = shifted_series(40, 3);
        let m = base_cross_trrs(&a, &b, 8);
        for t in 12..30 {
            let (lag, v) = m.column_peaks()[t];
            assert_eq!(lag, -3, "peak at the planted shift (t={t})");
            assert!((v - 1.0).abs() < 1e-9);
        }
        // And the mirrored computation peaks at +3.
        let m2 = base_cross_trrs(&b, &a, 8);
        let (lag, _) = m2.column_peaks()[20];
        assert_eq!(lag, 3);
    }

    #[test]
    fn out_of_range_lags_are_zero() {
        let (a, b) = shifted_series(10, 0);
        let m = base_cross_trrs(&a, &b, 4);
        // At t = 0, any positive lag reaches before the series start.
        assert_eq!(m.at(0, 1), 0.0);
        assert_eq!(m.at(0, 4), 0.0);
        assert!(m.at(0, 0) > 0.99);
        // At the end, negative lags run off the series.
        assert_eq!(m.at(9, -1), 0.0);
    }

    #[test]
    fn lag_index_round_trip() {
        let m = AlignmentMatrix {
            window: 5,
            values: vec![vec![0.0; 11]; 3],
        };
        for lag in -5..=5 {
            assert_eq!(m.lag_of(m.index_of(lag)), lag);
        }
        assert_eq!(m.n_lags(), 11);
    }

    #[test]
    fn virtual_average_equals_direct_massive_trrs() {
        // The box-filter optimisation must reproduce Eqn. 4 exactly in the
        // interior.
        let (a, b) = shifted_series(30, 2);
        let w = 5;
        let v = 5;
        let base = base_cross_trrs(&a, &b, w);
        let g = virtual_average(&base, v);
        for t in 8..22 {
            for lag in -3..=3isize {
                let direct = crate::trrs::trrs_massive(&a, &b, t, (t as isize - lag) as usize, v);
                assert!(
                    (g.at(t, lag) - direct).abs() < 1e-9,
                    "t={t} lag={lag}: {} vs {direct}",
                    g.at(t, lag)
                );
            }
        }
    }

    #[test]
    fn virtual_average_v1_is_identity() {
        let (a, b) = shifted_series(12, 1);
        let base = base_cross_trrs(&a, &b, 3);
        let g = virtual_average(&base, 1);
        assert_eq!(g, base);
    }

    #[test]
    fn average_of_identical_matrices_is_identity() {
        let (a, b) = shifted_series(15, 2);
        let m = alignment_matrix(
            &a,
            &b,
            AlignmentConfig {
                window: 4,
                virtual_antennas: 3,
            },
        );
        let avg = AlignmentMatrix::average(&[&m, &m, &m]);
        for t in 0..m.n_times() {
            for k in 0..m.n_lags() {
                assert!((avg.values[t][k] - m.values[t][k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pooled_paths_are_bit_identical_to_serial() {
        let (a, b) = shifted_series(60, 2);
        let serial = base_cross_trrs(&a, &b, 9);
        let g_serial = virtual_average(&serial, 7);
        let avg_serial = AlignmentMatrix::average(&[&serial, &g_serial]);
        for threads in [2usize, 4, 8] {
            let pool = Pool::new(threads, 5);
            let base = base_cross_trrs_range_with(&a, &b, 9, 0, a.len(), &pool);
            let g = virtual_average_with(&base, 7, &pool);
            let avg = AlignmentMatrix::average_with(&[&base, &g], &pool);
            for (x, y) in [(&base, &serial), (&g, &g_serial), (&avg, &avg_serial)] {
                for (rx, ry) in x.values.iter().zip(&y.values) {
                    for (vx, vy) in rx.iter().zip(ry) {
                        assert_eq!(vx.to_bits(), vy.to_bits(), "threads={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn asymmetric_series_dims_and_masking() {
        // Regression for the per-call `min(a, b)` masking: asymmetric
        // series are legal; columns index `a`, masking indexes `b`.
        let (a, b) = shifted_series(12, 0);
        // Short `a`: 5 columns, but lags may reach the *longer* `b` —
        // at t = 4, lag −3 reads b[7], which exists.
        let m = base_cross_trrs(&a[..5], &b, 3);
        assert_eq!(m.n_times(), 5);
        assert_eq!(m.n_lags(), 7);
        assert!(m.at(4, -3) > 0.0, "source b[7] is in range");
        assert_eq!(m.at(0, 1), 0.0, "source b[-1] stays masked");
        // Short `b`: the mirror case masks sources beyond b's end.
        let m = base_cross_trrs(&a, &b[..5], 3);
        assert_eq!(m.n_times(), 5);
        assert_eq!(m.at(4, -3), 0.0, "source b[7] does not exist");
        assert!(m.at(4, 2) > 0.0, "source b[2] does");
        // The masked entries aside, values equal the symmetric case.
        let full = base_cross_trrs(&a, &b, 3);
        for t in 0..5 {
            for lag in -3..=3isize {
                let v = m.at(t, lag);
                if v != 0.0 {
                    assert_eq!(v.to_bits(), full.at(t, lag).to_bits());
                }
            }
        }
    }

    #[test]
    fn soa_and_scalar_paths_are_bit_identical() {
        // The SIMD/SoA path must reproduce the scalar AoS rows bit for
        // bit — compare a range wide enough for the SoA path against
        // single-column ranges, which stay scalar by the size threshold.
        let (a, b) = shifted_series(40, 2);
        let w = 6;
        let pool = Pool::serial();
        let wide = base_cross_trrs_range_prec(&a, &b, w, (0, 40), &pool, Precision::F64Reference);
        for t in 0..40 {
            let narrow =
                base_cross_trrs_range_prec(&a, &b, w, (t, t + 1), &pool, Precision::F64Reference);
            for (x, y) in wide.values[t].iter().zip(&narrow.values[0]) {
                assert_eq!(x.to_bits(), y.to_bits(), "t={t}");
            }
        }
    }

    #[test]
    fn f32_fast_path_matches_its_scalar_reference_and_tracks_f64() {
        let (a, b) = shifted_series(32, 3);
        let w = 5;
        let pool = Pool::serial();
        let fast = base_cross_trrs_range_prec(&a, &b, w, (0, 32), &pool, Precision::F32Fast);
        let reference =
            base_cross_trrs_range_prec(&a, &b, w, (0, 32), &pool, Precision::F64Reference);
        for t in 0..32 {
            let scalar = cross_trrs_row_f32(&a, &b, w, t);
            for (k, (x, y)) in fast.values[t].iter().zip(&scalar).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "t={t} k={k}");
            }
            for (x, y) in fast.values[t].iter().zip(&reference.values[t]) {
                assert!((x - y).abs() < 1e-4, "f32 drift at t={t}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn config_defaults_scale_with_rate() {
        let c200 = AlignmentConfig::for_sample_rate(200.0);
        assert_eq!(c200.window, 100);
        assert_eq!(c200.virtual_antennas, 30);
        let c50 = AlignmentConfig::for_sample_rate(50.0);
        assert!(c50.window < c200.window);
        assert!(c50.virtual_antennas < c200.virtual_antennas);
        assert!(c50.virtual_antennas >= 3);
    }
}
