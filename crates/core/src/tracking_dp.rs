//! Dynamic-programming peak tracking through alignment matrices
//! (paper §4.2, Eqns. 6–8).
//!
//! The true alignment delays form a ridge of large TRRS values through the
//! matrix, but the per-column maxima can jump to spurious peaks under
//! noise, packet loss or wagging motion. Following the paper we find the
//! lag path maximising the accumulated TRRS minus a cost `ω·C` on lag
//! jumps, `C(l → n) = |l − n| / (2W)` (Eqn. 7), which "punishes jumpy
//! peaks" because true alignment delays vary slowly.
//!
//! Implementation notes: the paper's score sums both endpoint TRRS values
//! per transition, which counts interior nodes twice; that is equivalent
//! (same argmax) to the standard Viterbi form used here — each node's
//! value counted once and `ω` halved. Because the transition cost is
//! linear in `|l − n|`, the per-column maximisation is computed with a
//! two-pass distance transform, making the whole tracking `O(T·W)` rather
//! than `O(T·W²)`.

use crate::alignment::AlignmentMatrix;

/// Peak-tracking parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpConfig {
    /// Negative weight `ω` on the jump cost `|Δlag| / (2W)`. More negative
    /// ⇒ smoother paths.
    pub omega: f64,
}

impl Default for DpConfig {
    fn default() -> Self {
        Self { omega: -4.0 }
    }
}

/// A tracked lag path through an alignment matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedPath {
    /// Signed lag (samples) per time column.
    pub lags: Vec<isize>,
    /// Total DP score of the path.
    pub score: f64,
    /// Mean TRRS along the path — used by post-detection.
    pub mean_trrs: f64,
    /// Mean absolute lag change per step — the smoothness statistic used
    /// by post-detection (§4.3).
    pub jumpiness: f64,
}

/// Tracks the optimal lag path over the whole matrix.
///
/// # Panics
/// Panics on an empty matrix.
pub fn track_peaks(m: &AlignmentMatrix, config: DpConfig) -> TrackedPath {
    track_peaks_range(m, 0, m.n_times(), config)
}

/// Per-step cost of one lag of jump. ω is halved relative to the paper's
/// double-counting form (see module docs). Shared by the batch tracker
/// and the incremental provisional tracker so both price jumps
/// identically.
///
/// # Panics
/// Panics if `omega` is positive (the weight must be a cost).
pub(crate) fn dp_jump_cost(omega: f64, window: usize) -> f64 {
    let c = (-omega) * 0.5 / (2.0 * window as f64).max(1.0);
    assert!(c >= 0.0, "omega must be negative (a cost)");
    c
}

/// One DP relaxation step: advances `score` from the previous column to
/// the column whose TRRS values are `row`, under jump cost `c` per lag of
/// movement, and returns the chosen parent lag index per lag. The
/// distance transform is the exact two-sweep arithmetic of
/// [`track_peaks_range`] (extracted so the incremental forward pass in
/// [`crate::incremental`] is bit-identical to the batch pass);
/// `best_prev` / `best_parent` are caller-provided scratch, fully
/// overwritten here.
pub(crate) fn dp_advance_column(
    score: &mut [f64],
    row: &[f64],
    c: f64,
    best_prev: &mut [f64],
    best_parent: &mut [u32],
) -> Vec<u32> {
    let n_lags = score.len();
    // Distance transform: best_prev[l] = max_n score[n] − c·|l − n|,
    // with the achieving n recorded.
    // Left-to-right sweep.
    best_prev[0] = score[0];
    best_parent[0] = 0;
    for l in 1..n_lags {
        let carried = best_prev[l - 1] - c;
        if score[l] >= carried {
            best_prev[l] = score[l];
            best_parent[l] = l as u32;
        } else {
            best_prev[l] = carried;
            best_parent[l] = best_parent[l - 1];
        }
    }
    // Right-to-left sweep.
    for l in (0..n_lags - 1).rev() {
        let carried = best_prev[l + 1] - c;
        if carried > best_prev[l] {
            best_prev[l] = carried;
            best_parent[l] = best_parent[l + 1];
        }
    }
    let mut parent_row = vec![0u32; n_lags];
    for l in 0..n_lags {
        parent_row[l] = best_parent[l];
        score[l] = row[l] + best_prev[l];
    }
    parent_row
}

/// Tracks the optimal lag path over columns `t0..t1`.
///
/// # Panics
/// Panics if the range is empty or out of bounds.
pub fn track_peaks_range(
    m: &AlignmentMatrix,
    t0: usize,
    t1: usize,
    config: DpConfig,
) -> TrackedPath {
    assert!(t0 < t1 && t1 <= m.n_times(), "invalid column range");
    let n_lags = m.n_lags();
    let c = dp_jump_cost(config.omega, m.window);

    let steps = t1 - t0;
    let mut score: Vec<f64> = m.values[t0].clone();
    let mut parents: Vec<Vec<u32>> = Vec::with_capacity(steps.saturating_sub(1));
    let mut best_prev = vec![0.0f64; n_lags];
    let mut best_parent = vec![0u32; n_lags];

    for t in t0 + 1..t1 {
        parents.push(dp_advance_column(
            &mut score,
            &m.values[t],
            c,
            &mut best_prev,
            &mut best_parent,
        ));
    }

    // Best terminal lag (Eqn. 8) and backtrack.
    let (mut l, _) = score
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty lag axis");
    let final_score = score[l];
    let mut lags_rev = Vec::with_capacity(steps);
    lags_rev.push(m.lag_of(l));
    for parent_row in parents.iter().rev() {
        l = parent_row[l] as usize;
        lags_rev.push(m.lag_of(l));
    }
    lags_rev.reverse();
    let lags = lags_rev;

    let mean_trrs = lags
        .iter()
        .enumerate()
        .map(|(i, &lag)| m.at(t0 + i, lag))
        .sum::<f64>()
        / steps as f64;
    let jumpiness = if steps > 1 {
        lags.windows(2)
            .map(|w| (w[1] - w[0]).abs() as f64)
            .sum::<f64>()
            / (steps - 1) as f64
    } else {
        0.0
    };
    TrackedPath {
        lags,
        score: final_score,
        mean_trrs,
        jumpiness,
    }
}

/// Exhaustive-search reference (exponential; tests only).
#[cfg(test)]
fn track_exhaustive(m: &AlignmentMatrix, config: DpConfig) -> (Vec<isize>, f64) {
    fn recurse(
        m: &AlignmentMatrix,
        c: f64,
        t: usize,
        path: &mut Vec<usize>,
        best: &mut (Vec<usize>, f64),
    ) {
        if t == m.n_times() {
            let score: f64 = path
                .iter()
                .enumerate()
                .map(|(i, &l)| m.values[i][l])
                .sum::<f64>()
                - path
                    .windows(2)
                    .map(|w| c * (w[1] as isize - w[0] as isize).unsigned_abs() as f64)
                    .sum::<f64>();
            if score > best.1 {
                *best = (path.clone(), score);
            }
            return;
        }
        for l in 0..m.n_lags() {
            path.push(l);
            recurse(m, c, t + 1, path, best);
            path.pop();
        }
    }
    let c = (-config.omega) * 0.5 / (2.0 * m.window as f64).max(1.0);
    let mut best = (Vec::new(), f64::NEG_INFINITY);
    recurse(m, c, 0, &mut Vec::new(), &mut best);
    (best.0.iter().map(|&l| m.lag_of(l)).collect(), best.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(window: usize, rows: Vec<Vec<f64>>) -> AlignmentMatrix {
        assert!(rows.iter().all(|r| r.len() == 2 * window + 1));
        AlignmentMatrix {
            window,
            values: rows,
        }
    }

    #[test]
    fn follows_clean_ridge() {
        // Ridge at lag +1 (index 3 with W=2).
        let rows: Vec<Vec<f64>> = (0..10).map(|_| vec![0.1, 0.2, 0.3, 0.9, 0.2]).collect();
        let m = matrix(2, rows);
        let p = track_peaks(&m, DpConfig::default());
        assert!(p.lags.iter().all(|&l| l == 1), "{:?}", p.lags);
        assert!((p.mean_trrs - 0.9).abs() < 1e-12);
        assert_eq!(p.jumpiness, 0.0);
    }

    #[test]
    fn bridges_outlier_column() {
        // One column's max is a far-away spurious spike; the path must not
        // jump to it.
        let mut rows: Vec<Vec<f64>> = (0..9)
            .map(|_| vec![0.1, 0.2, 0.8, 0.2, 0.1, 0.1, 0.1])
            .collect();
        rows[4] = vec![0.1, 0.2, 0.55, 0.2, 0.1, 0.1, 0.95];
        let m = matrix(3, rows);
        let p = track_peaks(&m, DpConfig { omega: -4.0 });
        assert!(
            p.lags.iter().all(|&l| l == -1),
            "stays on the ridge: {:?}",
            p.lags
        );
    }

    #[test]
    fn follows_slowly_moving_ridge() {
        // Ridge drifts one lag every three columns.
        let w = 4;
        let n = 12;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|t| {
                let ridge = t / 3; // 0..4 — lag index offset from W.
                let mut row = vec![0.1; 2 * w + 1];
                row[w + ridge] = 0.9;
                row
            })
            .collect();
        let m = matrix(w, rows);
        let p = track_peaks(&m, DpConfig::default());
        for (t, &lag) in p.lags.iter().enumerate() {
            assert_eq!(lag, (t / 3) as isize, "t={t}");
        }
    }

    #[test]
    fn matches_exhaustive_search() {
        // Pseudo-random small matrices: DP must equal brute force.
        let w = 2;
        for seed in 0..5u64 {
            let rows: Vec<Vec<f64>> = (0..5)
                .map(|t| {
                    (0..2 * w + 1)
                        .map(|l| {
                            let h = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(
                                ((t * 31 + l) as u64).wrapping_mul(0xBF58476D1CE4E5B9),
                            );
                            ((h >> 12) as f64 / (1u64 << 52) as f64).fract()
                        })
                        .collect()
                })
                .collect();
            let m = matrix(w, rows);
            let cfg = DpConfig { omega: -3.0 };
            let dp = track_peaks(&m, cfg);
            let (ex_lags, ex_score) = track_exhaustive(&m, cfg);
            assert!(
                (dp.score - ex_score).abs() < 1e-9,
                "seed {seed}: DP {} vs exhaustive {ex_score}",
                dp.score
            );
            assert_eq!(dp.lags, ex_lags, "seed {seed}");
        }
    }

    #[test]
    fn range_tracking_windows() {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|t| {
                let mut row = vec![0.1; 5];
                row[if t < 5 { 1 } else { 3 }] = 0.9;
                row
            })
            .collect();
        let m = matrix(2, rows);
        let first = track_peaks_range(&m, 0, 5, DpConfig::default());
        let second = track_peaks_range(&m, 5, 10, DpConfig::default());
        assert!(first.lags.iter().all(|&l| l == -1));
        assert!(second.lags.iter().all(|&l| l == 1));
        assert_eq!(first.lags.len(), 5);
    }

    #[test]
    fn strong_smoothing_flattens_path() {
        // With a huge |ω|, the path refuses to move even for a better
        // ridge elsewhere.
        let mut rows: Vec<Vec<f64>> = (0..6).map(|_| vec![0.1, 0.8, 0.1, 0.1, 0.75]).collect();
        rows[3] = vec![0.1, 0.1, 0.1, 0.1, 0.9];
        let m = matrix(2, rows);
        let p = track_peaks(&m, DpConfig { omega: -100.0 });
        assert_eq!(p.jumpiness, 0.0, "{:?}", p.lags);
    }

    #[test]
    #[should_panic(expected = "invalid column range")]
    fn empty_range_panics() {
        let m = matrix(1, vec![vec![0.0; 3]]);
        let _ = track_peaks_range(&m, 1, 1, DpConfig::default());
    }

    #[test]
    fn single_column_path() {
        let m = matrix(2, vec![vec![0.1, 0.2, 0.9, 0.3, 0.1]]);
        let p = track_peaks(&m, DpConfig::default());
        assert_eq!(p.lags, vec![0]);
        assert_eq!(p.jumpiness, 0.0);
    }
}
