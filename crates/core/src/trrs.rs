//! Time-Reversal Resonating Strength (TRRS) — the similarity measure at
//! the heart of RIM (paper §3.2).
//!
//! For two CFRs the TRRS is `κ(H₁,H₂) = |H₁ᴴH₂|² / (⟨H₁,H₁⟩⟨H₂,H₂⟩)`
//! (Eqn. 2), the frequency-domain form of the time-reversal focusing
//! metric of Eqn. 1. Two extensions raise its spatial resolution to
//! sub-centimetre:
//!
//! * averaging over the AP's transmit antennas (Eqn. 3) — spatial
//!   diversity enlarging the effective bandwidth, and
//! * averaging over a block of *virtual massive antennas* — consecutive
//!   snapshots recorded by the same physical antenna (Eqn. 4) — which is
//!   applied at the alignment-matrix level in [`crate::alignment`].
//!
//! The magnitude in the numerator makes κ invariant to any common complex
//! scaling, which is what disposes of the per-packet initial phase offset
//! without inter-NIC synchronisation.

use rim_csi::frame::CsiSnapshot;
use rim_dsp::complex::{inner_product, norm_sqr, Complex64};

/// TRRS between two CFR vectors (paper Eqn. 2). Returns a value in
/// `[0, 1]`; 0 when either vector is zero or lengths differ.
///
/// ```
/// use rim_dsp::complex::Complex64;
/// use rim_core::trrs::trrs_cfr;
///
/// let h: Vec<Complex64> = (0..16)
///     .map(|k| Complex64::from_polar(1.0, k as f64 * 0.4))
///     .collect();
/// // Identical channels resonate perfectly…
/// assert!((trrs_cfr(&h, &h) - 1.0).abs() < 1e-12);
/// // …and any complex scaling (initial phase offset, AGC gain) is
/// // invisible to the metric.
/// let scaled: Vec<Complex64> = h.iter().map(|&z| z * Complex64::new(0.2, -1.3)).collect();
/// assert!((trrs_cfr(&h, &scaled) - 1.0).abs() < 1e-12);
/// ```
pub fn trrs_cfr(h1: &[Complex64], h2: &[Complex64]) -> f64 {
    if h1.len() != h2.len() || h1.is_empty() {
        return 0.0;
    }
    let d = norm_sqr(h1) * norm_sqr(h2);
    if d <= 0.0 {
        return 0.0;
    }
    let ip = inner_product(h1, h2).abs();
    (ip * ip / d).min(1.0)
}

/// TRRS between two CIRs via the time-domain definition (paper Eqn. 1):
/// peak of `|h₁ * g₂|²` over the energy product, where `g₂` is the
/// time-reversed conjugate of `h₂`. Equivalent to [`trrs_cfr`] on the
/// DFTs; kept for tests and the time-domain view.
pub fn trrs_cir(h1: &[Complex64], h2: &[Complex64]) -> f64 {
    if h1.is_empty() || h2.is_empty() {
        return 0.0;
    }
    let g2 = rim_dsp::conv::time_reverse_conjugate(h2);
    let conv = rim_dsp::conv::convolve(h1, &g2);
    let peak = conv.iter().map(|z| z.norm_sqr()).fold(0.0f64, f64::max);
    let d = norm_sqr(h1) * norm_sqr(h2);
    if d <= 0.0 {
        0.0
    } else {
        (peak / d).min(1.0)
    }
}

/// Average TRRS across transmit antennas (paper Eqn. 3): each RX antenna's
/// per-TX TRRS values are computed independently and averaged, avoiding
/// any need to synchronise the two measurements.
///
/// # Truncation contract
///
/// Snapshots with mismatched TX counts are **silently truncated** to the
/// common prefix: only the first `min(a, b)` TX chains contribute, the
/// divisor is that common count, and the surplus chains of the longer
/// snapshot are ignored entirely. This keeps the metric total and in
/// `[0, 1]` when an AP renegotiates its antenna configuration mid-stream,
/// but it means a persistent mismatch quietly discards diversity (and
/// resolution) instead of failing. Callers that can observe a whole
/// sample — the streaming front-end in [`crate::stream`] — therefore
/// count a `tx_mismatch` probe metric when the snapshots of one sample
/// disagree on TX count, so the silent truncation is visible in run
/// reports. Returns 0 for empty snapshots.
pub fn trrs_avg(a: &CsiSnapshot, b: &CsiSnapshot) -> f64 {
    let n = a.per_tx.len().min(b.per_tx.len());
    if n == 0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for k in 0..n {
        acc += trrs_cfr(&a.per_tx[k], &b.per_tx[k]);
    }
    acc / n as f64
}

/// A CSI snapshot with each per-TX CFR normalised to unit energy, so the
/// TRRS reduces to `|⟨u,v⟩|²` — the representation the hot loops use.
#[derive(Debug, Clone, PartialEq)]
pub struct NormSnapshot {
    /// Unit-norm CFR per TX antenna (zero vectors stay zero).
    pub per_tx: Vec<Vec<Complex64>>,
}

impl NormSnapshot {
    /// Normalises a snapshot.
    pub fn from_snapshot(s: &CsiSnapshot) -> Self {
        let per_tx = s
            .per_tx
            .iter()
            .map(|cfr| {
                let mut v = cfr.clone();
                rim_dsp::complex::normalize_in_place(&mut v);
                v
            })
            .collect();
        Self { per_tx }
    }

    /// Normalises a whole antenna series.
    pub fn series(series: &[CsiSnapshot]) -> Vec<NormSnapshot> {
        series.iter().map(Self::from_snapshot).collect()
    }
}

/// TRRS between two normalised snapshots (TX-averaged, Eqn. 3).
///
/// Follows the same truncation contract as [`trrs_avg`]: mismatched TX
/// counts are silently compared over the common prefix (per-TX pairs with
/// differing subcarrier counts contribute 0), so the value stays total
/// rather than erroring — see [`trrs_avg`] for why and how the mismatch
/// is surfaced.
pub fn trrs_norm(a: &NormSnapshot, b: &NormSnapshot) -> f64 {
    let n = a.per_tx.len().min(b.per_tx.len());
    if n == 0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for k in 0..n {
        let u = &a.per_tx[k];
        let v = &b.per_tx[k];
        if u.len() != v.len() || u.is_empty() {
            continue;
        }
        let ip = inner_product(u, v).abs();
        acc += (ip * ip).min(1.0);
    }
    acc / n as f64
}

/// [`trrs_norm`] in reduced precision — the scalar reference for the
/// `Precision::F32Fast` pipeline (see [`crate::Precision`]). Inputs are
/// converted subcarrier-wise to `f32`, the inner product accumulates in
/// `f32`, and the magnitude squared is computed directly as `re² + im²`
/// (the operands are unit-norm, so `hypot`'s overflow guard buys
/// nothing). The SIMD f32 kernels are bit-identical to this function on
/// uniformly shaped snapshots; ragged shapes take this exact path.
/// Follows the same TX-truncation contract as [`trrs_norm`].
pub fn trrs_norm_f32(a: &NormSnapshot, b: &NormSnapshot) -> f64 {
    let n = a.per_tx.len().min(b.per_tx.len());
    if n == 0 {
        return 0.0;
    }
    let mut acc = 0.0f32;
    for k in 0..n {
        let u = &a.per_tx[k];
        let v = &b.per_tx[k];
        if u.len() != v.len() || u.is_empty() {
            continue;
        }
        // Plain subcarrier-order accumulation, mirroring the conjugated
        // multiply of `inner_product` term for term — the f32 SIMD lanes
        // replicate this exact order, so the SoA fast path stays
        // bit-identical to this reference.
        let mut acc_re = 0.0f32;
        let mut acc_im = 0.0f32;
        for (x, y) in u.iter().zip(v) {
            let ar = x.re as f32;
            let nai = -(x.im as f32);
            let br = y.re as f32;
            let bi = y.im as f32;
            acc_re += ar * br - nai * bi;
            acc_im += ar * bi + nai * br;
        }
        acc += (acc_re * acc_re + acc_im * acc_im).min(1.0);
    }
    (acc / n as f32) as f64
}

/// TRRS between virtual-massive-antenna profiles (paper Eqn. 4): the mean
/// of per-offset TRRS values over a block of `v` consecutive snapshots
/// centred at `ti` in `a` and `tj` in `b`. Block positions that fall
/// outside either series are skipped; returns 0 when nothing overlaps.
pub fn trrs_massive(a: &[NormSnapshot], b: &[NormSnapshot], ti: usize, tj: usize, v: usize) -> f64 {
    let half = (v / 2) as isize;
    let mut acc = 0.0;
    let mut count = 0usize;
    for k in -half..=half {
        let ia = ti as isize + k;
        let ib = tj as isize + k;
        if ia < 0 || ib < 0 || ia as usize >= a.len() || ib as usize >= b.len() {
            continue;
        }
        acc += trrs_norm(&a[ia as usize], &b[ib as usize]);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        acc / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn cfr(seed: u64, n: usize) -> Vec<Complex64> {
        // Deterministic pseudo-random CFR (nonlinear in k, see `mix`).
        (0..n)
            .map(|k| {
                let x = (mix(seed.wrapping_mul(6364136223).wrapping_add(k as u64)) >> 11) as f64
                    / (1u64 << 53) as f64;
                Complex64::from_polar(0.5 + x, x * 6.0)
            })
            .collect()
    }

    #[test]
    fn identical_cfrs_have_unit_trrs() {
        let h = cfr(1, 64);
        assert!((trrs_cfr(&h, &h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_invariance() {
        let h = cfr(2, 64);
        let scaled: Vec<Complex64> = h.iter().map(|&z| z * Complex64::new(0.3, -1.7)).collect();
        assert!((trrs_cfr(&h, &scaled) - 1.0).abs() < 1e-12, "κ(H, cH) = 1");
    }

    #[test]
    fn symmetry_and_range() {
        let a = cfr(3, 57);
        let b = cfr(4, 57);
        let ab = trrs_cfr(&a, &b);
        let ba = trrs_cfr(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0 && ab < 1.0);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        let h = cfr(1, 8);
        assert_eq!(trrs_cfr(&h, &[]), 0.0);
        assert_eq!(trrs_cfr(&[], &[]), 0.0);
        let zero = vec![rim_dsp::complex::ZERO; 8];
        assert_eq!(trrs_cfr(&h, &zero), 0.0);
        let short = cfr(2, 4);
        assert_eq!(trrs_cfr(&h, &short), 0.0, "length mismatch");
    }

    #[test]
    fn time_and_frequency_domain_agree() {
        // κ over CIRs equals κ over their DFTs: Parseval + the convolution
        // peak at full overlap equals the inner product.
        let h1 = cfr(5, 32);
        let h2: Vec<Complex64> = cfr(5, 32)
            .iter()
            .zip(cfr(6, 32))
            .map(|(&a, b)| a * 0.8 + b * 0.3)
            .collect();
        let f1 = rim_dsp::fft::fft(&h1);
        let f2 = rim_dsp::fft::fft(&h2);
        let kt = trrs_cir(&h1, &h2);
        let kf = trrs_cfr(&f1, &f2);
        // The CIR convolution peak may exceed the zero-lag product when the
        // impulse responses are unaligned; for these same-length dense CIRs
        // the zero-lag term dominates, so the two agree closely.
        assert!(kt >= kf - 1e-9, "time-domain peak ≥ frequency-domain value");
        assert!((kt - kf).abs() < 0.05, "κ_t={kt} vs κ_f={kf}");
    }

    #[test]
    fn tx_average_is_mean() {
        let a = CsiSnapshot {
            per_tx: vec![cfr(1, 16), cfr(2, 16)],
        };
        let b = CsiSnapshot {
            per_tx: vec![cfr(1, 16), cfr(3, 16)],
        };
        let k = trrs_avg(&a, &b);
        let k0 = trrs_cfr(&a.per_tx[0], &b.per_tx[0]);
        let k1 = trrs_cfr(&a.per_tx[1], &b.per_tx[1]);
        assert!((k - 0.5 * (k0 + k1)).abs() < 1e-12);
        assert!((k0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn norm_snapshot_matches_direct() {
        let a = CsiSnapshot {
            per_tx: vec![cfr(7, 24), cfr(8, 24), cfr(9, 24)],
        };
        let b = CsiSnapshot {
            per_tx: vec![cfr(10, 24), cfr(11, 24), cfr(12, 24)],
        };
        let direct = trrs_avg(&a, &b);
        let na = NormSnapshot::from_snapshot(&a);
        let nb = NormSnapshot::from_snapshot(&b);
        assert!((trrs_norm(&na, &nb) - direct).abs() < 1e-12);
    }

    #[test]
    fn massive_averaging_blocks() {
        let series_a: Vec<CsiSnapshot> = (0..10)
            .map(|k| CsiSnapshot {
                per_tx: vec![cfr(k, 16)],
            })
            .collect();
        let na = NormSnapshot::series(&series_a);
        // Same series, same index: every offset compares identical snapshots.
        let k = trrs_massive(&na, &na, 5, 5, 5);
        assert!((k - 1.0).abs() < 1e-12);
        // Off-by-one: compares different pseudo-random snapshots, well below 1.
        let koff = trrs_massive(&na, &na, 5, 6, 5);
        assert!(koff < 0.9, "shifted blocks differ: {koff}");
        // Out-of-range block positions are skipped, not crashed.
        let edge = trrs_massive(&na, &na, 0, 0, 7);
        assert!((edge - 1.0).abs() < 1e-12);
        // Completely out of range.
        assert_eq!(trrs_massive(&na[..0], &na, 0, 0, 3), 0.0);
    }

    #[test]
    fn norm_trrs_single_subcarrier() {
        // One subcarrier: the unit-normalised values are pure phases, so
        // |⟨u,v⟩|² is exactly 1 whatever the phases are.
        let a = NormSnapshot::from_snapshot(&CsiSnapshot {
            per_tx: vec![vec![Complex64::from_polar(2.0, 0.7)]],
        });
        let b = NormSnapshot::from_snapshot(&CsiSnapshot {
            per_tx: vec![vec![Complex64::from_polar(0.3, -1.1)]],
        });
        assert!((trrs_norm(&a, &b) - 1.0).abs() < 1e-12);
        assert!((trrs_norm_f32(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn norm_trrs_mismatched_tx_and_subcarrier_shapes() {
        let two_tx = NormSnapshot::from_snapshot(&CsiSnapshot {
            per_tx: vec![cfr(1, 16), cfr(2, 16)],
        });
        let one_tx = NormSnapshot::from_snapshot(&CsiSnapshot {
            per_tx: vec![cfr(1, 16)],
        });
        // TX mismatch truncates to the common prefix with the common
        // divisor: identical first chains → exactly 1.
        assert!((trrs_norm(&two_tx, &one_tx) - 1.0).abs() < 1e-12);
        // Subcarrier mismatch on a chain contributes 0 but still divides.
        let short = NormSnapshot::from_snapshot(&CsiSnapshot {
            per_tx: vec![cfr(1, 16), cfr(2, 8)],
        });
        let k = trrs_norm(&two_tx, &short);
        assert!((k - 0.5).abs() < 1e-12, "half the chains resonate: {k}");
        assert!((trrs_norm_f32(&two_tx, &short) - 0.5).abs() < 1e-6);
        // Empty against anything is 0.
        let empty = NormSnapshot { per_tx: vec![] };
        assert_eq!(trrs_norm(&two_tx, &empty), 0.0);
        assert_eq!(trrs_norm_f32(&empty, &empty), 0.0);
    }

    #[test]
    fn norm_trrs_f32_tracks_reference() {
        for seed in 0..8u64 {
            let a = NormSnapshot::from_snapshot(&CsiSnapshot {
                per_tx: vec![cfr(seed, 56), cfr(seed + 100, 56)],
            });
            let b = NormSnapshot::from_snapshot(&CsiSnapshot {
                per_tx: vec![cfr(seed + 200, 56), cfr(seed + 300, 56)],
            });
            let k64 = trrs_norm(&a, &b);
            let k32 = trrs_norm_f32(&a, &b);
            assert!((k64 - k32).abs() < 1e-5, "seed {seed}: {k64} vs {k32}");
        }
    }

    #[test]
    fn massive_window_one_against_mismatched_series_lengths() {
        // v = 1 degenerates to a single snapshot comparison even at the
        // series edges, and mismatched series lengths skip only the
        // offsets that fall outside the *shorter* series.
        let series: Vec<CsiSnapshot> = (0..8)
            .map(|k| CsiSnapshot {
                per_tx: vec![cfr(k + 40, 12)],
            })
            .collect();
        let ns = NormSnapshot::series(&series);
        let short = &ns[..3];
        // Window 1 at the very edge of both series.
        let k = trrs_massive(short, &ns, 0, 0, 1);
        assert!((k - trrs_norm(&ns[0], &ns[0])).abs() < 1e-12);
        // Centred at the short series' last sample with a block of 5:
        // offsets +1/+2 run off `short`, so the mean is over {-2,-1,0}
        // only — pin it against the hand-built mean.
        let k = trrs_massive(short, &ns, 2, 2, 5);
        let want =
            (trrs_norm(&ns[0], &ns[0]) + trrs_norm(&ns[1], &ns[1]) + trrs_norm(&ns[2], &ns[2]))
                / 3.0;
        assert!((k - want).abs() < 1e-12);
        // A block position entirely outside the short series is 0.
        assert_eq!(trrs_massive(short, &ns, 6, 6, 3), 0.0);
    }

    #[test]
    fn massive_with_v1_is_single_snapshot() {
        let series: Vec<CsiSnapshot> = (0..4)
            .map(|k| CsiSnapshot {
                per_tx: vec![cfr(k + 20, 16)],
            })
            .collect();
        let ns = NormSnapshot::series(&series);
        let k1 = trrs_massive(&ns, &ns, 1, 3, 1);
        let direct = trrs_norm(&ns[1], &ns[3]);
        assert!((k1 - direct).abs() < 1e-12);
    }
}
