//! Motion reckoning primitives (paper §4.4): turning alignment delays into
//! speed, heading, rotation and integrated trajectories.

use rim_dsp::geom::{Point2, Vec2};
use rim_dsp::stats::wrap_angle;

/// Speed from an alignment delay: `v = Δd / Δt` (paper Fig. 1). Returns
/// `None` at lag 0 (the pair is not usable — the implied speed exceeds
/// `Δd·rate`).
pub fn speed_from_lag(separation_m: f64, lag_samples: isize, sample_rate_hz: f64) -> Option<f64> {
    if lag_samples == 0 {
        return None;
    }
    Some(separation_m * sample_rate_hz / lag_samples.unsigned_abs() as f64)
}

/// Device-frame heading from a pair's direction and the sign of its
/// alignment delay: positive lag means the follower `i` retraces the
/// leader `j`, i.e. motion along `i → j`; negative lag is the opposite
/// direction (§4.4 (2)).
pub fn heading_from_lag(pair_direction: f64, lag_samples: isize) -> Option<f64> {
    match lag_samples.signum() {
        0 => None,
        1 => Some(wrap_angle(pair_direction)),
        _ => Some(wrap_angle(pair_direction + std::f64::consts::PI)),
    }
}

/// Speed from a *fractional* (sub-sample refined) alignment delay.
/// Returns `None` when the delay magnitude is below half a sample (the
/// implied speed would be unresolvable).
pub fn speed_from_frac_lag(
    separation_m: f64,
    lag_samples: f64,
    sample_rate_hz: f64,
) -> Option<f64> {
    if lag_samples.abs() < 0.5 || !lag_samples.is_finite() {
        return None;
    }
    Some(separation_m * sample_rate_hz / lag_samples.abs())
}

/// Device-frame heading from a fractional delay's sign.
pub fn heading_from_frac_lag(pair_direction: f64, lag_samples: f64) -> Option<f64> {
    if lag_samples.abs() < 0.5 || !lag_samples.is_finite() {
        return None;
    }
    if lag_samples > 0.0 {
        Some(wrap_angle(pair_direction))
    } else {
        Some(wrap_angle(pair_direction + std::f64::consts::PI))
    }
}

/// Signed angular rate from a fractional ring-pair delay.
pub fn angular_rate_from_frac_lag(
    arc_separation_m: f64,
    radius_m: f64,
    lag_samples: f64,
    sample_rate_hz: f64,
) -> Option<f64> {
    if lag_samples.abs() < 0.5 || !lag_samples.is_finite() || radius_m <= 0.0 {
        return None;
    }
    Some(arc_separation_m * sample_rate_hz / lag_samples / radius_m)
}

/// Signed angular rate from a ring-adjacent pair's delay during in-place
/// rotation: the antenna travels the arc `arc_separation` in `lag`
/// samples along a circle of `radius`; positive lag on a CCW-oriented
/// ring pair means CCW (positive) rotation.
pub fn angular_rate_from_lag(
    arc_separation_m: f64,
    radius_m: f64,
    lag_samples: isize,
    sample_rate_hz: f64,
) -> Option<f64> {
    if lag_samples == 0 || radius_m <= 0.0 {
        return None;
    }
    let v = arc_separation_m * sample_rate_hz / lag_samples as f64;
    Some(v / radius_m)
}

/// Integrates a per-sample speed series into travelled distance, counting
/// only samples flagged as moving. `d = ∫ v dτ` (§4.4 (1)).
pub fn integrate_distance(speed_mps: &[f64], moving: &[bool], sample_rate_hz: f64) -> f64 {
    assert_eq!(speed_mps.len(), moving.len(), "series must align");
    let dt = 1.0 / sample_rate_hz;
    speed_mps
        .iter()
        .zip(moving)
        .filter(|(v, &m)| m && v.is_finite())
        .map(|(v, _)| v * dt)
        .sum()
}

/// Fraction of a series that carries a finite value — the
/// alignment-coverage ratio behind [`crate::pipeline::Confidence`]
/// (per-sample estimates use `NaN` for "unresolved"). Empty series
/// cover nothing.
pub fn fraction_finite(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|v| v.is_finite()).count() as f64 / xs.len() as f64
}

/// Integrates per-sample speed and *world-frame* heading into a position
/// track starting at `start`. Samples with no heading hold position.
pub fn integrate_trajectory(
    speed_mps: &[f64],
    heading_world: &[Option<f64>],
    sample_rate_hz: f64,
    start: Point2,
) -> Vec<Point2> {
    assert_eq!(speed_mps.len(), heading_world.len(), "series must align");
    let dt = 1.0 / sample_rate_hz;
    let mut pos = start;
    let mut out = Vec::with_capacity(speed_mps.len());
    for (&v, h) in speed_mps.iter().zip(heading_world) {
        if let Some(theta) = h {
            if v.is_finite() && v > 0.0 {
                pos += Vec2::from_angle(*theta) * (v * dt);
            }
        }
        out.push(pos);
    }
    out
}

/// The theoretical maximum deviation angle tolerated by virtual antenna
/// alignment: `α_max = arcsin(δ / Δd)` with ambiguity-free TRRS peak width
/// `δ ≈ 0.2 λ` (paper §3.2, "Deviated retracing") — ≈24° at Δd = λ/2.
pub fn max_deviation_angle(wavelength_m: f64, separation_m: f64) -> f64 {
    let ratio = (0.2 * wavelength_m / separation_m).clamp(-1.0, 1.0);
    ratio.asin()
}

/// The distance overestimation factor `1 / cos α` caused by approximating
/// the deviated separation `Δd·cos α` with `Δd` (§3.2).
pub fn deviation_overestimate(alpha: f64) -> f64 {
    1.0 / alpha.cos()
}

/// Mean distance overestimate over uniformly distributed headings for an
/// array with angular resolution `resolution` (deviations spread over
/// `±resolution/2`): 1.20 % for the hexagonal array's 30° (paper §3.2).
pub fn mean_deviation_overestimate(resolution: f64) -> f64 {
    // Average of 1/cos α over α ∈ [-res/2, res/2]:
    // (1/res)·∫ dα/cos α = ln|sec α + tan α| / α evaluated at res/2.
    let a = resolution / 2.0;
    if a <= 0.0 {
        return 1.0;
    }
    ((1.0 / a.cos() + a.tan()).ln()) / a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn fraction_finite_counts_nan_as_uncovered() {
        assert_eq!(fraction_finite(&[]), 0.0);
        assert_eq!(fraction_finite(&[1.0, 2.0]), 1.0);
        let half = fraction_finite(&[1.0, f64::NAN, f64::INFINITY, 0.0]);
        assert!((half - 0.5).abs() < 1e-12, "{half}");
    }

    #[test]
    fn speed_basic() {
        // Δd = 2.58 cm retraced in 5 samples at 200 Hz → ~1.03 m/s.
        let v = speed_from_lag(0.0258, 5, 200.0).unwrap();
        assert!((v - 1.032).abs() < 1e-3);
        // Negative lag gives the same magnitude.
        assert_eq!(
            speed_from_lag(0.0258, -5, 200.0),
            speed_from_lag(0.0258, 5, 200.0)
        );
        assert_eq!(speed_from_lag(0.0258, 0, 200.0), None);
    }

    #[test]
    fn heading_follows_lag_sign() {
        assert_eq!(heading_from_lag(0.3, 4), Some(0.3));
        let back = heading_from_lag(0.3, -4).unwrap();
        assert!((back - wrap_angle(0.3 + PI)).abs() < 1e-12);
        assert_eq!(heading_from_lag(0.3, 0), None);
    }

    #[test]
    fn angular_rate_sign_and_magnitude() {
        // Hexagon: r = Δd = λ/2, arc = π/3·Δd. 10-sample delay at 200 Hz.
        let d = 0.0258;
        let arc = std::f64::consts::FRAC_PI_3 * d;
        let w = angular_rate_from_lag(arc, d, 10, 200.0).unwrap();
        // v = arc·200/10; ω = v / r = π/3·200/10 ≈ 20.9 rad/s.
        assert!((w - std::f64::consts::FRAC_PI_3 * 20.0).abs() < 1e-9);
        let w_cw = angular_rate_from_lag(arc, d, -10, 200.0).unwrap();
        assert!((w + w_cw).abs() < 1e-12, "opposite lag, opposite sign");
        assert_eq!(angular_rate_from_lag(arc, d, 0, 200.0), None);
        assert_eq!(angular_rate_from_lag(arc, 0.0, 5, 200.0), None);
    }

    #[test]
    fn distance_integration_gates_on_movement() {
        let speed = vec![1.0; 100];
        let mut moving = vec![true; 100];
        for m in moving.iter_mut().skip(50) {
            *m = false;
        }
        let d = integrate_distance(&speed, &moving, 100.0);
        assert!((d - 0.5).abs() < 1e-12, "only the moving half counts");
    }

    #[test]
    fn distance_ignores_nan() {
        let speed = vec![1.0, f64::NAN, 1.0];
        let moving = vec![true, true, true];
        let d = integrate_distance(&speed, &moving, 1.0);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn trajectory_integration_square() {
        // 1 m east then 1 m north at 1 m/s, 100 Hz.
        let n = 100;
        let mut speed = vec![1.0; 2 * n];
        speed[0] = 0.0; // first sample has no displacement yet
        let mut heading: Vec<Option<f64>> = vec![Some(0.0); n];
        heading.extend(vec![Some(FRAC_PI_2); n]);
        let track = integrate_trajectory(&speed, &heading, 100.0, Point2::ORIGIN);
        let end = *track.last().unwrap();
        assert!((end.x - 0.99).abs() < 0.02, "{end:?}");
        assert!((end.y - 1.0).abs() < 0.02, "{end:?}");
    }

    #[test]
    fn trajectory_holds_without_heading() {
        let speed = vec![1.0; 10];
        let heading = vec![None; 10];
        let track = integrate_trajectory(&speed, &heading, 10.0, Point2::new(2.0, 3.0));
        assert!(track
            .iter()
            .all(|p| p.distance(Point2::new(2.0, 3.0)) < 1e-12));
    }

    #[test]
    fn deviation_angles_match_paper() {
        // δ = 0.2λ, Δd = λ/2 → α_max = arcsin(0.4) ≈ 23.6° (paper: "approximately 24°").
        let lambda = 0.0517;
        let a = max_deviation_angle(lambda, lambda / 2.0);
        assert!((a.to_degrees() - 23.58).abs() < 0.1, "{}", a.to_degrees());
        // Worst-case overestimate at 15°: 3.53 % (paper §3.2).
        let worst = deviation_overestimate(15f64.to_radians());
        assert!(((worst - 1.0) * 100.0 - 3.53).abs() < 0.02, "{worst}");
        // Mean over ±15°: 1.20 % (paper §3.2).
        let mean = mean_deviation_overestimate(30f64.to_radians());
        assert!(((mean - 1.0) * 100.0 - 1.15).abs() < 0.1, "{mean}");
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = integrate_distance(&[1.0], &[true, false], 1.0);
    }
}
