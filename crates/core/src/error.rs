//! The error type for user-reachable `rim-core` entry points.
//!
//! Constructors ([`crate::Rim::new`], [`crate::RimStream::new`]) and the
//! session entry points ([`crate::pipeline::Session::analyze`],
//! [`crate::stream::StreamSession::push`]) validate their inputs and
//! return one of these instead of panicking, with messages written to be
//! actionable (they name the offending parameter and the fix).

use std::fmt;

/// Why a RIM engine could not be built or run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A [`crate::RimConfig`] parameter is out of range. The message
    /// names the parameter, the offending value, and the valid range.
    Config(String),
    /// The array geometry cannot support alignment (fewer than two
    /// antennas, so no antenna pairs exist).
    Geometry(String),
    /// A recording / snapshot set whose antenna count differs from the
    /// engine's geometry.
    AntennaMismatch {
        /// Antennas in the engine's geometry.
        expected: usize,
        /// Antennas in the offered data.
        got: usize,
    },
    /// A CSI series too short to analyze at all.
    SeriesTooShort {
        /// Minimum usable sample count.
        needed: usize,
        /// Samples offered.
        got: usize,
    },
    /// A CSI snapshot containing NaN or infinite values. TRRS on
    /// non-finite input silently poisons every downstream estimate, so
    /// the engine rejects it at the boundary instead.
    NonFiniteCsi {
        /// Antenna index of the offending snapshot.
        antenna: usize,
        /// Sample index (or stream sequence number) of the snapshot.
        sample: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Geometry(msg) => write!(f, "unsupported geometry: {msg}"),
            Error::AntennaMismatch { expected, got } => write!(
                f,
                "antenna count mismatch: the array geometry has {expected} antennas \
                 but the CSI data has {got}; record with the same array or pass the \
                 matching geometry"
            ),
            Error::SeriesTooShort { needed, got } => write!(
                f,
                "CSI series too short: got {got} samples but at least {needed} are \
                 needed (one movement-detection lag of history); record longer or \
                 lower the sample rate"
            ),
            Error::NonFiniteCsi { antenna, sample } => write!(
                f,
                "non-finite CSI: antenna {antenna} at sample {sample} contains NaN \
                 or infinite values; sanitize the capture (rim-csi rejects such \
                 packets as loss) or drop the sample before offering it"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let e = Error::Config("threads = 9999 exceeds the cap of 256".into());
        assert!(e.to_string().contains("9999"));
        let e = Error::AntennaMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("3 antennas"));
        assert!(e.to_string().contains("has 2"));
        let e = Error::SeriesTooShort { needed: 11, got: 4 };
        assert!(e.to_string().contains("11"), "{e}");
        let e = Error::Geometry("1 antenna".into());
        assert!(e.to_string().contains("1 antenna"));
        let e = Error::NonFiniteCsi {
            antenna: 2,
            sample: 41,
        };
        assert!(e.to_string().contains("antenna 2"), "{e}");
        assert!(e.to_string().contains("sample 41"), "{e}");
    }
}
