//! WiBall-style single-antenna speed estimation (paper §7, "Incorporating
//! existing techniques such as WiBall [46], which is based on TRRS as
//! well, may offer (less accurate) distance estimation in arbitrary
//! directions, without the need of a 3D array").
//!
//! In a rich scattering field the spatial autocorrelation of the channel
//! follows `J₀(2πd/λ)`, so the *self*-TRRS of one moving antenna decays
//! with travelled distance `d` in a known shape regardless of direction.
//! Measuring how many samples the TRRS needs to fall to the `J₀` first
//! zero gives speed from a single antenna — no retracing geometry at all.
//! It is less accurate than RIM's virtual antenna alignment (the decay
//! shape is statistical, not a sharp alignment peak) but works for any
//! motion direction, including out-of-plane; the ablation harness
//! compares the two.

use crate::trrs::{trrs_massive, NormSnapshot};

/// The first zero of `J₀(x)` is at x ≈ 2.4048, so the self-TRRS
/// (amplitude correlation squared) first vanishes at
/// `d₀ = 2.4048·λ/(2π) ≈ 0.3827·λ`.
pub const J0_FIRST_ZERO_DISTANCE_WAVELENGTHS: f64 = 2.404_825 / std::f64::consts::TAU;

/// Configuration of the WiBall-style estimator.
#[derive(Debug, Clone, Copy)]
pub struct WiballConfig {
    /// Carrier wavelength, metres.
    pub wavelength: f64,
    /// Virtual-massive block length for the self-TRRS.
    pub virtual_antennas: usize,
    /// Maximum TRRS the first valley may have: a genuine `J₀` zero dips
    /// well below the static value of ≈1, so a "minimum" above this is
    /// treated as no-motion.
    pub max_valley_level: f64,
    /// Minimum drop from the lag-1 TRRS down to the valley. A genuine
    /// `J₀` zero sits far below the adjacent-sample correlation, while a
    /// static antenna's noise plateau is flat — its wiggles can cross
    /// `max_valley_level` when the SNR puts the plateau near that line,
    /// but they never have contrast.
    pub min_valley_contrast: f64,
    /// Maximum lag searched, samples.
    pub max_lag: usize,
}

impl WiballConfig {
    /// Defaults for a sample rate at 5.8 GHz.
    pub fn for_sample_rate(sample_rate_hz: f64) -> Self {
        Self {
            wavelength: 299_792_458.0 / 5.8e9,
            virtual_antennas: ((0.1 * sample_rate_hz).round() as usize).clamp(3, 30),
            max_valley_level: 0.8,
            min_valley_contrast: 0.1,
            max_lag: ((0.5 * sample_rate_hz).round() as usize).max(8),
        }
    }
}

/// Instantaneous speed at sample `t` from one antenna's self-TRRS decay.
///
/// Against a finite-bandwidth floor the `J₀` first zero appears as the
/// curve's *first local minimum* rather than a zero crossing, so we locate
/// that valley (with parabolic sub-sample refinement) and map its lag to
/// the theoretical distance `d₀ ≈ 0.383 λ`. Returns `None` when no valley
/// exists within the search window (static or too slow).
pub fn speed_at(
    series: &[NormSnapshot],
    t: usize,
    config: &WiballConfig,
    sample_rate_hz: f64,
) -> Option<f64> {
    let d0 = J0_FIRST_ZERO_DISTANCE_WAVELENGTHS * config.wavelength;
    let max_lag = config.max_lag.min(t);
    if max_lag < 3 {
        return None;
    }
    let curve: Vec<f64> = (0..=max_lag)
        .map(|lag| trrs_massive(series, series, t, t - lag, config.virtual_antennas))
        .collect();
    // First local minimum after the initial descent.
    for lag in 2..max_lag {
        if curve[lag] <= curve[lag - 1] && curve[lag] < curve[lag + 1] {
            if curve[lag] > config.max_valley_level {
                return None; // Shallow wiggle near 1: not a J₀ zero.
            }
            if curve[1] - curve[lag] < config.min_valley_contrast {
                return None; // Flat noise plateau, not a J₀ descent.
            }
            // Parabolic refinement of the valley position.
            let g_m = curve[lag - 1];
            let g_0 = curve[lag];
            let g_p = curve[lag + 1];
            let denom = g_m - 2.0 * g_0 + g_p;
            let delta = if denom > 1e-12 {
                (0.5 * (g_m - g_p) / denom).clamp(-0.5, 0.5)
            } else {
                0.0
            };
            let lag_f = lag as f64 + delta;
            return Some(d0 * sample_rate_hz / lag_f);
        }
    }
    None
}

/// Per-sample speed series (NaN where unresolvable) from one antenna.
pub fn speed_series(
    series: &[NormSnapshot],
    config: &WiballConfig,
    sample_rate_hz: f64,
) -> Vec<f64> {
    (0..series.len())
        .map(|t| speed_at(series, t, config, sample_rate_hz).unwrap_or(f64::NAN))
        .collect()
}

/// Distance over a range by integrating the speed series, bridging
/// unresolved samples with the last known speed.
pub fn integrate_distance(speeds: &[f64], sample_rate_hz: f64) -> f64 {
    let dt = 1.0 / sample_rate_hz;
    let mut last = 0.0;
    let mut total = 0.0;
    for &v in speeds {
        let use_v = if v.is_finite() { v } else { last };
        total += use_v * dt;
        if v.is_finite() {
            last = v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_array::HALF_WAVELENGTH;
    use rim_channel::simulator::{ApConfig, ChannelSimulator};
    use rim_channel::trajectory::{dwell, line, OrientationMode};
    use rim_channel::{uniform_field, Floorplan, RayTracer, SubcarrierLayout, TracerConfig};
    use rim_csi::recorder::{CsiRecorder, DeviceConfig, RecorderConfig};
    use rim_dsp::geom::{Point2, Vec2};

    fn sim() -> ChannelSimulator {
        let scat = uniform_field(
            Point2::new(-12.0, -12.0),
            Point2::new(12.0, 12.0),
            120,
            0.35,
            5,
        );
        let tracer = RayTracer::new(
            Floorplan::empty(),
            scat,
            Vec::new(),
            TracerConfig::default(),
        );
        ChannelSimulator::new(
            tracer,
            SubcarrierLayout::ht40_5ghz(),
            ApConfig::standard(Point2::new(-6.0, 0.0)),
        )
    }

    fn record_single_antenna(traj: &rim_channel::Trajectory) -> Vec<NormSnapshot> {
        let s = sim();
        let dense = CsiRecorder::new(
            &s,
            DeviceConfig::single_nic(vec![Vec2::ZERO]),
            RecorderConfig::default(),
        )
        .record(traj)
        .interpolated()
        .unwrap();
        NormSnapshot::series(&dense.antennas[0])
    }

    #[test]
    fn estimates_speed_scale_from_one_antenna() {
        let fs = 200.0;
        let traj = line(
            Point2::new(0.0, 2.0),
            0.35, // arbitrary direction — WiBall does not care
            1.0,
            1.0,
            fs,
            OrientationMode::FollowPath,
        );
        let series = record_single_antenna(&traj);
        let cfg = WiballConfig::for_sample_rate(fs);
        let speeds = speed_series(&series, &cfg, fs);
        let valid: Vec<f64> = speeds[40..160]
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        assert!(valid.len() > 60, "mostly resolvable: {}", valid.len());
        let med = rim_dsp::stats::median(&valid);
        // Decimeter-class accuracy (the paper calls WiBall "less accurate").
        assert!((med - 1.0).abs() < 0.45, "median speed {med} vs 1.0 m/s");
    }

    #[test]
    fn static_antenna_gives_no_speed() {
        let fs = 200.0;
        let traj = dwell(Point2::new(0.5, 1.5), 0.0, 0.8, fs);
        let series = record_single_antenna(&traj);
        let cfg = WiballConfig::for_sample_rate(fs);
        let speeds = speed_series(&series, &cfg, fs);
        let resolved = speeds.iter().filter(|v| v.is_finite()).count();
        assert!(
            resolved < speeds.len() / 10,
            "static: almost nothing resolves ({resolved}/{})",
            speeds.len()
        );
    }

    #[test]
    fn integrate_bridges_gaps() {
        let v = [f64::NAN, 1.0, f64::NAN, 1.0, f64::NAN];
        let d = integrate_distance(&v, 1.0);
        // 0 (no last) + 1 + 1 (bridge) + 1 + 1 (bridge) = 4.
        assert!((d - 4.0).abs() < 1e-12);
    }

    #[test]
    fn collapse_distance_constant_matches_theory() {
        let d0 = J0_FIRST_ZERO_DISTANCE_WAVELENGTHS;
        assert!((d0 - 0.3827).abs() < 1e-3, "{d0}");
        let lambda = 2.0 * HALF_WAVELENGTH;
        assert!((d0 * lambda - 0.0198).abs() < 3e-4, "≈2 cm at 5.8 GHz");
    }
}
