//! The end-to-end RIM pipeline (paper §4): movement detection → candidate
//! pair pre-detection → alignment matrices for the survivors → DP peak
//! tracking → post-detection of the aligned pairs → speed / heading /
//! rotation reckoning, integrated into a motion estimate.

use crate::alignment::{
    base_cross_trrs_range_prec, virtual_average_range_with, AlignmentConfig, AlignmentMatrix,
};
use crate::error::Error;
use crate::incremental::ColumnCache;
use crate::movement::{movement_indicator, moving_segments, MovementConfig};
use crate::reckoning::{
    angular_rate_from_frac_lag, fraction_finite, heading_from_frac_lag, integrate_trajectory,
    speed_from_frac_lag,
};
use crate::tracking_dp::{track_peaks, DpConfig, TrackedPath};
use crate::trrs::NormSnapshot;
use rim_array::ArrayGeometry;
use rim_csi::recorder::DenseCsi;
use rim_dsp::filter::{median_filter, savitzky_golay};
use rim_dsp::geom::Point2;
use rim_dsp::stats::{circular_mean, wrap_angle};
use rim_obs::{incremental_metric, stage, NullProbe, Probe};
use rim_par::Pool;
use std::sync::Arc;

/// Numeric precision of the TRRS/alignment kernels (see `DESIGN.md`,
/// "Precision modes").
///
/// Precision governs only the *values* of the cross-TRRS matrices: which
/// samples count as moving, how segments are bounded, and which events a
/// stream emits in which order are computed identically in both modes
/// (movement detection always runs the f64 self-TRRS — it is
/// threshold-sensitive and cheap, `O(T·S·N)` against the alignment
/// stage's `O(T·W·S·N)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full `f64` kernels — bit-identical to the historical scalar
    /// pipeline at any thread count and on every SIMD dispatch tier. The
    /// default.
    #[default]
    F64Reference,
    /// Reduced-precision `f32` kernels: CSI is narrowed subcarrier-wise
    /// to `f32`, the TRRS dot products accumulate in `f32` at twice the
    /// SIMD lane width, and the magnitude skips the `hypot` overflow
    /// guard. Error budget (derived in `DESIGN.md`): segment distance
    /// within 1 mm and heading within 0.1° of the reference on clean
    /// trajectories.
    F32Fast,
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct RimConfig {
    /// Alignment-matrix parameters (lag window `W`, virtual antennas `V`).
    pub alignment: AlignmentConfig,
    /// Movement-detection parameters.
    pub movement: MovementConfig,
    /// DP peak-tracking parameters.
    pub dp: DpConfig,
    /// Column stride of the cheap pre-detection pass (§4.3).
    pub pre_stride: usize,
    /// Keep groups whose pre-detection prominence is at least this
    /// fraction of the best group's.
    pub pre_keep_ratio: f64,
    /// Minimum TRRS prominence of the ridge above the column's noise
    /// floor for a sample to contribute estimates (post-detection gate).
    /// Relative, because the absolute cross-antenna TRRS floor varies
    /// with multipath richness.
    pub min_peak_prominence: f64,
    /// Hysteresis margin for switching the active group between samples.
    pub switch_margin: f64,
    /// Half-width (seconds) of the speed smoothing window.
    pub smooth_half_s: f64,
    /// Minimum duration (seconds) of a moving segment (debounce).
    pub min_segment_s: f64,
    /// Fraction of ring-pair groups that must be simultaneously prominent
    /// to declare a rotation (§4.4 (3)).
    pub rotation_fraction: f64,
    /// Penalty weight on path jumpiness in post-detection scores.
    pub jumpiness_penalty: f64,
    /// Compensate each moving segment with the minimum initial motion Δd
    /// (§5, "Minimum initial motion").
    pub compensate_initial_motion: bool,
    /// Parabolic sub-sample refinement of ridge lags. An implementation
    /// improvement over the paper (which uses integer delays); turning it
    /// off reproduces the paper's quantisation behaviour, e.g. the
    /// sampling-rate knee of Fig. 16.
    pub subsample_refinement: bool,
    /// Continuous heading refinement (the paper's §7 "angle resolution"
    /// future work): instead of snapping to the chosen group's discrete
    /// direction, take the prominence-weighted circular mean over every
    /// group showing genuine alignment — deviated motion between two
    /// resolvable directions then interpolates between them.
    pub continuous_heading: bool,
    /// Maintain the incremental alignment engine while streaming
    /// ([`crate::RimStream`]): every ingested sample appends its
    /// cross-TRRS columns to an online cache, so a segment flush reuses
    /// them instead of recomputing the whole matrix at close. Final
    /// estimates are bit-identical either way — this only moves the work
    /// off the flush spike and onto a flat per-sample cost.
    pub incremental: bool,
    /// Cadence, in ingested samples, of
    /// [`crate::StreamEvent::Provisional`] estimates while a movement
    /// segment is still open. `0` disables provisional events; a nonzero
    /// cadence requires [`RimConfig::incremental`].
    pub provisional_every: usize,
    /// The sample rate the configuration was derived for, Hz. Used by the
    /// streaming front-end and by [`RimConfig::validate`]; offline
    /// analysis reads the actual rate from the recording.
    pub sample_rate_hz: f64,
    /// Gap tolerance and degraded-mode watchdog knobs for the streaming
    /// front-end ([`crate::RimStream`]).
    pub gap: GapConfig,
    /// Worker threads for the rim-par pool. `0` (the default) resolves
    /// from the `RIM_THREADS` environment variable, falling back to the
    /// machine's available parallelism; `1` forces the serial path.
    pub threads: usize,
    /// Tile size (time columns per work unit) for the pool. `0` (the
    /// default) lets the pool pick ~8 tiles per worker. Tiling never
    /// changes results — parallel output is bit-identical to serial.
    pub tile_columns: usize,
    /// Numeric precision of the TRRS/alignment kernels. The default
    /// [`Precision::F64Reference`] reproduces the historical output bit
    /// for bit; [`Precision::F32Fast`] trades a documented error budget
    /// for per-sample throughput. Precision never changes movement
    /// detection, segmentation, or event ordering.
    pub precision: Precision,
    /// Serve-path trace sampling cadence: trace every Nth admitted
    /// sample end to end (admission → queue → batch → ingest → flush →
    /// wire) into a bounded [`rim_obs::TraceRecord`] ring. `0` (the
    /// default) disables tracing entirely — the streaming hot path then
    /// carries no trace state at all. Tracing is observational: results
    /// are bit-identical with it on or off.
    pub trace_sample_every: usize,
}

/// Gap tolerance and degraded-mode watchdog configuration for the
/// streaming front-end (paper §5/§7: loss is tolerated "to a certain
/// extent by interpolation"; beyond that extent the stream must split
/// segments rather than integrate garbage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapConfig {
    /// Longest run of entirely missing samples the stream bridges by
    /// linear interpolation. A longer gap closes the open segment and
    /// restarts alignment after it.
    pub max_gap: usize,
    /// Sliding window (samples) over which the watchdog measures the
    /// interpolated-input fraction.
    pub watchdog_window: usize,
    /// Enter degraded mode when the windowed interpolated fraction
    /// reaches this value.
    pub degraded_enter: f64,
    /// Leave degraded mode once the windowed fraction falls back to this
    /// value (hysteresis: must not exceed `degraded_enter`).
    pub degraded_exit: f64,
    /// Minimum alignment-coverage ratio ([`Confidence::alignment_coverage`])
    /// a flushed segment needs before the watchdog flags alignment
    /// quality as degraded.
    pub min_coverage: f64,
}

impl GapConfig {
    /// Paper-style defaults for a sample rate: bridge up to 100 ms of
    /// loss, watch a 1 s window, degrade at 35 % interpolated input and
    /// recover below 15 %.
    pub fn for_sample_rate(sample_rate_hz: f64) -> Self {
        Self {
            max_gap: ((0.1 * sample_rate_hz).round() as usize).max(2),
            watchdog_window: ((1.0 * sample_rate_hz).round() as usize).max(8),
            degraded_enter: 0.35,
            degraded_exit: 0.15,
            min_coverage: 0.2,
        }
    }
}

impl RimConfig {
    /// Paper-style defaults for a sample rate.
    pub fn for_sample_rate(sample_rate_hz: f64) -> Self {
        Self {
            alignment: AlignmentConfig::for_sample_rate(sample_rate_hz),
            movement: MovementConfig::for_sample_rate(sample_rate_hz),
            dp: DpConfig::default(),
            pre_stride: 4,
            pre_keep_ratio: 0.85,
            min_peak_prominence: 0.07,
            switch_margin: 0.05,
            smooth_half_s: 0.15,
            min_segment_s: 0.25,
            rotation_fraction: 0.99,
            jumpiness_penalty: 0.02,
            compensate_initial_motion: true,
            subsample_refinement: true,
            continuous_heading: false,
            incremental: true,
            provisional_every: ((0.25 * sample_rate_hz).round() as usize).max(1),
            sample_rate_hz,
            gap: GapConfig::for_sample_rate(sample_rate_hz),
            threads: 0,
            tile_columns: 0,
            precision: Precision::default(),
            trace_sample_every: 0,
        }
    }

    /// Restricts the lag window to cover speeds down to `min_speed` m/s
    /// for an antenna separation `sep` — "a larger window … is not
    /// needed" (§3.2).
    pub fn with_min_speed(mut self, min_speed: f64, sep: f64, sample_rate_hz: f64) -> Self {
        let w = (sep / min_speed * sample_rate_hz).ceil() as usize;
        self.alignment.window = w.max(4);
        self
    }

    /// Sets the worker-thread count (`0` = auto, see
    /// [`RimConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the serve-path trace sampling cadence (`0` = off, see
    /// [`RimConfig::trace_sample_every`]).
    pub fn with_trace_sampling(mut self, every: usize) -> Self {
        self.trace_sample_every = every;
        self
    }

    /// Selects the kernel precision (see [`Precision`]; the default is
    /// the bit-exact [`Precision::F64Reference`]).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Checks every parameter against its valid range, with messages
    /// that name the parameter, the offending value, and the fix. Called
    /// by [`Rim::new`] and [`crate::RimStream::new`], so a hand-edited
    /// configuration fails fast instead of panicking mid-pipeline.
    pub fn validate(&self) -> Result<(), Error> {
        let bad = |msg: String| Err(Error::Config(msg));
        if !(self.sample_rate_hz.is_finite() && self.sample_rate_hz > 0.0) {
            return bad(format!(
                "sample_rate_hz = {}; the sample rate must be a positive, finite \
                 frequency (build the config with RimConfig::for_sample_rate)",
                self.sample_rate_hz
            ));
        }
        if self.alignment.window == 0 {
            return bad(
                "alignment.window = 0; the lag half-window W must be at least 1 sample \
                 (size it to antenna separation / slowest speed × sample rate)"
                    .into(),
            );
        }
        if self.alignment.window > 100_000 {
            return bad(format!(
                "alignment.window = {}; windows beyond 100000 lags make the O(T·W) \
                 matrices intractable — lower the window or the sample rate",
                self.alignment.window
            ));
        }
        if self.alignment.virtual_antennas == 0 {
            return bad("alignment.virtual_antennas = 0; Eqn. 4 needs V >= 1 \
                 (V = 1 disables virtual-massive averaging)"
                .into());
        }
        if self.movement.lag == 0 {
            return bad(
                "movement.lag = 0; movement detection compares against history, \
                 so the lag must be at least 1 sample"
                    .into(),
            );
        }
        if !(self.movement.threshold > 0.0 && self.movement.threshold <= 1.0) {
            return bad(format!(
                "movement.threshold = {}; the self-TRRS threshold must lie in (0, 1] \
                 (TRRS is normalised to that range)",
                self.movement.threshold
            ));
        }
        if self.pre_stride == 0 {
            return bad(
                "pre_stride = 0; the pre-detection pass samples every pre_stride-th \
                 column, so the stride must be at least 1"
                    .into(),
            );
        }
        if !(self.pre_keep_ratio > 0.0 && self.pre_keep_ratio <= 1.0) {
            return bad(format!(
                "pre_keep_ratio = {}; the keep ratio is a fraction of the best \
                 group's prominence and must lie in (0, 1]",
                self.pre_keep_ratio
            ));
        }
        if self.gap.watchdog_window == 0 {
            return bad(
                "gap.watchdog_window = 0; the degraded-mode watchdog needs at \
                 least one sample of history (about one second of samples is a \
                 sensible window)"
                    .into(),
            );
        }
        if self.gap.max_gap > self.gap.watchdog_window {
            return bad(format!(
                "gap.max_gap = {} exceeds gap.watchdog_window = {}; a bridged gap \
                 longer than the watchdog window could never trip degraded mode — \
                 shrink max_gap or widen the window",
                self.gap.max_gap, self.gap.watchdog_window
            ));
        }
        for (name, v) in [
            ("gap.degraded_enter", self.gap.degraded_enter),
            ("gap.degraded_exit", self.gap.degraded_exit),
            ("gap.min_coverage", self.gap.min_coverage),
        ] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return bad(format!(
                    "{name} = {v}; watchdog thresholds are fractions and must lie \
                     in [0, 1]"
                ));
            }
        }
        if self.gap.degraded_exit > self.gap.degraded_enter {
            return bad(format!(
                "gap.degraded_exit = {} exceeds gap.degraded_enter = {}; the exit \
                 threshold must sit at or below the entry threshold (hysteresis), \
                 or the watchdog would oscillate",
                self.gap.degraded_exit, self.gap.degraded_enter
            ));
        }
        if self.provisional_every > 0 && !self.incremental {
            return bad(format!(
                "provisional_every = {} with incremental = false; provisional \
                 estimates are produced by the incremental engine — enable \
                 incremental or set provisional_every = 0",
                self.provisional_every
            ));
        }
        if self.threads > rim_par::MAX_THREADS {
            return bad(format!(
                "threads = {} exceeds the cap of {}; use 0 to size the pool from \
                 the machine's available parallelism",
                self.threads,
                rim_par::MAX_THREADS
            ));
        }
        Ok(())
    }
}

/// Kind of motion within a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Translation (possibly with direction changes inside the segment).
    Translation,
    /// In-place rotation.
    Rotation,
}

/// How much an estimate should be trusted — the degraded-mode contract
/// that lets downstream fusion down-weight bad stretches instead of
/// diverging on them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Confidence {
    /// Mean TRRS prominence of the tracked ridge above each column's
    /// noise floor, over the samples that resolved an estimate. Higher
    /// is sharper alignment; values near zero mean the ridge barely
    /// cleared the post-detection gate.
    pub peak_margin: f64,
    /// Fraction of the segment's input samples that were synthesized by
    /// gap interpolation rather than received (0 for offline analyses of
    /// already-dense recordings).
    pub interpolated_fraction: f64,
    /// Fraction of the segment's samples that resolved a speed/rate from
    /// a genuine alignment (before gap bridging).
    pub alignment_coverage: f64,
}

impl Confidence {
    /// Collapses the three signals into one weight in `[0, 1]`:
    /// alignment coverage scaled down by the interpolated fraction, with
    /// the peak margin saturating at the post-detection gate's scale
    /// (0.2 ≈ a comfortably prominent ridge).
    pub fn score(&self) -> f64 {
        let margin = (self.peak_margin / 0.2).clamp(0.0, 1.0);
        let coverage = self.alignment_coverage.clamp(0.0, 1.0);
        let integrity = 1.0 - self.interpolated_fraction.clamp(0.0, 1.0);
        (margin * coverage * integrity).clamp(0.0, 1.0)
    }
}

/// Aggregate estimate for one moving segment.
#[derive(Debug, Clone)]
pub struct SegmentEstimate {
    /// First sample index of the segment.
    pub start: usize,
    /// One past the last sample index.
    pub end: usize,
    /// Motion kind.
    pub kind: SegmentKind,
    /// Travelled distance in the segment, metres (0 for rotations).
    pub distance_m: f64,
    /// Dominant device-frame heading of the segment, if translation.
    pub heading_device: Option<f64>,
    /// Net signed rotation, radians (0 for translations).
    pub rotation_rad: f64,
    /// How much this estimate should be trusted.
    pub confidence: Confidence,
}

/// The full motion estimate for a CSI recording.
#[derive(Debug, Clone)]
pub struct MotionEstimate {
    /// Sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Movement indicator (self-TRRS, §4.1) per sample.
    pub movement_indicator: Vec<f64>,
    /// Movement flag per sample.
    pub moving: Vec<bool>,
    /// Speed per sample, m/s (`NaN` where unknown, 0 where static).
    pub speed_mps: Vec<f64>,
    /// Device-frame heading per sample.
    pub heading_device: Vec<Option<f64>>,
    /// Signed angular rate per sample, rad/s (0 outside rotations).
    pub angular_rate: Vec<f64>,
    /// Per-segment aggregates.
    pub segments: Vec<SegmentEstimate>,
}

impl MotionEstimate {
    /// Total travelled distance over all translation segments, metres.
    pub fn total_distance(&self) -> f64 {
        self.segments.iter().map(|s| s.distance_m).sum()
    }

    /// Net signed rotation over all rotation segments, radians.
    pub fn total_rotation(&self) -> f64 {
        self.segments.iter().map(|s| s.rotation_rad).sum()
    }

    /// Integrates the estimate into a world-frame trajectory, given the
    /// initial position and device orientation. Device orientation is
    /// advanced by the estimated angular rate (RIM tracks orientation
    /// changes only through detected rotations).
    pub fn trajectory(&self, start: Point2, initial_orientation: f64) -> Vec<Point2> {
        let dt = 1.0 / self.sample_rate_hz;
        let mut orientation = initial_orientation;
        let mut heading_world = Vec::with_capacity(self.speed_mps.len());
        for (h, &w) in self.heading_device.iter().zip(&self.angular_rate) {
            orientation += w * dt;
            heading_world.push(h.map(|hd| wrap_angle(hd + orientation)));
        }
        // Replace NaN speeds with 0 for integration; the distance they
        // represent is covered by the initial-motion compensation.
        let speed: Vec<f64> = self
            .speed_mps
            .iter()
            .map(|v| if v.is_finite() { *v } else { 0.0 })
            .collect();
        integrate_trajectory(&speed, &heading_world, self.sample_rate_hz, start)
    }
}

/// The RIM engine: geometry + configuration + worker pool.
///
/// Analyses run through a [`Session`] built with [`Rim::session`]; the
/// [`Rim::analyze`] shorthand covers the common case. Construction
/// validates the configuration ([`RimConfig::validate`]) and geometry, so
/// every later failure mode is an [`Error`] rather than a panic.
///
/// ```
/// use rim_array::{ArrayGeometry, HALF_WAVELENGTH};
/// use rim_channel::trajectory::{line, OrientationMode};
/// use rim_channel::ChannelSimulator;
/// use rim_core::{Rim, RimConfig};
/// use rim_csi::{CsiRecorder, DeviceConfig, RecorderConfig};
/// use rim_dsp::geom::Point2;
///
/// // Simulate a 0.5 m push at 1 m/s and measure it from CSI alone.
/// let sim = ChannelSimulator::open_lab(7);
/// let geometry = ArrayGeometry::linear(3, HALF_WAVELENGTH);
/// let trajectory = line(Point2::new(0.0, 2.0), 0.0, 0.5, 1.0, 100.0,
///                       OrientationMode::FollowPath);
/// let csi = CsiRecorder::new(
///         &sim,
///         DeviceConfig::single_nic(geometry.offsets().to_vec()),
///         RecorderConfig::default(),
///     )
///     .record(&trajectory)
///     .interpolated()
///     .unwrap();
///
/// let config = RimConfig::for_sample_rate(100.0)
///     .with_min_speed(0.3, HALF_WAVELENGTH, 100.0);
/// let rim = Rim::new(geometry, config).unwrap();
/// let estimate = rim.session().analyze(&csi).unwrap();
/// assert!((estimate.total_distance() - 0.5).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Rim {
    geometry: ArrayGeometry,
    config: RimConfig,
    pool: Arc<Pool>,
}

/// A builder-style handle for running analyses against a [`Rim`] engine.
///
/// Created by [`Rim::session`]; by default un-instrumented
/// ([`NullProbe`]). Chain [`Session::probe`] to attach an observability
/// probe, then call [`Session::analyze`] or [`Session::analyze_batch`]:
///
/// ```no_run
/// # fn run(rim: &rim_core::Rim, csi: &rim_csi::recorder::DenseCsi)
/// #     -> Result<(), rim_core::Error> {
/// let recorder = rim_obs::Recorder::new();
/// let estimate = rim.session().probe(&recorder).analyze(csi)?;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Session<'r, P: Probe + ?Sized = NullProbe> {
    rim: &'r Rim,
    probe: &'r P,
}

impl Rim {
    /// Creates an engine, validating the configuration and geometry.
    ///
    /// # Errors
    /// [`Error::Config`] when a parameter is out of range (see
    /// [`RimConfig::validate`]); [`Error::Geometry`] when the array has
    /// fewer than two antennas (no pair to align).
    pub fn new(geometry: ArrayGeometry, config: RimConfig) -> Result<Self, Error> {
        config.validate()?;
        if geometry.n_antennas() < 2 {
            return Err(Error::Geometry(format!(
                "{} antenna(s); alignment needs at least two antennas to form a \
                 pair — use ArrayGeometry::linear(2, ..) or larger",
                geometry.n_antennas()
            )));
        }
        let pool = Arc::new(Pool::new(config.threads, config.tile_columns));
        Ok(Self {
            geometry,
            config,
            pool,
        })
    }

    /// The array geometry.
    pub fn geometry(&self) -> &ArrayGeometry {
        &self.geometry
    }

    /// The configuration.
    pub fn config(&self) -> &RimConfig {
        &self.config
    }

    /// The engine's worker pool (shared with sessions and streams).
    pub(crate) fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Starts an un-instrumented analysis session.
    pub fn session(&self) -> Session<'_, NullProbe> {
        Session {
            rim: self,
            probe: &NullProbe,
        }
    }

    /// Runs the full pipeline on a dense CSI recording. Shorthand for
    /// [`Rim::session`] + [`Session::analyze`].
    ///
    /// # Errors
    /// [`Error::AntennaMismatch`] when the recording's antenna count
    /// differs from the geometry's; [`Error::SeriesTooShort`] when the
    /// recording is shorter than one movement-detection lag.
    pub fn analyze(&self, csi: &DenseCsi) -> Result<MotionEstimate, Error> {
        self.session().analyze(csi)
    }

    /// Rejects input a session cannot analyze.
    fn check_input(&self, csi: &DenseCsi) -> Result<(), Error> {
        if csi.n_antennas() != self.geometry.n_antennas() {
            return Err(Error::AntennaMismatch {
                expected: self.geometry.n_antennas(),
                got: csi.n_antennas(),
            });
        }
        let needed = self.config.movement.lag + 1;
        if csi.n_samples() < needed {
            return Err(Error::SeriesTooShort {
                needed,
                got: csi.n_samples(),
            });
        }
        // The TRRS kernels score snapshots on mismatched subcarrier grids
        // as zero similarity instead of failing (unlike TX-count
        // disagreement, which truncates gracefully to the common prefix).
        // Inside one recording a grid mix is never intent: a capture that
        // interleaves 56/114/242-subcarrier snapshots would silently
        // score near-zero TRRS everywhere and reckon garbage. Reject
        // ragged grids at the boundary with the offending coordinates.
        let mut grid = None;
        for (a, series) in csi.antennas.iter().enumerate() {
            for (i, snap) in series.iter().enumerate() {
                let sc = snap.n_subcarriers();
                if snap.per_tx.iter().any(|cfr| cfr.len() != sc) {
                    return Err(Error::Geometry(format!(
                        "ragged CSI at antenna {a} sample {i}: \
                         TX streams disagree on subcarrier count"
                    )));
                }
                match grid {
                    None => grid = Some(sc),
                    Some(esc) if esc != sc => {
                        return Err(Error::Geometry(format!(
                            "mixed subcarrier grids in one recording: \
                             antenna {a} sample {i} has {sc} subcarriers, \
                             {esc} elsewhere"
                        )));
                    }
                    Some(_) => {}
                }
                // NaN/Inf CSI would silently poison every TRRS downstream
                // (the matrices, the DP costs, the movement indicator);
                // reject it at the boundary too.
                if !snap.is_finite() {
                    return Err(Error::NonFiniteCsi {
                        antenna: a,
                        sample: i,
                    });
                }
            }
        }
        Ok(())
    }

    /// Drains the pool's accumulated statistics into `probe` under
    /// [`stage::PARALLEL`].
    fn report_pool_stats<P: Probe + ?Sized>(&self, probe: &P) {
        let stats = self.pool.drain_stats();
        probe.gauge(stage::PARALLEL, "workers", self.pool.threads() as f64);
        probe.count(stage::PARALLEL, "runs", stats.runs);
        probe.count(stage::PARALLEL, "parallel_runs", stats.parallel_runs);
        probe.count(stage::PARALLEL, "tiles", stats.tiles);
        probe.count(stage::PARALLEL, "steals", stats.steals);
        probe.count(stage::PARALLEL, "steal_attempts", stats.steal_attempts);
        for &ns in &stats.busy_ns {
            probe.observe(stage::PARALLEL, "worker_busy_ms", ns as f64 / 1e6);
        }
    }
}

impl<'r, P: Probe + ?Sized> Session<'r, P> {
    /// Attaches an observability probe: each pipeline stage reports a
    /// timing span plus counters/gauges/distributions through it (see
    /// [`rim_obs::stage`] for the stage names). With the default
    /// [`NullProbe`] the hooks inline to nothing, so the session
    /// monomorphises to the un-instrumented pipeline.
    pub fn probe<Q: Probe + ?Sized>(self, probe: &'r Q) -> Session<'r, Q> {
        Session {
            rim: self.rim,
            probe,
        }
    }

    /// Runs the full pipeline on a dense CSI recording, tiling the
    /// alignment hot path across the engine's worker pool. Results are
    /// bit-identical for every thread count.
    ///
    /// # Errors
    /// [`Error::AntennaMismatch`] when the recording's antenna count
    /// differs from the geometry's; [`Error::SeriesTooShort`] when the
    /// recording is shorter than one movement-detection lag.
    pub fn analyze(&self, csi: &DenseCsi) -> Result<MotionEstimate, Error> {
        let est = self
            .rim
            .analyze_internal(csi, self.rim.pool(), self.probe)?;
        self.rim.report_pool_stats(self.probe);
        Ok(est)
    }

    /// Analyzes several independent recordings, fanning the sessions
    /// across the worker pool (one recording per work item; each inner
    /// analysis runs serially, so there is no nested parallelism).
    /// Results are returned in input order and are bit-identical to N
    /// independent [`Session::analyze`] calls with one thread.
    ///
    /// # Errors
    /// Validates every recording up front and fails before analyzing
    /// anything, so a batch never does partial work.
    pub fn analyze_batch(&self, csis: &[&DenseCsi]) -> Result<Vec<MotionEstimate>, Error> {
        let rim = self.rim;
        for csi in csis {
            rim.check_input(csi)?;
        }
        let span = self.probe.span(stage::PARALLEL);
        let results = rim.pool.map(csis, |csi| {
            rim.analyze_internal(csi, &Pool::serial(), &NullProbe)
        });
        drop(span);
        self.probe
            .count(stage::PARALLEL, "batch_sessions", csis.len() as u64);
        rim.report_pool_stats(self.probe);
        results.into_iter().collect()
    }
}

impl Rim {
    /// The pipeline body. `pool` is threaded through explicitly so batch
    /// workers can run serial inner sessions on the caller's pool-worker
    /// thread.
    fn analyze_internal<P: Probe + ?Sized>(
        &self,
        csi: &DenseCsi,
        pool: &Pool,
        probe: &P,
    ) -> Result<MotionEstimate, Error> {
        self.check_input(csi)?;
        let fs = csi.sample_rate_hz;
        let n = csi.n_samples();
        let series: Vec<Vec<NormSnapshot>> = csi
            .antennas
            .iter()
            .map(|s| NormSnapshot::series(s))
            .collect();

        let md_span = probe.span(stage::MOVEMENT_DETECTION);
        // §4.1 — movement detection. We take the *minimum* indicator over
        // antennas: a static device keeps every antenna's self-TRRS ≈ 1,
        // while motion must decorrelate at least one of them — the minimum
        // stays sensitive even when the arriving energy has narrow angular
        // spread (deep NLOS) and some antennas decorrelate slowly.
        // Antennas are independent, so they fan out across the pool; the
        // fold below runs in antenna order, keeping the result identical
        // to the serial loop.
        let movement_cfg = self.config.movement;
        let per_antenna = pool.map(&series, |s| movement_indicator(s, movement_cfg));
        let mut indicator = vec![f64::INFINITY; n];
        for v in &per_antenna {
            for (acc, x) in indicator.iter_mut().zip(v) {
                *acc = acc.min(*x);
            }
        }
        let moving: Vec<bool> = indicator
            .iter()
            .map(|&v| v < self.config.movement.threshold)
            .collect();
        let min_len = (self.config.min_segment_s * fs).round() as usize;
        // The self-TRRS indicator needs `lag` samples of history before it
        // can flag motion, so a segment's true start precedes detection;
        // backdate each start by the detection lag and merge overlaps.
        let mut segments_idx = moving_segments(&moving, min_len.max(1));
        for seg in &mut segments_idx {
            seg.0 = seg.0.saturating_sub(self.config.movement.lag);
        }
        // Merge segments separated by brief indicator flickers (weakly
        // decorrelating stretches of deep-NLOS motion look momentarily
        // static); a real stop shorter than the merge gap is not a stop
        // the system needs to resolve.
        let merge_gap = (0.3 * fs).round() as usize;
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(segments_idx.len());
        for seg in segments_idx {
            match merged.last_mut() {
                Some(last) if seg.0 <= last.1 + merge_gap => last.1 = last.1.max(seg.1),
                _ => merged.push(seg),
            }
        }
        let segments_idx = merged;
        drop(md_span);
        probe.count(stage::MOVEMENT_DETECTION, "samples", n as u64);
        probe.count(
            stage::MOVEMENT_DETECTION,
            "segments",
            segments_idx.len() as u64,
        );
        probe.gauge(
            stage::MOVEMENT_DETECTION,
            "moving_fraction",
            moving.iter().filter(|&&m| m).count() as f64 / n.max(1) as f64,
        );

        let mut speed = vec![0.0f64; n];
        let mut heading: Vec<Option<f64>> = vec![None; n];
        let mut angular = vec![0.0f64; n];
        let mut segments = Vec::new();

        let input = SegmentInput {
            series: series.iter().map(Vec::as_slice).collect(),
            columns: None,
        };
        for (s, e) in segments_idx {
            let seg = self.analyze_segment(&input, fs, s, e, pool, probe);
            for (i, v) in seg.speed.iter().enumerate() {
                speed[s + i] = *v;
            }
            for (i, h) in seg.heading.iter().enumerate() {
                heading[s + i] = *h;
            }
            for (i, w) in seg.angular.iter().enumerate() {
                angular[s + i] = *w;
            }
            segments.push(seg.summary);
        }

        Ok(MotionEstimate {
            sample_rate_hz: fs,
            movement_indicator: indicator,
            moving,
            speed_mps: speed,
            heading_device: heading,
            angular_rate: angular,
            segments,
        })
    }

    /// Per-segment analysis: classify, track, reckon.
    pub(crate) fn analyze_segment<P: Probe + ?Sized>(
        &self,
        input: &SegmentInput,
        fs: f64,
        s: usize,
        e: usize,
        pool: &Pool,
        probe: &P,
    ) -> SegmentResult {
        let groups = self.geometry.parallel_groups();
        let pre_span = probe.span(stage::PRE_DETECTION);
        // §4.3 pre-detection ("for a specific period, we consider only
        // antenna pairs that experience prominent peaks most of the
        // time"): cheap strided prominence per group, evaluated per block
        // so a group aligned during only one leg of a multi-direction
        // segment (e.g. one stroke of a letter) is still kept.
        // Groups are independent; fan them across the pool (the strided
        // single-column probes inside stay serial).
        let block_len = ((0.6 * fs).round() as usize).max(8);
        let blocks_and_hits: Vec<(Vec<f64>, u64)> = pool.map(&groups, |g| {
            self.group_prominence_blocks(input, g, s, e, block_len)
        });
        let cache_hits: u64 = blocks_and_hits.iter().map(|(_, h)| h).sum();
        let per_block: Vec<Vec<f64>> = blocks_and_hits.into_iter().map(|(b, _)| b).collect();
        let n_blocks = per_block.first().map_or(0, Vec::len);
        // Whole-segment prominence (block mean) drives the rotation check.
        let prominences: Vec<f64> = per_block
            .iter()
            .map(|b| {
                if b.is_empty() {
                    0.0
                } else {
                    b.iter().sum::<f64>() / b.len() as f64
                }
            })
            .collect();
        let best = prominences.iter().cloned().fold(0.0f64, f64::max);
        drop(pre_span);
        if cache_hits > 0 {
            probe.count(
                stage::INCREMENTAL,
                incremental_metric::CACHE_HITS,
                cache_hits,
            );
        }
        probe.count(
            stage::PRE_DETECTION,
            "groups_considered",
            groups.len() as u64,
        );
        for &p in &prominences {
            probe.observe(stage::PRE_DETECTION, "group_prominence", p);
        }
        if std::env::var_os("RIM_DEBUG").is_some() {
            eprintln!("[rim] segment {s}..{e} prominences: {prominences:?} best {best}");
        }

        // Rotation check (§4.4 (3)): during in-place rotation every
        // adjacent ring pair is aligned, so all ring-side groups are
        // prominent simultaneously — while a translation elevates only the
        // one or two groups parallel to the motion.
        let is_rotation = self.rotation_signature(&groups, &prominences, best);
        if is_rotation {
            if let Some(result) = self.estimate_rotation(input, fs, s, e, pool, probe) {
                probe.count(stage::PRE_DETECTION, "rotation_segments", 1);
                return result;
            }
            probe.count(stage::PRE_DETECTION, "rotation_fallbacks", 1);
        }
        // A group survives pre-detection if it is prominent in *any*
        // block of the segment.
        let mut survivors: Vec<usize> = Vec::new();
        for b in 0..n_blocks {
            let col: Vec<f64> = per_block.iter().map(|g| g[b]).collect();
            let best_b = col.iter().cloned().fold(0.0f64, f64::max);
            let floor_b = rim_dsp::stats::median(&col);
            // NaN-safe: a NaN floor must not count as "something stands out".
            let stands_out = best_b - floor_b > 0.03;
            if !stands_out {
                continue;
            }
            let thr = (floor_b + 0.5 * (best_b - floor_b)).min(self.config.pre_keep_ratio * best_b);
            for (g, &v) in col.iter().enumerate() {
                if v >= thr && !survivors.contains(&g) {
                    survivors.push(g);
                }
            }
        }
        if survivors.is_empty() {
            // Nothing stood out anywhere; fall back to the single best
            // whole-segment group and let post-detection gate it.
            if let Some((g, _)) = prominences
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            {
                survivors.push(g);
                probe.count(stage::PRE_DETECTION, "fallback_best_group", 1);
            }
        }
        survivors.sort_unstable();
        probe.count(
            stage::PRE_DETECTION,
            "groups_survived",
            survivors.len() as u64,
        );
        self.estimate_translation(input, fs, s, e, &groups, &survivors, pool, probe)
    }

    /// Per-block prominence of a parallel group: the segment is divided
    /// into blocks of `block_len` samples; each block's prominence is the
    /// median column-max of the (un-averaged) cross-TRRS over a strided
    /// sub-sampling of that block. Also returns how many of the strided
    /// column probes were served from the incremental column cache.
    fn group_prominence_blocks(
        &self,
        input: &SegmentInput,
        group: &[rim_array::PairGeometry],
        s: usize,
        e: usize,
        block_len: usize,
    ) -> (Vec<f64>, u64) {
        let w = self.config.alignment.window;
        let stride = self.config.pre_stride.max(1);
        let len = e - s;
        let n_blocks = len.div_ceil(block_len).max(1);
        let mut out = Vec::with_capacity(n_blocks);
        let mut maxima = Vec::new();
        let mut hits = 0u64;
        for b in 0..n_blocks {
            let b0 = s + b * block_len;
            let b1 = (b0 + block_len).min(e);
            maxima.clear();
            for pg in group {
                let a = input.series[pg.pair.i];
                let bb = input.series[pg.pair.j];
                let cached = input
                    .columns
                    .and_then(|c| c.pair_index(pg.pair.i, pg.pair.j).map(|p| (c, p)));
                let mut t = b0;
                while t < b1 {
                    let col_max = match cached {
                        Some((cache, p)) => {
                            hits += 1;
                            cache.column_max(p, t, a.len())
                        }
                        None => {
                            let m = base_cross_trrs_range_prec(
                                a,
                                bb,
                                w,
                                (t, t + 1),
                                &Pool::serial(),
                                self.config.precision,
                            );
                            m.values[0].iter().cloned().fold(0.0f64, f64::max)
                        }
                    };
                    maxima.push(col_max);
                    t += stride;
                }
            }
            out.push(if maxima.is_empty() {
                0.0
            } else {
                rim_dsp::stats::median(&maxima)
            });
        }
        (out, hits)
    }

    /// True when the prominence pattern says "rotation": *every*
    /// ring-side group stands clearly above the prominence floor. A
    /// translation elevates only the group(s) parallel to the motion, so
    /// at most one ring direction can be prominent.
    fn rotation_signature(
        &self,
        groups: &[Vec<rim_array::PairGeometry>],
        prominences: &[f64],
        best: f64,
    ) -> bool {
        let Some(ring) = self.geometry.adjacent_ring_pairs() else {
            return false;
        };
        let floor = rim_dsp::stats::median(prominences);
        // Degenerate pattern (nothing stands out) is not a rotation.
        // NaN-safe: a NaN floor falls through to "not a rotation".
        let stands_out = best - floor > 0.03;
        if !stands_out {
            return false;
        }
        // Lenient factor: short rotations have weak ridges (the blind arc
        // eats most of the segment); false positives fall back to
        // translation through the rotation estimator's validation.
        let threshold = floor + 0.35 * (best - floor);
        // Which groups contain ring-adjacent pairs?
        let ring_group_idx: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| {
                g.iter().any(|pg| {
                    ring.iter().any(|rp| {
                        (rp.i == pg.pair.i && rp.j == pg.pair.j)
                            || (rp.i == pg.pair.j && rp.j == pg.pair.i)
                    })
                })
            })
            .map(|(k, _)| k)
            .collect();
        if ring_group_idx.is_empty() {
            return false;
        }
        let prominent = ring_group_idx
            .iter()
            .filter(|&&k| prominences[k] >= threshold)
            .count();
        prominent as f64 >= self.config.rotation_fraction * ring_group_idx.len() as f64
    }

    /// Translation estimation (§4.4 (1), (2)).
    #[allow(clippy::too_many_arguments)]
    fn estimate_translation<P: Probe + ?Sized>(
        &self,
        input: &SegmentInput,
        fs: f64,
        s: usize,
        e: usize,
        groups: &[Vec<rim_array::PairGeometry>],
        survivors: &[usize],
        pool: &Pool,
        probe: &P,
    ) -> SegmentResult {
        let len = e - s;
        let cfg = &self.config;

        struct GroupTrack {
            sep: f64,
            dir: f64,
            path: TrackedPath,
            /// Sub-sample refined lag per sample.
            refined: Vec<f64>,
            /// Ridge prominence above the column floor — gates estimates.
            raw_quality: Vec<f64>,
            /// Smoothed prominence minus jumpiness — drives group choice.
            score: Vec<f64>,
        }
        let mut tracks: Vec<GroupTrack> = Vec::new();
        let smooth_half = ((cfg.smooth_half_s * fs).round() as usize).max(1);
        for &k in survivors {
            let g = &groups[k];
            let served: u64 = g
                .iter()
                .filter(|pg| input.cached(pg.pair.i, pg.pair.j))
                .count() as u64
                * (e - s) as u64;
            if served > 0 {
                probe.count(stage::INCREMENTAL, incremental_metric::CACHE_HITS, served);
            }
            let (avg, gate) = {
                let _span = probe.span(stage::ALIGNMENT_BUILD);
                let pair_mats: Vec<(AlignmentMatrix, AlignmentMatrix)> = g
                    .iter()
                    .map(|pg| self.segment_matrices(input, pg.pair.i, pg.pair.j, s, e, pool))
                    .collect();
                let full_refs: Vec<&AlignmentMatrix> = pair_mats.iter().map(|m| &m.0).collect();
                let gate_refs: Vec<&AlignmentMatrix> = pair_mats.iter().map(|m| &m.1).collect();
                (
                    AlignmentMatrix::average_with(&full_refs, pool),
                    AlignmentMatrix::average_with(&gate_refs, pool),
                )
            };
            probe.count(stage::ALIGNMENT_BUILD, "pair_matrices", g.len() as u64);
            probe.gauge(stage::ALIGNMENT_BUILD, "matrix_lags", avg.n_lags() as f64);
            probe.gauge(stage::ALIGNMENT_BUILD, "matrix_times", avg.n_times() as f64);
            let path = {
                let _span = probe.span(stage::DP_TRACKING);
                track_peaks(&avg, cfg.dp)
            };
            probe.observe(stage::DP_TRACKING, "path_mean_trrs", path.mean_trrs);
            probe.observe(stage::DP_TRACKING, "path_jumpiness", path.jumpiness);
            // Ridge prominence above each column's noise floor, from the
            // lightly-averaged matrix so ridge endpoints stay sharp.
            let floors = gate.column_floors();
            let raw_quality: Vec<f64> = (0..len)
                .map(|i| gate.at(i, path.lags[i]) - floors[i])
                .collect();
            for &q in &raw_quality {
                probe.observe(stage::POST_DETECTION, "ridge_prominence", q);
            }
            let refined: Vec<f64> = (0..len)
                .map(|i| {
                    if cfg.subsample_refinement {
                        avg.refine_lag(i, path.lags[i])
                    } else {
                        path.lags[i] as f64
                    }
                })
                .collect();
            let smoothed = rim_dsp::filter::moving_average(&raw_quality, smooth_half);
            let score: Vec<f64> = smoothed
                .iter()
                .map(|q| q - cfg.jumpiness_penalty * path.jumpiness)
                .collect();
            tracks.push(GroupTrack {
                sep: g[0].separation,
                dir: g[0].direction,
                path,
                refined,
                raw_quality,
                score,
            });
        }

        if std::env::var_os("RIM_DEBUG").is_some() {
            eprintln!("[rim] survivors: {survivors:?}");
            for (n, tr) in tracks.iter().enumerate() {
                eprintln!(
                    "[rim]   track {n}: dir {:.1}° sep {:.4} mean_trrs {:.3} jump {:.3}",
                    tr.dir.to_degrees(),
                    tr.sep,
                    tr.path.mean_trrs,
                    tr.path.jumpiness
                );
            }
        }

        let mut speed = vec![f64::NAN; len];
        let mut heading: Vec<Option<f64>> = vec![None; len];
        let mut chosen_sep = None;
        let mut margin_sum = 0.0f64;
        let mut margin_n = 0u64;

        if !tracks.is_empty() {
            let _span = probe.span(stage::POST_DETECTION);
            let mut switches = 0u64;
            let mut gated = 0u64;
            let mut resolved = 0u64;
            // §4.3 post-detection with hysteresis: follow the best-scoring
            // group per sample, switching only on a clear margin.
            let mut current = (0..tracks.len())
                .max_by(|&a, &b| {
                    tracks[a].score[0]
                        .partial_cmp(&tracks[b].score[0])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap();
            for i in 0..len {
                let challenger = (0..tracks.len())
                    .max_by(|&a, &b| {
                        tracks[a].score[i]
                            .partial_cmp(&tracks[b].score[i])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap();
                if challenger != current
                    && tracks[challenger].score[i] > tracks[current].score[i] + cfg.switch_margin
                {
                    current = challenger;
                    switches += 1;
                }
                let tr = &tracks[current];
                if tr.raw_quality[i] < cfg.min_peak_prominence {
                    gated += 1;
                    continue;
                }
                // Skip boundary-pinned alignments (see estimate_rotation).
                let src = i as isize - tr.path.lags[i];
                if src < 3 || src > len as isize - 3 {
                    gated += 1;
                    continue;
                }
                let lag = tr.refined[i];
                if let Some(v) = speed_from_frac_lag(tr.sep, lag, fs) {
                    speed[i] = v;
                    resolved += 1;
                    margin_sum += tr.raw_quality[i];
                    margin_n += 1;
                }
                heading[i] = if cfg.continuous_heading {
                    // §7 "angle resolution": weight every genuinely-aligned
                    // group's direction by its ridge prominence; deviated
                    // motion interpolates between adjacent directions.
                    let gate = (tr.raw_quality[i] * 0.5).max(cfg.min_peak_prominence);
                    let (mut sx, mut sy) = (0.0f64, 0.0f64);
                    for other in &tracks {
                        let q = other.raw_quality[i];
                        if q < gate {
                            continue;
                        }
                        if let Some(h) = heading_from_frac_lag(other.dir, other.refined[i]) {
                            sx += q * h.cos();
                            sy += q * h.sin();
                        }
                    }
                    if sx == 0.0 && sy == 0.0 {
                        heading_from_frac_lag(tr.dir, lag)
                    } else {
                        Some(sy.atan2(sx))
                    }
                } else {
                    heading_from_frac_lag(tr.dir, lag)
                };
                if chosen_sep.is_none() {
                    chosen_sep = Some(tr.sep);
                }
            }
            // Minimum initial motion (§5): no alignment exists until the
            // follower has travelled Δd — i.e. before segment-relative
            // time |lag|. Estimates earlier than both the first sustained
            // alignment and that physical bound are spurious; blank them —
            // the blind stretch is covered by the Δd compensation below.
            let sustain = 3usize.min(len);
            let first_aligned = (0..len.saturating_sub(sustain))
                .find(|&i| (i..i + sustain).all(|k| speed[k].is_finite()));
            let cut = match first_aligned {
                Some(i0) => {
                    let lag_bound = tracks
                        .first()
                        .map(|_| {
                            // Use the lag actually in effect at i0.
                            let tr_lag = tracks
                                .iter()
                                .filter_map(|tr| {
                                    if tr.raw_quality[i0] >= cfg.min_peak_prominence {
                                        Some(tr.refined[i0].abs())
                                    } else {
                                        None
                                    }
                                })
                                .fold(f64::INFINITY, f64::min);
                            if tr_lag.is_finite() {
                                tr_lag.round() as usize
                            } else {
                                0
                            }
                        })
                        .unwrap_or(0);
                    i0.max(lag_bound.min(len))
                }
                None => len,
            };
            for i in 0..cut {
                speed[i] = f64::NAN;
                heading[i] = None;
            }
            probe.count(stage::POST_DETECTION, "group_switches", switches);
            probe.count(stage::POST_DETECTION, "samples_gated", gated);
            probe.count(stage::POST_DETECTION, "samples_resolved", resolved);
            probe.count(stage::POST_DETECTION, "initial_cut_samples", cut as u64);
        }

        // Confidence inputs, measured before the gap bridging below
        // fabricates interior speeds: which fraction of the segment
        // resolved genuine alignment, and how prominent it was.
        let confidence = Confidence {
            peak_margin: if margin_n > 0 {
                margin_sum / margin_n as f64
            } else {
                0.0
            },
            interpolated_fraction: 0.0,
            alignment_coverage: fraction_finite(&speed),
        };

        let reck_span = probe.span(stage::RECKONING);
        // The segment is moving throughout (movement detection says so);
        // where the quality gate blanked the ridge (weak-decorrelation
        // stretches, §6.2.4's hardest AP placements), bridge *interior*
        // speed gaps by linear interpolation. The tail is left blank: a
        // segment commonly overhangs the physical stop by the detector
        // latency, and holding the last speed there would fabricate
        // distance. Heading is held alongside bridged samples.
        {
            let mut bridged = 0u64;
            let mut last_known: Option<(usize, f64)> = None;
            let mut i = 0usize;
            while i < len {
                if speed[i].is_finite() {
                    last_known = Some((i, speed[i]));
                    i += 1;
                    continue;
                }
                if let Some((i0, v0)) = last_known {
                    // Find the next finite sample, if any.
                    let next = (i..len).find(|&j| speed[j].is_finite());
                    match next {
                        Some(j) => {
                            let v1 = speed[j];
                            let span = (j - i0) as f64;
                            for k in i..j {
                                let t = (k - i0) as f64 / span;
                                speed[k] = v0 * (1.0 - t) + v1 * t;
                                if heading[k].is_none() {
                                    heading[k] = heading[i0];
                                }
                            }
                            bridged += (j - i) as u64;
                            i = j;
                        }
                        None => {
                            // Trailing gap: stop bridging (see above).
                            i = len;
                        }
                    }
                } else {
                    i += 1;
                }
            }
            probe.count(stage::RECKONING, "bridged_samples", bridged);
        }

        // Smooth speed: median to kill single-lag outliers, then a gentle
        // Savitzky–Golay (§4.4 "smoothed and then integrated").
        let valid: Vec<f64> = speed
            .iter()
            .map(|v| if v.is_finite() { *v } else { 0.0 })
            .collect();
        let med = median_filter(&valid, smooth_half);
        let smoothed = savitzky_golay(&med, smooth_half, 2);
        for i in 0..len {
            if speed[i].is_finite() {
                speed[i] = smoothed[i].max(0.0);
            }
        }

        let dt = 1.0 / fs;
        let mut distance: f64 = speed.iter().filter(|v| v.is_finite()).sum::<f64>() * dt;
        if cfg.compensate_initial_motion {
            if let Some(sep) = chosen_sep {
                distance += sep;
            }
        }
        let headings_present: Vec<f64> = heading.iter().flatten().copied().collect();
        let seg_heading = if headings_present.is_empty() {
            None
        } else {
            Some(circular_mean(&headings_present))
        };
        drop(reck_span);
        probe.count(stage::RECKONING, "segments", 1);
        probe.observe(stage::RECKONING, "segment_distance_m", distance);

        SegmentResult {
            speed,
            heading,
            angular: vec![0.0; len],
            summary: SegmentEstimate {
                start: s,
                end: e,
                kind: SegmentKind::Translation,
                distance_m: distance,
                heading_device: seg_heading,
                rotation_rad: 0.0,
                confidence,
            },
        }
    }

    /// Rotation estimation (§4.4 (3)). Returns `None` when the geometry
    /// has no ring or no ring pair yields a usable path.
    fn estimate_rotation<P: Probe + ?Sized>(
        &self,
        input: &SegmentInput,
        fs: f64,
        s: usize,
        e: usize,
        pool: &Pool,
        probe: &P,
    ) -> Option<SegmentResult> {
        let ring = self.geometry.adjacent_ring_pairs()?;
        let radius = self.geometry.ring_radius()?;
        let arc = self.geometry.rotation_arc_separation()?;
        let cfg = &self.config;
        let len = e - s;
        let smooth_half = ((cfg.smooth_half_s * fs).round() as usize).max(1);

        // Average opposite ring pairs (they share delays) to limit cost:
        // pair k with pair k + n/2 where available.
        let n_ring = ring.len();
        let half = n_ring / 2;
        let mut rates: Vec<Vec<f64>> = Vec::new(); // per group: rate per sample (NaN invalid)
        let mut median_lags: Vec<isize> = Vec::new();
        let mut margin_sum = 0.0f64;
        let mut margin_n = 0u64;
        for k in 0..half.max(1) {
            let mut served = 0u64;
            if input.cached(ring[k].i, ring[k].j) {
                served += 1;
            }
            let (avg, gatem, n_mats) = {
                let _span = probe.span(stage::ALIGNMENT_BUILD);
                let mut mats = vec![self.segment_matrices(input, ring[k].i, ring[k].j, s, e, pool)];
                if half > 0 && k + half < n_ring {
                    mats.push(self.segment_matrices(
                        input,
                        ring[k + half].i,
                        ring[k + half].j,
                        s,
                        e,
                        pool,
                    ));
                    if input.cached(ring[k + half].i, ring[k + half].j) {
                        served += 1;
                    }
                }
                let full_refs: Vec<&AlignmentMatrix> = mats.iter().map(|m| &m.0).collect();
                let gate_refs: Vec<&AlignmentMatrix> = mats.iter().map(|m| &m.1).collect();
                (
                    AlignmentMatrix::average_with(&full_refs, pool),
                    AlignmentMatrix::average_with(&gate_refs, pool),
                    mats.len() as u64,
                )
            };
            probe.count(stage::ALIGNMENT_BUILD, "pair_matrices", n_mats);
            if served > 0 {
                probe.count(
                    stage::INCREMENTAL,
                    incremental_metric::CACHE_HITS,
                    served * (e - s) as u64,
                );
            }
            let path = {
                let _span = probe.span(stage::DP_TRACKING);
                track_peaks(&avg, cfg.dp)
            };
            probe.observe(stage::DP_TRACKING, "path_mean_trrs", path.mean_trrs);
            probe.observe(stage::DP_TRACKING, "path_jumpiness", path.jumpiness);
            let floors = gatem.column_floors();
            let quality: Vec<f64> = (0..len)
                .map(|i| gatem.at(i, path.lags[i]) - floors[i])
                .collect();
            // The ridge may only cover part of the segment (e.g. a short
            // rotation whose measurable window ends Δd-of-arc before the
            // motion does), so validate and estimate over quality-gated
            // samples only.
            let mut valid: Vec<(f64, isize)> = (0..len)
                .filter(|&i| {
                    let src = i as isize - path.lags[i];
                    quality[i] >= cfg.min_peak_prominence
                        && path.lags[i] != 0
                        && src >= 3
                        && src <= len as isize - 3
                })
                .map(|i| (quality[i], path.lags[i]))
                .collect();
            // The ridge may cover only part of the segment; junk samples
            // that clear the gate have markedly lower prominence, so the
            // reference delay comes from the highest-prominence third.
            valid.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            let top = &valid[..(valid.len() / 3).max(valid.len().min(4))];
            let valid_lags: Vec<isize> = top.iter().map(|&(_, l)| l).collect();
            if std::env::var_os("RIM_DEBUG").is_some() {
                eprintln!(
                    "[rim] ring group {k}: mean_trrs {:.3} jump {:.3} valid {}/{len}",
                    path.mean_trrs,
                    path.jumpiness,
                    valid_lags.len()
                );
            }
            // Validation: a real rotation aligns *every* adjacent pair
            // with a solid ridge for a meaningful stretch. Otherwise this
            // was not a rotation — fall back to translation handling.
            if valid_lags.len() < (len / 8).max(4) {
                probe.count(stage::POST_DETECTION, "rotation_rejections", 1);
                return None;
            }
            let mut sorted = valid_lags;
            sorted.sort_unstable();
            let median_lag = sorted[sorted.len() / 2];
            median_lags.push(median_lag);
            // Rates only from samples consistent with the group's median
            // delay (same sign, comparable magnitude): pre-ridge junk that
            // slips past the prominence gate at small or opposite lags
            // would otherwise inject huge wrong-sign rates.
            let rate: Vec<f64> = (0..len)
                .map(|i| {
                    let lag = path.lags[i];
                    // A path pinned to the data boundary (source time at
                    // the segment edge) is matching the leader's first or
                    // last position over and over — not a real alignment.
                    let src = i as isize - lag;
                    if src < 3 || src > len as isize - 3 {
                        return f64::NAN;
                    }
                    if quality[i] < cfg.min_peak_prominence
                        || lag.signum() != median_lag.signum()
                        || lag.abs() * 4 < median_lag.abs() * 3
                    {
                        return f64::NAN;
                    }
                    let frac = if cfg.subsample_refinement {
                        avg.refine_lag(i, lag)
                    } else {
                        lag as f64
                    };
                    angular_rate_from_frac_lag(arc, radius, frac, fs).unwrap_or(f64::NAN)
                })
                .collect();
            for (i, r) in rate.iter().enumerate() {
                if r.is_finite() {
                    margin_sum += quality[i];
                    margin_n += 1;
                }
            }
            rates.push(rate);
        }
        // Consistency: all adjacent pairs rotate together, so their median
        // delays must share one nonzero sign.
        let signs: Vec<isize> = median_lags.iter().map(|l| l.signum()).collect();
        if signs.contains(&0) || signs.windows(2).any(|w| w[0] != w[1]) {
            probe.count(stage::POST_DETECTION, "rotation_rejections", 1);
            return None;
        }
        let _reck_span = probe.span(stage::RECKONING);
        // §4.4: use the average speed across adjacent pairs.
        let mut angular = vec![f64::NAN; len];
        for i in 0..len {
            let vals: Vec<f64> = rates
                .iter()
                .map(|r| r[i])
                .filter(|v| v.is_finite())
                .collect();
            if !vals.is_empty() {
                angular[i] = vals.iter().sum::<f64>() / vals.len() as f64;
            }
        }
        if angular.iter().all(|v| !v.is_finite()) {
            return None;
        }
        // Integrate over the valid (ridge-backed) samples only; the blind
        // arc before the first alignment is compensated separately.
        let dt = 1.0 / fs;
        let mut total: f64 = angular.iter().filter(|v| v.is_finite()).sum::<f64>() * dt;
        if cfg.compensate_initial_motion {
            // Minimum initial rotation: an antenna must sweep the
            // inter-antenna arc before the first alignment.
            let blind = std::f64::consts::TAU / self.geometry.n_antennas() as f64;
            total += blind * total.signum();
        }
        let confidence = Confidence {
            peak_margin: if margin_n > 0 {
                margin_sum / margin_n as f64
            } else {
                0.0
            },
            interpolated_fraction: 0.0,
            alignment_coverage: fraction_finite(&angular),
        };
        // Per-sample display series: gaps as zero, lightly smoothed.
        let filled: Vec<f64> = angular
            .iter()
            .map(|v| if v.is_finite() { *v } else { 0.0 })
            .collect();
        let smoothed = median_filter(&filled, smooth_half);
        Some(SegmentResult {
            speed: vec![0.0; len],
            heading: vec![None; len],
            angular: smoothed,
            summary: SegmentEstimate {
                start: s,
                end: e,
                kind: SegmentKind::Rotation,
                distance_m: 0.0,
                heading_device: None,
                rotation_rad: total,
                confidence,
            },
        })
    }

    /// Alignment matrices for antenna pair `(i, j)` over segment columns
    /// `s..e`: the fully V-averaged matrix (for peak tracking and lag
    /// refinement) and a lightly averaged one (for quality gating — the
    /// full box filter smears the ridge endpoints by ±V/2, which would
    /// blank genuine alignment at segment edges). When the input carries
    /// an incremental column cache covering the pair, the base matrix is
    /// materialised from the cached columns (bit-identical to computing
    /// it here); the V-averaging runs unchanged either way.
    fn segment_matrices(
        &self,
        input: &SegmentInput,
        i: usize,
        j: usize,
        s: usize,
        e: usize,
        pool: &Pool,
    ) -> (AlignmentMatrix, AlignmentMatrix) {
        let cfg = self.config.alignment;
        let cached = input
            .columns
            .and_then(|c| c.pair_index(i, j).map(|p| (c, p)));
        let base = match cached {
            Some((cache, p)) => cache.base_matrix_with(p, s, e, input.series[i].len(), pool),
            None => base_cross_trrs_range_prec(
                input.series[i],
                input.series[j],
                cfg.window,
                (s, e),
                pool,
                self.config.precision,
            ),
        };
        let full = virtual_average_range_with(&base, cfg.virtual_antennas, pool);
        let gate = virtual_average_range_with(&base, cfg.virtual_antennas.min(5), pool);
        (full, gate)
    }
}

/// Input to per-segment analysis: the materialised snapshot series plus,
/// for streaming flushes, the incrementally built cross-TRRS column cache
/// to reuse instead of recomputing (see [`crate::incremental`]).
pub(crate) struct SegmentInput<'a> {
    /// Per-antenna normalised snapshot series (full buffered length; the
    /// segment addresses columns `s..e` within it). Borrowed slices so
    /// the streaming flush can lend its ring without cloning snapshots.
    pub(crate) series: Vec<&'a [NormSnapshot]>,
    /// Online column cache whose base index coincides with `series[_][0]`,
    /// when the stream maintains one.
    pub(crate) columns: Option<&'a ColumnCache>,
}

impl SegmentInput<'_> {
    /// Does the column cache cover ordered antenna pair `(i, j)`?
    fn cached(&self, i: usize, j: usize) -> bool {
        self.columns.and_then(|c| c.pair_index(i, j)).is_some()
    }
}

/// Internal per-segment result.
pub(crate) struct SegmentResult {
    pub(crate) speed: Vec<f64>,
    pub(crate) heading: Vec<Option<f64>>,
    pub(crate) angular: Vec<f64>,
    pub(crate) summary: SegmentEstimate,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_array::HALF_WAVELENGTH;
    use rim_channel::simulator::{ApConfig, ChannelSimulator};
    use rim_channel::trajectory::{dwell, line, OrientationMode, Trajectory};
    use rim_channel::{uniform_field, Floorplan, RayTracer, SubcarrierLayout, TracerConfig};
    use rim_csi::frame::CsiSnapshot;
    use rim_csi::recorder::{CsiRecorder, DenseCsi, DeviceConfig, RecorderConfig};
    use rim_dsp::geom::{Point2, Vec2};

    /// A fast, small simulator: HT20 (56 subcarriers), modest scatterer
    /// field, free space — enough multipath for alignment, cheap enough
    /// for unit tests.
    fn small_sim() -> ChannelSimulator {
        let scat = uniform_field(
            Point2::new(-12.0, -12.0),
            Point2::new(12.0, 12.0),
            90,
            0.35,
            5,
        );
        let tracer = RayTracer::new(
            Floorplan::empty(),
            scat,
            Vec::new(),
            TracerConfig::default(),
        );
        ChannelSimulator::new(
            tracer,
            SubcarrierLayout::ht20_5ghz(),
            ApConfig::standard(Point2::new(-6.0, 0.0)),
        )
    }

    fn record(
        sim: &ChannelSimulator,
        geo: &rim_array::ArrayGeometry,
        traj: &Trajectory,
    ) -> DenseCsi {
        let device = if geo.nic_groups().len() == 2 {
            DeviceConfig::dual_nic(geo.offsets().to_vec())
        } else {
            DeviceConfig::single_nic(geo.offsets().to_vec())
        };
        CsiRecorder::new(sim, device, RecorderConfig::default())
            .record(traj)
            .interpolated()
            .expect("interpolable")
    }

    fn config(fs: f64) -> RimConfig {
        RimConfig::for_sample_rate(fs).with_min_speed(0.3, HALF_WAVELENGTH, fs)
    }

    #[test]
    fn measures_straight_push() {
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let fs = 100.0;
        let traj = line(
            Point2::new(0.0, 2.0),
            0.0,
            0.8,
            0.8,
            fs,
            OrientationMode::FollowPath,
        );
        let est = Rim::new(geo, config(fs))
            .unwrap()
            .analyze(&record(
                &sim,
                &rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH),
                &traj,
            ))
            .unwrap();
        let err = (est.total_distance() - 0.8).abs();
        assert!(err < 0.10, "distance error {err} m");
        assert_eq!(est.segments.len(), 1);
        assert_eq!(est.segments[0].kind, SegmentKind::Translation);
        let h = est.segments[0].heading_device.expect("heading resolved");
        assert!(rim_dsp::stats::angle_diff(h, 0.0) < 10f64.to_radians());
    }

    #[test]
    fn static_device_reports_nothing() {
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let fs = 100.0;
        let traj = dwell(Point2::new(1.0, 1.5), 0.0, 1.0, fs);
        let est = Rim::new(geo.clone(), config(fs))
            .unwrap()
            .analyze(&record(&sim, &geo, &traj))
            .unwrap();
        assert!(est.segments.is_empty(), "{:?}", est.segments);
        assert_eq!(est.total_distance(), 0.0);
        assert!(est.moving.iter().filter(|&&m| m).count() < est.moving.len() / 10);
    }

    #[test]
    fn reverse_direction_is_resolved() {
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let fs = 100.0;
        let traj = line(
            Point2::new(1.0, 2.0),
            std::f64::consts::PI,
            0.8,
            0.8,
            fs,
            OrientationMode::Fixed(0.0),
        );
        let est = Rim::new(geo.clone(), config(fs))
            .unwrap()
            .analyze(&record(&sim, &geo, &traj))
            .unwrap();
        let h = est.segments[0].heading_device.expect("heading");
        assert!(
            rim_dsp::stats::angle_diff(h, std::f64::consts::PI) < 10f64.to_radians(),
            "moving backwards: {}",
            h.to_degrees()
        );
    }

    #[test]
    fn trajectory_reconstruction_tracks_truth() {
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let fs = 100.0;
        let traj = line(
            Point2::new(0.0, 2.0),
            0.0,
            1.0,
            1.0,
            fs,
            OrientationMode::FollowPath,
        );
        let est = Rim::new(geo.clone(), config(fs))
            .unwrap()
            .analyze(&record(&sim, &geo, &traj))
            .unwrap();
        let track = est.trajectory(Point2::new(0.0, 2.0), 0.0);
        let end = track.last().unwrap();
        assert!(end.distance(Point2::new(1.0, 2.0)) < 0.15, "end {end:?}");
    }

    #[test]
    fn mismatched_antenna_count_is_rejected() {
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let rim = Rim::new(geo, config(100.0)).unwrap();
        let csi = DenseCsi {
            sample_rate_hz: 100.0,
            subcarrier_indices: vec![0, 1],
            antennas: vec![vec![CsiSnapshot { per_tx: vec![] }]; 2],
        };
        let err = rim.analyze(&csi).unwrap_err();
        assert_eq!(
            err,
            crate::Error::AntennaMismatch {
                expected: 3,
                got: 2
            }
        );
        assert!(err.to_string().contains("antenna count mismatch"));
    }

    #[test]
    fn too_short_series_is_rejected() {
        let geo = rim_array::ArrayGeometry::linear(2, HALF_WAVELENGTH);
        let rim = Rim::new(geo, config(100.0)).unwrap();
        let csi = DenseCsi {
            sample_rate_hz: 100.0,
            subcarrier_indices: vec![0, 1],
            antennas: vec![vec![CsiSnapshot { per_tx: vec![] }; 2]; 2],
        };
        let err = rim.analyze(&csi).unwrap_err();
        assert!(
            matches!(err, crate::Error::SeriesTooShort { got: 2, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn mixed_subcarrier_grids_are_rejected_as_geometry_error() {
        // Two grids in one recording would silently score zero TRRS
        // between the mismatched snapshots (the kernels' contract) and
        // reckon garbage — the boundary must catch it instead.
        let geo = rim_array::ArrayGeometry::linear(2, HALF_WAVELENGTH);
        let rim = Rim::new(geo, config(100.0)).unwrap();
        let wide = CsiSnapshot {
            per_tx: vec![vec![rim_dsp::complex::Complex64::from_re(1.0); 114]],
        };
        let narrow = CsiSnapshot {
            per_tx: vec![vec![rim_dsp::complex::Complex64::from_re(1.0); 56]],
        };
        let mut series = vec![wide.clone(); 12];
        series[7] = narrow;
        let csi = DenseCsi {
            sample_rate_hz: 100.0,
            subcarrier_indices: (0..114).collect(),
            antennas: vec![series, vec![wide; 12]],
        };
        let err = rim.analyze(&csi).unwrap_err();
        assert!(matches!(err, crate::Error::Geometry(_)), "{err:?}");
        assert!(err.to_string().contains("mixed subcarrier grids"), "{err}");
        assert!(err.to_string().contains("sample 7"), "{err}");
    }

    #[test]
    fn ragged_tx_streams_are_rejected_as_geometry_error() {
        let geo = rim_array::ArrayGeometry::linear(2, HALF_WAVELENGTH);
        let rim = Rim::new(geo, config(100.0)).unwrap();
        let h = rim_dsp::complex::Complex64::from_re(1.0);
        let ragged = CsiSnapshot {
            per_tx: vec![vec![h; 56], vec![h; 55]],
        };
        let csi = DenseCsi {
            sample_rate_hz: 100.0,
            subcarrier_indices: (0..56).collect(),
            antennas: vec![vec![ragged; 12]; 2],
        };
        let err = rim.analyze(&csi).unwrap_err();
        assert!(matches!(err, crate::Error::Geometry(_)), "{err:?}");
        assert!(err.to_string().contains("TX streams disagree"), "{err}");
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        let geo = rim_array::ArrayGeometry::linear(2, HALF_WAVELENGTH);
        let cases: Vec<(RimConfig, &str)> = vec![
            (
                {
                    let mut c = config(100.0);
                    c.alignment.window = 0;
                    c
                },
                "alignment.window",
            ),
            (
                {
                    let mut c = config(100.0);
                    c.alignment.virtual_antennas = 0;
                    c
                },
                "virtual_antennas",
            ),
            (
                {
                    let mut c = config(100.0);
                    c.sample_rate_hz = 0.0;
                    c
                },
                "sample_rate_hz",
            ),
            (
                {
                    let mut c = config(100.0);
                    c.movement.threshold = 1.5;
                    c
                },
                "movement.threshold",
            ),
            (
                {
                    let mut c = config(100.0);
                    c.threads = rim_par::MAX_THREADS + 1;
                    c
                },
                "threads",
            ),
            (
                {
                    let mut c = config(100.0);
                    // Keeps the default nonzero cadence, which only the
                    // incremental engine can honour.
                    c.incremental = false;
                    c
                },
                "provisional_every",
            ),
        ];
        for (bad, needle) in cases {
            let err = Rim::new(geo.clone(), bad).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should name {needle:?}");
            assert!(msg.starts_with("invalid configuration"), "{msg:?}");
        }
        // A one-antenna array has no pair to align.
        let lone = rim_array::ArrayGeometry::custom(
            vec![rim_dsp::geom::Vec2::new(0.0, 0.0)],
            vec![vec![0]],
        );
        let err = Rim::new(lone, config(100.0)).unwrap_err();
        assert!(matches!(err, crate::Error::Geometry(_)), "{err:?}");
    }

    #[test]
    fn session_rejects_antenna_mismatch() {
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let rim = Rim::new(geo, config(100.0)).unwrap();
        let csi = DenseCsi {
            sample_rate_hz: 100.0,
            subcarrier_indices: vec![0, 1],
            antennas: vec![vec![CsiSnapshot { per_tx: vec![] }]; 2],
        };
        let err = rim.session().probe(&NullProbe).analyze(&csi).unwrap_err();
        assert!(matches!(err, crate::Error::AntennaMismatch { .. }));
    }

    #[test]
    fn config_with_min_speed_sets_window() {
        let c = RimConfig::for_sample_rate(200.0).with_min_speed(0.2, 0.0258, 200.0);
        assert_eq!(c.alignment.window, 26);
        let c2 = RimConfig::for_sample_rate(200.0).with_min_speed(0.05, 0.0258, 200.0);
        assert!(c2.alignment.window > c.alignment.window);
    }

    #[test]
    fn motion_estimate_accessors() {
        let est = MotionEstimate {
            sample_rate_hz: 100.0,
            movement_indicator: vec![1.0; 4],
            moving: vec![false; 4],
            speed_mps: vec![0.0; 4],
            heading_device: vec![None; 4],
            angular_rate: vec![0.0; 4],
            segments: vec![
                SegmentEstimate {
                    start: 0,
                    end: 2,
                    kind: SegmentKind::Translation,
                    distance_m: 1.5,
                    heading_device: Some(0.0),
                    rotation_rad: 0.0,
                    confidence: Confidence::default(),
                },
                SegmentEstimate {
                    start: 2,
                    end: 4,
                    kind: SegmentKind::Rotation,
                    distance_m: 0.0,
                    heading_device: None,
                    rotation_rad: -0.5,
                    confidence: Confidence::default(),
                },
            ],
        };
        assert!((est.total_distance() - 1.5).abs() < 1e-12);
        assert!((est.total_rotation() + 0.5).abs() < 1e-12);
        let track = est.trajectory(Point2::ORIGIN, 0.0);
        assert_eq!(track.len(), 4);
    }

    #[test]
    fn deviated_direction_snaps_to_resolvable() {
        // 15°-deviated motion must still resolve to the nearest array
        // direction (paper §3.2 "deviated retracing").
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let fs = 100.0;
        let traj = line(
            Point2::new(0.0, 2.0),
            12f64.to_radians(),
            0.8,
            0.8,
            fs,
            OrientationMode::Fixed(0.0),
        );
        let est = Rim::new(geo.clone(), config(fs))
            .unwrap()
            .analyze(&record(&sim, &geo, &traj))
            .unwrap();
        assert!(est.total_distance() > 0.5, "deviated motion still measured");
        let h = est.segments[0].heading_device.expect("heading");
        assert!(rim_dsp::stats::angle_diff(h, 0.0) < 15f64.to_radians());
    }

    #[test]
    fn antenna_offsets_respect_device_frame() {
        // Sanity glue test: geometry offsets land where the trajectory
        // says (exercised indirectly throughout, pinned here).
        let traj = dwell(
            Point2::new(1.0, 1.0),
            std::f64::consts::FRAC_PI_2,
            0.01,
            100.0,
        );
        let p = traj.antenna_position(0, Vec2::new(0.1, 0.0));
        assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.1).abs() < 1e-9);
    }
}
