//! Streaming (real-time) RIM pipeline with bounded memory and gap
//! tolerance.
//!
//! The paper's prototype includes a real-time C++ system (§5, §6.3.3);
//! this module is its counterpart: CSI snapshots are *pushed* sample by
//! sample, a ring buffer holds just enough history for the alignment
//! window and the virtual-massive average, and motion estimates are
//! emitted with bounded latency as soon as each movement segment (or
//! partial segment) can be resolved. Memory is `O(ring capacity)` no
//! matter how long the device runs.
//!
//! Real captures are not clean (§7 concedes loss is only tolerable "to a
//! certain extent by interpolation"): packets are lost, duplicated, and
//! reordered by two unsynchronised NICs. The stream therefore ingests
//! *sequence-numbered, possibly-incomplete* samples through a
//! [`GapFilter`]: short gaps (≤ [`crate::GapConfig::max_gap`]) are bridged by
//! linear interpolation with the same arithmetic as
//! [`rim_dsp::interp::fill_gaps_complex`], long gaps split the open
//! segment instead of silently integrating garbage, and duplicates /
//! stale reorders are dropped idempotently. A [`Watchdog`] monitors input
//! continuity and alignment quality and emits
//! [`StreamEvent::Degraded`] / [`StreamEvent::Recovered`] transitions so
//! downstream fusion can down-weight bad stretches.
//!
//! Latency/accuracy trade-off: segments are flushed either when movement
//! stops or when the open segment reaches `max_open_segment` samples, in
//! which case it is analyzed in place and the tail re-examined later
//! chunks continue seamlessly (the Δd compensation is applied only once
//! per physical movement).

use crate::error::Error;
use crate::incremental::{ColumnCache, ProvisionalTracker};
use crate::movement::{movement_indicator, MovementConfig};
use crate::pipeline::{
    Confidence, GapConfig, MotionEstimate, Rim, RimConfig, SegmentEstimate, SegmentInput,
};
use crate::trrs::NormSnapshot;
use rim_array::ArrayGeometry;
use rim_csi::frame::CsiSnapshot;
use rim_csi::sync::SyncedSample;
use rim_dsp::geom::{Point2, Vec2};
use rim_obs::{
    fusion_metric, incremental_metric, stage, stream_metric, ActiveTrace, NullProbe, Probe,
    SpanKind,
};
use std::collections::VecDeque;
use std::time::Instant;

/// An incremental update emitted by the stream.
///
/// Sample indices (`at`) are on the stream's absolute time axis: index 0
/// is the first delivered sample, and lost stretches advance the axis by
/// their sequence-number span so estimates never span a gap unknowingly.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum StreamEvent {
    /// Movement started at the given absolute sample index.
    MovementStarted {
        /// Absolute sample index.
        at: usize,
    },
    /// A resolved stretch of motion (one segment or a bounded chunk of an
    /// ongoing one).
    Segment(SegmentEstimate),
    /// A provisional mid-motion estimate from the incremental engine,
    /// emitted every [`RimConfig::provisional_every`] ingested samples
    /// while a movement segment is open. Provisional values are
    /// approximate by design (no gap bridging, translation-only); the
    /// final [`StreamEvent::Segment`] for the motion supersedes every
    /// provisional and stays bit-identical to the batch analysis.
    Provisional {
        /// Absolute sample index the estimate was computed at.
        at: usize,
        /// Distance travelled since the motion opened, metres. Monotone
        /// non-decreasing across one motion's provisionals.
        distance_so_far: f64,
        /// Dominant device-frame heading so far, if resolvable.
        heading: Option<f64>,
        /// Confidence over the samples tracked so far.
        confidence: Confidence,
    },
    /// Movement stopped at the given absolute sample index.
    MovementStopped {
        /// Absolute sample index.
        at: usize,
    },
    /// Input or alignment quality fell below the thresholds configured in
    /// [`crate::GapConfig`]; estimates may be missing or low-confidence
    /// until the matching [`StreamEvent::Recovered`].
    Degraded {
        /// Absolute sample index of the transition.
        at: usize,
        /// What tripped the watchdog.
        reason: DegradeReason,
    },
    /// Every active degradation cause has cleared.
    Recovered {
        /// Absolute sample index of the transition.
        at: usize,
    },
    /// A fused RIM×IMU state estimate from a fusion layer wrapping the
    /// stream (see `rim-tracking`'s `FusedStream`). Emitted once per
    /// ingested IMU batch, including during CSI gaps and blackouts —
    /// the event that keeps position flowing when
    /// [`StreamEvent::Degraded`] is active.
    Fused {
        /// IMU timestamp of the estimate, microseconds.
        t_us: u64,
        /// Fused position, metres.
        position: Point2,
        /// Fused device heading, radians.
        heading: f64,
        /// Fused forward speed, m/s.
        velocity: f64,
        /// Trace of the error-state covariance — a scalar uncertainty
        /// summary that grows while coasting and shrinks on RIM/ZUPT
        /// corrections.
        covariance_trace: f64,
        /// Which information source currently dominates the estimate.
        mode: FusedMode,
    },
}

/// Which information source dominates a [`StreamEvent::Fused`] estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusedMode {
    /// RIM corrections are flowing: IMU drift is actively bounded.
    RimAnchored,
    /// Moving with no recent usable RIM correction (CSI gap, blackout,
    /// or low confidence): the estimate is IMU dead reckoning and its
    /// covariance grows.
    ImuCoasting,
    /// The ZUPT detector reports a stationary device: velocity is
    /// clamped and the gyro bias is being re-estimated.
    Zupt,
}

/// The discriminant of a [`StreamEvent`], decoupled from each variant's
/// payload. `StreamEvent` is `#[non_exhaustive]` and grows variants over
/// time (`Degraded`, `Provisional`, `Fused`, …); match on the kind — or
/// on the event with a wildcard arm — instead of enumerating payloads,
/// and use [`StreamEventKind::wire_tag`] as the one registry of wire
/// discriminants (documented in DESIGN.md) so serialisers cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StreamEventKind {
    /// [`StreamEvent::MovementStarted`].
    MovementStarted,
    /// [`StreamEvent::Segment`].
    Segment,
    /// [`StreamEvent::MovementStopped`].
    MovementStopped,
    /// [`StreamEvent::Degraded`].
    Degraded,
    /// [`StreamEvent::Recovered`].
    Recovered,
    /// [`StreamEvent::Provisional`].
    Provisional,
    /// [`StreamEvent::Fused`].
    Fused,
}

impl StreamEventKind {
    /// The stable wire discriminant for this kind. Tags are append-only:
    /// a value, once assigned, is never reused or renumbered.
    pub const fn wire_tag(self) -> u8 {
        match self {
            Self::MovementStarted => 0,
            Self::Segment => 1,
            Self::MovementStopped => 2,
            Self::Degraded => 3,
            Self::Recovered => 4,
            Self::Provisional => 5,
            Self::Fused => 6,
        }
    }

    /// Inverse of [`StreamEventKind::wire_tag`]; `None` for unassigned
    /// tags.
    pub const fn from_wire_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Self::MovementStarted),
            1 => Some(Self::Segment),
            2 => Some(Self::MovementStopped),
            3 => Some(Self::Degraded),
            4 => Some(Self::Recovered),
            5 => Some(Self::Provisional),
            6 => Some(Self::Fused),
            _ => None,
        }
    }

    /// Human-readable kind name (for logs and reports).
    pub const fn name(self) -> &'static str {
        match self {
            Self::MovementStarted => "movement_started",
            Self::Segment => "segment",
            Self::MovementStopped => "movement_stopped",
            Self::Degraded => "degraded",
            Self::Recovered => "recovered",
            Self::Provisional => "provisional",
            Self::Fused => "fused",
        }
    }
}

impl StreamEvent {
    /// This event's discriminant (see [`StreamEventKind`]).
    pub fn kind(&self) -> StreamEventKind {
        match self {
            Self::MovementStarted { .. } => StreamEventKind::MovementStarted,
            Self::Segment(_) => StreamEventKind::Segment,
            Self::MovementStopped { .. } => StreamEventKind::MovementStopped,
            Self::Degraded { .. } => StreamEventKind::Degraded,
            Self::Recovered { .. } => StreamEventKind::Recovered,
            Self::Provisional { .. } => StreamEventKind::Provisional,
            Self::Fused { .. } => StreamEventKind::Fused,
        }
    }
}

/// Why the stream entered degraded mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradeReason {
    /// A run of `lost` consecutive samples exceeded
    /// [`crate::GapConfig::max_gap`]; the open segment was split and the
    /// lost stretch skipped.
    InputGap {
        /// Consecutive samples lost.
        lost: u64,
    },
    /// The interpolated fraction of the watchdog window reached
    /// [`crate::GapConfig::degraded_enter`].
    HighInterpolation {
        /// Interpolated fraction at the transition.
        fraction: f64,
    },
    /// The last flushed segment resolved alignment on less than
    /// [`crate::GapConfig::min_coverage`] of its samples.
    LowAlignment {
        /// Alignment-coverage ratio of the offending segment.
        coverage: f64,
    },
}

/// One repaired sample leaving the [`GapFilter`]: a full set of
/// per-antenna snapshots plus whether any part of it was synthesised.
#[derive(Debug, Clone)]
pub struct GapSample {
    /// Sequence number this sample occupies.
    pub seq: u64,
    /// One snapshot per antenna, holes already repaired.
    pub snapshots: Vec<CsiSnapshot>,
    /// True when any snapshot was interpolated or held rather than
    /// measured.
    pub interpolated: bool,
}

/// What the [`GapFilter`] decided about one offered sample.
#[derive(Debug, Clone)]
pub enum GapOutcome {
    /// In-order (or bridged) samples ready to analyze, oldest first. A
    /// bridged gap delivers the synthesised samples followed by the
    /// offered one.
    Deliver(Vec<GapSample>),
    /// The gap before the offered sample exceeded `max_gap`: the lost
    /// stretch is unrecoverable, restart analysis at `resume`.
    Split {
        /// Consecutive samples lost.
        lost: u64,
        /// The offered sample, repaired, to restart from.
        resume: GapSample,
    },
    /// Nothing usable: the sample was dropped.
    Dropped(DropReason),
}

/// Why an offered sample was dropped rather than delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Sequence number of the most recently delivered sample — a
    /// duplicate delivery.
    Duplicate,
    /// Sequence number older than that — an out-of-order packet that
    /// arrived after its position was already bridged or skipped.
    Stale,
    /// No antenna carried data, or the stream has no history yet to
    /// repair a partial first sample from.
    Incomplete,
}

/// Sequence-number bookkeeping in front of the ring: detects missing,
/// duplicate, and out-of-order samples, repairs per-antenna holes by
/// holding the last measured value, and bridges whole-sample gaps of at
/// most `max_gap` by linear interpolation (bit-identical to
/// [`rim_dsp::interp::fill_gaps_complex`] on the same data).
#[derive(Debug)]
pub struct GapFilter {
    n_antennas: usize,
    max_gap: usize,
    /// Next expected sequence number; `None` until the epoch starts.
    next_seq: Option<u64>,
    /// Last delivered (repaired) sample — the left interpolation anchor.
    last: Vec<CsiSnapshot>,
}

impl GapFilter {
    /// A filter for `n_antennas`-wide samples bridging gaps of at most
    /// `max_gap` samples.
    pub fn new(n_antennas: usize, max_gap: usize) -> Self {
        Self {
            n_antennas,
            max_gap,
            next_seq: None,
            last: Vec::new(),
        }
    }

    /// The next sequence number the filter expects (0 before the first
    /// delivery).
    pub fn next_expected(&self) -> u64 {
        self.next_seq.unwrap_or(0)
    }

    /// Offers one sequence-numbered sample; `None` entries are antennas
    /// whose snapshot was lost.
    ///
    /// # Panics
    /// When `antennas.len()` differs from the count fixed at
    /// construction.
    pub fn offer(&mut self, seq: u64, antennas: &[Option<CsiSnapshot>]) -> GapOutcome {
        self.offer_owned(seq, antennas.to_vec())
    }

    /// The zero-copy fast path for dense in-order capture: the sample is
    /// implicitly the next expected sequence number with every antenna
    /// measured, so the snapshots are moved straight into the delivered
    /// [`GapSample`] and the interpolation anchor is refreshed in place —
    /// no per-sample snapshot allocation once the shapes stabilise.
    ///
    /// # Panics
    /// When `snapshots.len()` differs from the count fixed at
    /// construction.
    pub fn offer_dense(&mut self, snapshots: Vec<CsiSnapshot>) -> GapOutcome {
        assert_eq!(
            snapshots.len(),
            self.n_antennas,
            "antenna count is fixed at construction"
        );
        let seq = self.next_expected();
        if self.last.len() == snapshots.len() {
            for (anchor, snap) in self.last.iter_mut().zip(&snapshots) {
                copy_snapshot_into(anchor, snap);
            }
        } else {
            self.last.clone_from(&snapshots);
        }
        self.next_seq = Some(seq + 1);
        GapOutcome::Deliver(vec![GapSample {
            seq,
            snapshots,
            interpolated: false,
        }])
    }

    /// [`GapFilter::offer`] taking ownership: measured snapshots are
    /// moved into the outcome rather than cloned; only hole repairs
    /// (which synthesise a value from history) still copy.
    ///
    /// # Panics
    /// When `antennas.len()` differs from the count fixed at
    /// construction.
    pub fn offer_owned(&mut self, seq: u64, antennas: Vec<Option<CsiSnapshot>>) -> GapOutcome {
        assert_eq!(
            antennas.len(),
            self.n_antennas,
            "antenna count is fixed at construction"
        );
        if antennas.iter().all(Option::is_none) {
            // A fully-lost sample carries no information beyond what its
            // absence from the sequence numbering already says.
            return GapOutcome::Dropped(DropReason::Incomplete);
        }
        let expected = match self.next_seq {
            None => {
                // Epoch start: require a fully-measured sample so later
                // repairs have a real anchor.
                if antennas.iter().any(Option::is_none) {
                    return GapOutcome::Dropped(DropReason::Incomplete);
                }
                let snapshots: Vec<CsiSnapshot> = antennas.into_iter().flatten().collect();
                self.last.clone_from(&snapshots);
                self.next_seq = Some(seq + 1);
                return GapOutcome::Deliver(vec![GapSample {
                    seq,
                    snapshots,
                    interpolated: false,
                }]);
            }
            Some(e) => e,
        };
        if seq < expected {
            return GapOutcome::Dropped(if seq + 1 == expected {
                DropReason::Duplicate
            } else {
                DropReason::Stale
            });
        }
        // Repair per-antenna holes by holding the last delivered value;
        // measured snapshots move, they are not cloned.
        let mut interpolated = false;
        let snapshots: Vec<CsiSnapshot> = antennas
            .into_iter()
            .enumerate()
            .map(|(a, s)| match s {
                Some(s) => s,
                None => {
                    interpolated = true;
                    self.last[a].clone()
                }
            })
            .collect();
        let gap = (seq - expected) as usize;
        let outcome = if gap == 0 {
            GapOutcome::Deliver(vec![GapSample {
                seq,
                snapshots: self.refresh_anchor(snapshots),
                interpolated,
            }])
        } else if gap <= self.max_gap {
            // Bridge: interpolate the missing samples between the last
            // delivered one (at `expected - 1`) and the offered one with
            // the batch repair's exact arithmetic.
            let span = (gap + 1) as f64;
            let mut out = Vec::with_capacity(gap + 1);
            for step in 0..gap {
                let t = (step + 1) as f64 / span;
                let bridged = self
                    .last
                    .iter()
                    .zip(&snapshots)
                    .map(|(l, r)| lerp_snapshot(l, r, t))
                    .collect();
                out.push(GapSample {
                    seq: expected + step as u64,
                    snapshots: bridged,
                    interpolated: true,
                });
            }
            out.push(GapSample {
                seq,
                snapshots: self.refresh_anchor(snapshots),
                interpolated,
            });
            GapOutcome::Deliver(out)
        } else {
            GapOutcome::Split {
                lost: gap as u64,
                resume: GapSample {
                    seq,
                    snapshots: self.refresh_anchor(snapshots),
                    interpolated,
                },
            }
        };
        self.next_seq = Some(seq + 1);
        outcome
    }

    /// Copies the delivered snapshots into the interpolation anchor
    /// (reusing its allocations) and passes them back through.
    fn refresh_anchor(&mut self, snapshots: Vec<CsiSnapshot>) -> Vec<CsiSnapshot> {
        if self.last.len() == snapshots.len() {
            for (anchor, snap) in self.last.iter_mut().zip(&snapshots) {
                copy_snapshot_into(anchor, snap);
            }
        } else {
            self.last.clone_from(&snapshots);
        }
        snapshots
    }
}

/// Copies `src` into `dst` reusing `dst`'s buffers: per-TX subcarrier
/// vectors are cleared and refilled rather than reallocated, so a steady
/// stream of same-shape samples causes no heap churn here.
fn copy_snapshot_into(dst: &mut CsiSnapshot, src: &CsiSnapshot) {
    dst.per_tx.resize(src.per_tx.len(), Vec::new());
    for (d, s) in dst.per_tx.iter_mut().zip(&src.per_tx) {
        d.clear();
        d.extend_from_slice(s);
    }
}

/// Component-wise linear interpolation between two snapshots, using the
/// same expression as [`rim_dsp::interp::fill_gaps_complex`] so streamed
/// repairs are bit-identical to batch repairs of the same gap.
fn lerp_snapshot(l: &CsiSnapshot, r: &CsiSnapshot, t: f64) -> CsiSnapshot {
    CsiSnapshot {
        per_tx: l
            .per_tx
            .iter()
            .zip(&r.per_tx)
            .map(|(lc, rc)| {
                lc.iter()
                    .zip(rc)
                    .map(|(&lv, &rv)| lv + (rv - lv).scale(t))
                    .collect()
            })
            .collect(),
    }
}

/// Degraded-mode watchdog: tracks input continuity (interpolated
/// fraction over a sliding window, forced splits) and alignment quality
/// (the last segment's coverage) with enter/exit hysteresis, and turns
/// state changes into [`StreamEvent::Degraded`] /
/// [`StreamEvent::Recovered`] transitions.
#[derive(Debug)]
struct Watchdog {
    cfg: GapConfig,
    /// Interpolation flags of the newest `watchdog_window` samples.
    recent: VecDeque<bool>,
    interp_in_window: usize,
    /// Input-continuity degradation cause (interpolation or splits).
    input_bad: bool,
    /// Alignment-quality degradation cause (low segment coverage).
    alignment_bad: bool,
    /// Index of the most recent forced split; holds input degradation
    /// for a full window afterwards.
    last_split: Option<usize>,
    /// Cumulative delivered samples observed while degraded.
    degraded_samples: u64,
}

impl Watchdog {
    fn new(cfg: GapConfig) -> Self {
        Self {
            cfg,
            recent: VecDeque::with_capacity(cfg.watchdog_window + 1),
            interp_in_window: 0,
            input_bad: false,
            alignment_bad: false,
            last_split: None,
            degraded_samples: 0,
        }
    }

    fn degraded(&self) -> bool {
        self.input_bad || self.alignment_bad
    }

    /// Interpolated fraction of the current window.
    fn fraction(&self) -> f64 {
        if self.recent.is_empty() {
            0.0
        } else {
            self.interp_in_window as f64 / self.recent.len() as f64
        }
    }

    /// Records one delivered sample; returns the transition event this
    /// sample caused, if any.
    fn on_sample(&mut self, interpolated: bool, at: usize) -> Option<StreamEvent> {
        let was = self.degraded();
        self.recent.push_back(interpolated);
        if interpolated {
            self.interp_in_window += 1;
        }
        if self.recent.len() > self.cfg.watchdog_window && self.recent.pop_front() == Some(true) {
            self.interp_in_window -= 1;
        }
        let fraction = self.fraction();
        let mut reason = None;
        // The fraction is only meaningful over a full window: a couple of
        // lost packets among the first few samples is not degradation
        // (catastrophic early loss still degrades via the split path).
        let window_full = self.recent.len() >= self.cfg.watchdog_window;
        if !self.input_bad && window_full && fraction >= self.cfg.degraded_enter {
            self.input_bad = true;
            reason = Some(DegradeReason::HighInterpolation { fraction });
        } else if self.input_bad && fraction <= self.cfg.degraded_exit {
            // A recent split keeps input degraded for a full window even
            // though the (restarted) window looks healthy.
            let held = self
                .last_split
                .is_some_and(|s| at.saturating_sub(s) < self.cfg.watchdog_window);
            if !held {
                self.input_bad = false;
            }
        }
        if self.degraded() {
            self.degraded_samples += 1;
        }
        self.transition(was, at, reason)
    }

    /// Records a forced split at `at` that skipped `lost` samples.
    fn on_split(&mut self, at: usize, lost: u64) -> Option<StreamEvent> {
        let was = self.degraded();
        self.last_split = Some(at);
        self.input_bad = true;
        // The ring restarts after the gap; stale window contents would
        // dilute the post-gap fraction.
        self.recent.clear();
        self.interp_in_window = 0;
        self.transition(was, at, Some(DegradeReason::InputGap { lost }))
    }

    /// Records a flushed segment's alignment-coverage ratio.
    fn on_segment(&mut self, coverage: f64, at: usize) -> Option<StreamEvent> {
        let was = self.degraded();
        self.alignment_bad = coverage < self.cfg.min_coverage;
        self.transition(was, at, Some(DegradeReason::LowAlignment { coverage }))
    }

    fn transition(
        &self,
        was: bool,
        at: usize,
        reason: Option<DegradeReason>,
    ) -> Option<StreamEvent> {
        match (was, self.degraded()) {
            (false, true) => Some(StreamEvent::Degraded {
                at,
                reason: reason.unwrap_or(DegradeReason::HighInterpolation {
                    fraction: self.fraction(),
                }),
            }),
            (true, false) => Some(StreamEvent::Recovered { at }),
            _ => None,
        }
    }
}

/// One unit of streaming input, accepted by [`RimStream::ingest`] and
/// [`StreamSession::ingest`].
///
/// The three variants correspond to the three acquisition front-ends:
/// dense in-order capture, lossy sequence-numbered capture, and the
/// output of the cross-NIC synchronizer. Conversions exist from the
/// natural argument shapes so call sites stay terse:
///
/// ```no_run
/// # fn run(stream: &mut rim_core::RimStream,
/// #        snaps: Vec<rim_csi::frame::CsiSnapshot>,
/// #        holes: Vec<Option<rim_csi::frame::CsiSnapshot>>,
/// #        sample: &rim_csi::sync::SyncedSample)
/// #     -> Result<(), rim_core::Error> {
/// stream.ingest(&snaps[..])?;        // dense, implicitly next in sequence
/// stream.ingest((7, &holes[..]))?;   // sequence-numbered with loss
/// stream.ingest(sample)?;            // synchronizer output
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub enum StreamInput {
    /// A dense, in-order sample: one snapshot per antenna, implicitly
    /// the next in sequence with nothing lost.
    Dense(Vec<CsiSnapshot>),
    /// A sequence-numbered sample with per-antenna loss (`None` = that
    /// antenna's snapshot was lost); the gap-tolerant entry point.
    Sequenced {
        /// Broadcast sequence number.
        seq: u64,
        /// Per-antenna snapshot or `None` on loss.
        antennas: Vec<Option<CsiSnapshot>>,
    },
    /// A synchronizer output sample (see [`rim_csi::sync::synchronize`]).
    Synced(SyncedSample),
    /// A batch of inertial samples. A bare [`RimStream`] is CSI-only and
    /// counts-then-drops these (see [`RimStream::ingest`]); wrap the
    /// stream in `rim-tracking`'s `FusedStream` to fuse them into
    /// [`StreamEvent::Fused`] estimates.
    Imu(Vec<ImuSample>),
}

/// One inertial sample flowing through [`StreamInput::Imu`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuSample {
    /// Timestamp, microseconds, on the IMU's own clock. Must be
    /// monotone within and across batches of one stream.
    pub t_us: u64,
    /// Body-frame specific acceleration, m/s² (x = device forward axis).
    pub accel_body: Vec2,
    /// Angular rate about z, rad/s.
    pub gyro_z: f64,
    /// Magnetometer heading estimate, radians, when the device has one.
    pub mag_orientation: Option<f64>,
}

impl From<Vec<ImuSample>> for StreamInput {
    fn from(samples: Vec<ImuSample>) -> Self {
        StreamInput::Imu(samples)
    }
}

impl From<&[ImuSample]> for StreamInput {
    fn from(samples: &[ImuSample]) -> Self {
        StreamInput::Imu(samples.to_vec())
    }
}

impl From<&[CsiSnapshot]> for StreamInput {
    fn from(snapshots: &[CsiSnapshot]) -> Self {
        StreamInput::Dense(snapshots.to_vec())
    }
}

impl From<Vec<CsiSnapshot>> for StreamInput {
    fn from(snapshots: Vec<CsiSnapshot>) -> Self {
        StreamInput::Dense(snapshots)
    }
}

impl From<(u64, &[Option<CsiSnapshot>])> for StreamInput {
    fn from((seq, antennas): (u64, &[Option<CsiSnapshot>])) -> Self {
        StreamInput::Sequenced {
            seq,
            antennas: antennas.to_vec(),
        }
    }
}

impl From<(u64, Vec<Option<CsiSnapshot>>)> for StreamInput {
    fn from((seq, antennas): (u64, Vec<Option<CsiSnapshot>>)) -> Self {
        StreamInput::Sequenced { seq, antennas }
    }
}

impl From<&SyncedSample> for StreamInput {
    fn from(sample: &SyncedSample) -> Self {
        StreamInput::Synced(sample.clone())
    }
}

impl From<SyncedSample> for StreamInput {
    fn from(sample: SyncedSample) -> Self {
        StreamInput::Synced(sample)
    }
}

/// Push-based RIM engine with bounded memory.
#[derive(Debug)]
pub struct RimStream {
    rim: Rim,
    /// Sequence-number repair in front of the ring.
    gap_filter: GapFilter,
    /// Degraded-mode watchdog.
    watchdog: Watchdog,
    /// Ring of recent normalised snapshots per antenna.
    ring: Vec<VecDeque<NormSnapshot>>,
    /// Absolute index of the first sample currently in the ring.
    ring_base: usize,
    /// Absolute index one past the newest ingested sample. Lost
    /// stretches advance this by their span, so indices stay aligned
    /// with sequence numbers.
    pushed: usize,
    /// Sequence number of the first delivered sample (absolute index 0).
    first_seq: Option<u64>,
    /// Per-sample movement flags for the ring span (same base).
    moving: VecDeque<bool>,
    /// Per-sample "was interpolated" flags for the ring span (same base).
    interp: VecDeque<bool>,
    /// Absolute start of the currently open moving segment.
    open_segment: Option<usize>,
    /// Whether the open segment has already been partially flushed (so
    /// later flushes must not re-apply the initial-motion compensation).
    segment_continued: bool,
    /// Online cross-TRRS columns, kept in lockstep with the ring (only
    /// when [`RimConfig::incremental`] is set).
    cache: Option<ColumnCache>,
    /// Provisional-estimate state for the open segment.
    tracker: Option<ProvisionalTracker>,
    /// Ring capacity.
    capacity: usize,
    /// Maximum open-segment length before a partial flush.
    max_open: usize,
    /// Sample rate, Hz.
    fs: f64,
    /// Subcarrier count of the first accepted snapshot. The TRRS kernels
    /// score snapshots on mismatched grids as zero similarity instead of
    /// failing (TX-count disagreement, by contrast, truncates gracefully
    /// and is only counted — see `TX_MISMATCH`), so a mid-stream grid
    /// change (56 ↔ 114 ↔ 242 subcarriers) would silently corrupt every
    /// estimate; the boundary pins the grid instead.
    grid: Option<usize>,
}

/// A builder-style handle for probed streaming pushes, created by
/// [`RimStream::session`]. Mirrors [`crate::Session`] for the push-based
/// engine:
///
/// ```no_run
/// # fn run(stream: &mut rim_core::RimStream,
/// #        snaps: &[rim_csi::frame::CsiSnapshot])
/// #     -> Result<(), rim_core::Error> {
/// let recorder = rim_obs::Recorder::new();
/// let events = stream.session().probe(&recorder).ingest(snaps)?;
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct StreamSession<'s, P: Probe + ?Sized = NullProbe> {
    stream: &'s mut RimStream,
    probe: &'s P,
    trace: Option<&'s mut ActiveTrace>,
}

impl<'s, P: Probe + ?Sized> StreamSession<'s, P> {
    /// Attaches an observability probe: the streaming front-end reports
    /// ring occupancy, sample/segment/gap counters, and flush latency
    /// under [`stage::STREAM`]; the per-segment analyses it triggers
    /// report under the six pipeline stages.
    pub fn probe<Q: Probe + ?Sized>(self, probe: &'s Q) -> StreamSession<'s, Q> {
        StreamSession {
            stream: self.stream,
            probe,
            trace: self.trace,
        }
    }

    /// Attaches a per-request trace: the next [`StreamSession::ingest`]
    /// records an [`SpanKind::IncrementalIngest`] span covering the whole
    /// call, with a child [`SpanKind::Flush`] span for any segment flush
    /// it triggers. Tracing is purely observational — events are
    /// bit-identical with or without it.
    pub fn trace(self, trace: &'s mut ActiveTrace) -> StreamSession<'s, P> {
        StreamSession {
            stream: self.stream,
            probe: self.probe,
            trace: Some(trace),
        }
    }

    /// Ingests one unit of streaming input — dense, sequence-numbered,
    /// or synchronizer output (see [`StreamInput`]) — and returns any
    /// events it completes.
    ///
    /// # Errors
    /// [`Error::AntennaMismatch`] when the snapshot count differs from
    /// the geometry's antennas; [`Error::NonFiniteCsi`] when a present
    /// snapshot contains NaN or infinite values.
    pub fn ingest(&mut self, input: impl Into<StreamInput>) -> Result<Vec<StreamEvent>, Error> {
        self.stream
            .ingest_input(input.into(), self.probe, self.trace.as_deref_mut())
    }

    /// Flushes the open segment if any (e.g. at end of stream) and
    /// returns its estimate.
    pub fn finish(&mut self) -> Vec<StreamEvent> {
        self.stream.finish_internal(self.probe)
    }
}

impl RimStream {
    /// Creates a streaming engine for the configuration's sample rate
    /// ([`RimConfig::sample_rate_hz`]). The ring holds `4·(W + V)`
    /// samples plus the maximum open-segment length. Gap tolerance and
    /// watchdog behaviour come from [`RimConfig::gap`].
    ///
    /// # Errors
    /// The same validation as [`Rim::new`]: [`Error::Config`] for
    /// out-of-range parameters, [`Error::Geometry`] for arrays with
    /// fewer than two antennas.
    pub fn new(geometry: ArrayGeometry, config: RimConfig) -> Result<Self, Error> {
        Ok(Self::with_engine(Rim::new(geometry, config)?))
    }

    /// Builds a streaming front-end around an existing engine, sharing
    /// its validated configuration and thread pool. This is how a
    /// multi-session server keeps N streams on one pool instead of N:
    /// [`Rim`] is cheap to clone (the pool is shared by `Arc`), so each
    /// session wraps a clone of one template engine.
    pub fn with_engine(rim: Rim) -> Self {
        let config = rim.config();
        let w = config.alignment.window;
        let v = config.alignment.virtual_antennas;
        let fs = config.sample_rate_hz;
        let gap = config.gap;
        let max_open = (4.0 * fs) as usize; // flush at least every 4 s
        let capacity = max_open + 4 * (w + v) + 8;
        let n_ant = rim.geometry().n_antennas();
        let cache = config
            .incremental
            .then(|| ColumnCache::new(rim.geometry(), w, config.precision));
        Self {
            gap_filter: GapFilter::new(n_ant, gap.max_gap),
            watchdog: Watchdog::new(gap),
            ring: (0..n_ant)
                .map(|_| VecDeque::with_capacity(capacity))
                .collect(),
            ring_base: 0,
            pushed: 0,
            first_seq: None,
            moving: VecDeque::with_capacity(capacity),
            interp: VecDeque::with_capacity(capacity),
            open_segment: None,
            segment_continued: false,
            cache,
            tracker: None,
            capacity,
            max_open,
            fs,
            grid: None,
            rim,
        }
    }

    /// Starts an un-instrumented streaming session (see
    /// [`StreamSession`]).
    pub fn session(&mut self) -> StreamSession<'_, NullProbe> {
        StreamSession {
            stream: self,
            probe: &NullProbe,
            trace: None,
        }
    }

    /// Samples on the stream's absolute time axis so far: delivered
    /// samples plus any lost stretches skipped by splits.
    pub fn samples_pushed(&self) -> usize {
        self.pushed
    }

    /// Current ring occupancy (bounded by the configured capacity).
    pub fn ring_len(&self) -> usize {
        self.ring.first().map_or(0, VecDeque::len)
    }

    /// Whether the watchdog currently reports degraded operation.
    pub fn degraded(&self) -> bool {
        self.watchdog.degraded()
    }

    /// Cumulative stream time spent degraded, seconds.
    pub fn degraded_time_s(&self) -> f64 {
        self.watchdog.degraded_samples as f64 / self.fs
    }

    /// Ingests one unit of streaming input and returns any events it
    /// completes. This is the single entry point for all three input
    /// shapes (see [`StreamInput`]): dense in-order samples are treated
    /// as the next expected sequence number with every antenna present;
    /// sequence-numbered and synchronizer samples go through the
    /// gap-tolerant path, where missing sequence numbers are bridged
    /// (short gaps) or split around (long gaps), duplicates and stale
    /// reorders are dropped, and per-antenna holes are repaired from
    /// history. Shorthand for [`RimStream::session`] +
    /// [`StreamSession::ingest`].
    ///
    /// # Errors
    /// [`Error::AntennaMismatch`] when the snapshot count differs from
    /// the geometry's antennas; [`Error::NonFiniteCsi`] when a present
    /// snapshot contains NaN or infinite values.
    pub fn ingest(&mut self, input: impl Into<StreamInput>) -> Result<Vec<StreamEvent>, Error> {
        self.ingest_input(input.into(), &NullProbe, None)
    }

    /// The ingest body: dispatches one [`StreamInput`] to the shared
    /// push/offer internals.
    fn ingest_input<P: Probe + ?Sized>(
        &mut self,
        input: StreamInput,
        probe: &P,
        trace: Option<&mut ActiveTrace>,
    ) -> Result<Vec<StreamEvent>, Error> {
        match input {
            StreamInput::Dense(snapshots) => self.push_internal(snapshots, probe, trace),
            StreamInput::Sequenced { seq, antennas } => {
                self.offer_internal(seq, antennas, probe, trace)
            }
            StreamInput::Synced(sample) => {
                self.offer_internal(sample.seq, sample.antennas, probe, trace)
            }
            StreamInput::Imu(samples) => {
                // A bare RimStream is CSI-only: IMU batches are counted
                // and dropped so mixed feeds stay valid through one entry
                // point. rim-tracking's FusedStream intercepts this
                // variant before it reaches here.
                probe.count(
                    stage::FUSION,
                    fusion_metric::IMU_SAMPLES_DROPPED,
                    samples.len() as u64,
                );
                Ok(Vec::new())
            }
        }
    }

    /// The push body: a clean push is an offer of the next expected
    /// sequence number with every antenna present. The snapshots are
    /// moved, not cloned — dense ingest is the zero-copy hot path.
    fn push_internal<P: Probe + ?Sized>(
        &mut self,
        snapshots: Vec<CsiSnapshot>,
        probe: &P,
        mut trace: Option<&mut ActiveTrace>,
    ) -> Result<Vec<StreamEvent>, Error> {
        if snapshots.len() != self.ring.len() {
            return Err(Error::AntennaMismatch {
                expected: self.ring.len(),
                got: snapshots.len(),
            });
        }
        let seq = self.gap_filter.next_expected();
        for (a, snap) in snapshots.iter().enumerate() {
            if !snap.is_finite() {
                return Err(Error::NonFiniteCsi {
                    antenna: a,
                    sample: seq as usize,
                });
            }
            self.check_shape(a, seq, snap)?;
        }
        let t0 = probe.enabled().then(Instant::now);
        let ingest_span = trace
            .as_deref_mut()
            .map(|t| t.open(SpanKind::IncrementalIngest));
        let outcome = self.gap_filter.offer_dense(snapshots);
        let events = self.handle_outcome(outcome, probe, trace.as_deref_mut());
        if let (Some(t), Some(id)) = (trace, ingest_span) {
            t.close(id);
        }
        self.note_ingest_latency(t0, probe);
        Ok(events)
    }

    /// The offer body shared by every sequence-numbered entry point.
    fn offer_internal<P: Probe + ?Sized>(
        &mut self,
        seq: u64,
        antennas: Vec<Option<CsiSnapshot>>,
        probe: &P,
        mut trace: Option<&mut ActiveTrace>,
    ) -> Result<Vec<StreamEvent>, Error> {
        if antennas.len() != self.ring.len() {
            return Err(Error::AntennaMismatch {
                expected: self.ring.len(),
                got: antennas.len(),
            });
        }
        for (a, snap) in antennas.iter().enumerate() {
            if let Some(s) = snap.as_ref() {
                if !s.is_finite() {
                    return Err(Error::NonFiniteCsi {
                        antenna: a,
                        sample: seq as usize,
                    });
                }
                self.check_shape(a, seq, s)?;
            }
        }
        let t0 = probe.enabled().then(Instant::now);
        let ingest_span = trace
            .as_deref_mut()
            .map(|t| t.open(SpanKind::IncrementalIngest));
        let outcome = self.gap_filter.offer_owned(seq, antennas);
        let events = self.handle_outcome(outcome, probe, trace.as_deref_mut());
        if let (Some(t), Some(id)) = (trace, ingest_span) {
            t.close(id);
        }
        self.note_ingest_latency(t0, probe);
        Ok(events)
    }

    /// Pins the stream's subcarrier grid to the first accepted snapshot
    /// and rejects later snapshots that disagree (see the `grid` field).
    fn check_shape(&mut self, antenna: usize, seq: u64, snap: &CsiSnapshot) -> Result<(), Error> {
        let sc = snap.n_subcarriers();
        if snap.per_tx.iter().any(|cfr| cfr.len() != sc) {
            return Err(Error::Geometry(format!(
                "ragged CSI at antenna {antenna} seq {seq}: \
                 TX streams disagree on subcarrier count"
            )));
        }
        match self.grid {
            None => {
                self.grid = Some(sc);
                Ok(())
            }
            Some(esc) if esc != sc => Err(Error::Geometry(format!(
                "subcarrier grid changed mid-stream at antenna {antenna} seq {seq}: \
                 {sc} subcarriers vs {esc} at stream start"
            ))),
            Some(_) => Ok(()),
        }
    }

    /// Records one ingest's wall-clock latency on the incremental-stage
    /// histogram (microseconds).
    fn note_ingest_latency<P: Probe + ?Sized>(&self, t0: Option<Instant>, probe: &P) {
        if let Some(t0) = t0 {
            probe.observe(
                stage::INCREMENTAL,
                incremental_metric::INGEST_LATENCY_US,
                t0.elapsed().as_secs_f64() * 1e6,
            );
        }
    }

    /// Applies one [`GapFilter`] outcome to the stream state.
    fn handle_outcome<P: Probe + ?Sized>(
        &mut self,
        outcome: GapOutcome,
        probe: &P,
        mut trace: Option<&mut ActiveTrace>,
    ) -> Vec<StreamEvent> {
        let mut events = Vec::new();
        match outcome {
            GapOutcome::Dropped(reason) => {
                let name = match reason {
                    DropReason::Duplicate => stream_metric::DUPLICATES,
                    DropReason::Stale => stream_metric::REORDERED,
                    DropReason::Incomplete => stream_metric::INCOMPLETE,
                };
                probe.count(stage::STREAM, name, 1);
            }
            GapOutcome::Deliver(samples) => {
                if samples.len() > 1 {
                    probe.count(stage::STREAM, stream_metric::GAPS, 1);
                    probe.count(
                        stage::STREAM,
                        stream_metric::INTERPOLATED,
                        (samples.len() - 1) as u64,
                    );
                }
                for sample in samples {
                    self.ingest_sample(sample, probe, &mut events, trace.as_deref_mut());
                }
            }
            GapOutcome::Split { lost, resume } => {
                probe.count(stage::STREAM, stream_metric::GAPS, 1);
                probe.count(stage::STREAM, stream_metric::SPLITS, 1);
                let gap_at = self.pushed;
                // Close the open segment at the edge of the gap rather
                // than integrating across unseen motion.
                if let Some(start) = self.open_segment.take() {
                    self.flush_and_note(start, gap_at, probe, &mut events, trace.as_deref_mut());
                    events.push(StreamEvent::MovementStopped { at: gap_at });
                }
                self.tracker = None;
                if let Some(ev) = self.watchdog.on_split(gap_at, lost) {
                    Self::count_transition(&ev, probe);
                    events.push(ev);
                }
                // Fast-forward past the lost stretch: absolute indices
                // track sequence numbers, so the resumed sample keeps its
                // place on the time axis. A resume seq from before the
                // epoch cannot be placed on the axis — drop it as stale
                // rather than rebasing onto an underflowed index.
                if let Some(resume_idx) = self.abs_index(resume.seq) {
                    for ring in &mut self.ring {
                        ring.clear();
                    }
                    self.moving.clear();
                    self.interp.clear();
                    self.ring_base = resume_idx;
                    self.pushed = resume_idx;
                    if let Some(cache) = self.cache.as_mut() {
                        cache.clear(resume_idx);
                    }
                    self.ingest_sample(resume, probe, &mut events, trace);
                } else {
                    probe.count(stage::STREAM, stream_metric::REORDERED, 1);
                }
            }
        }
        probe.gauge(
            stage::STREAM,
            stream_metric::INTERPOLATED_FRACTION,
            self.watchdog.fraction(),
        );
        probe.gauge(
            stage::STREAM,
            stream_metric::DEGRADED_TIME_S,
            self.degraded_time_s(),
        );
        events
    }

    /// Absolute sample index of a sequence number (index 0 = first
    /// delivered sample), or `None` for a sequence number from before the
    /// epoch — a stale leftover that must not underflow the time axis.
    fn abs_index(&mut self, seq: u64) -> Option<usize> {
        let first = *self.first_seq.get_or_insert(seq);
        seq.checked_sub(first).map(|d| d as usize)
    }

    /// Counts a watchdog transition event on the probe.
    fn count_transition<P: Probe + ?Sized>(event: &StreamEvent, probe: &P) {
        match event {
            StreamEvent::Degraded { .. } => {
                probe.count(stage::STREAM, stream_metric::DEGRADED_EVENTS, 1);
            }
            StreamEvent::Recovered { .. } => {
                probe.count(stage::STREAM, stream_metric::RECOVERED_EVENTS, 1);
            }
            _ => {}
        }
    }

    /// Ingests one delivered (repaired) sample into the ring and runs
    /// the incremental segmentation state machine on it.
    fn ingest_sample<P: Probe + ?Sized>(
        &mut self,
        sample: GapSample,
        probe: &P,
        events: &mut Vec<StreamEvent>,
        mut trace: Option<&mut ActiveTrace>,
    ) {
        let Some(newest) = self.abs_index(sample.seq) else {
            // Pre-epoch sequence number: placing it would underflow the
            // absolute time axis. Drop it like any other stale reorder.
            probe.count(stage::STREAM, stream_metric::REORDERED, 1);
            return;
        };
        debug_assert_eq!(newest, self.pushed, "delivered samples are contiguous");
        let tx0 = sample.snapshots.first().map_or(0, |s| s.per_tx.len());
        if sample.snapshots.iter().any(|s| s.per_tx.len() != tx0) {
            // Antennas disagree on the TX count: `trrs_avg` will truncate
            // to the common prefix (see its truncation contract).
            probe.count(stage::STREAM, stream_metric::TX_MISMATCH, 1);
        }
        for (ring, snap) in self.ring.iter_mut().zip(&sample.snapshots) {
            ring.push_back(NormSnapshot::from_snapshot(snap));
        }
        if let Some(cache) = self.cache.as_mut() {
            let built = cache.on_sample(&self.ring, self.ring_base);
            if built > 0 {
                probe.count(stage::INCREMENTAL, incremental_metric::COLUMNS_BUILT, built);
            }
        }
        self.interp.push_back(sample.interpolated);
        self.pushed = newest + 1;

        // Incremental movement detection: min self-TRRS across antennas
        // at the newest sample.
        let mcfg = self.rim.config().movement;
        let flag = self.instant_movement(&mcfg);
        self.moving.push_back(flag);

        match (self.open_segment, flag) {
            (None, true) => {
                // Debounce opening: a lone moving flag (noise flicker while
                // static) must not start a segment. Require a short run of
                // consecutive moving samples, then backdate the start to
                // cover the confirmation wait plus the indicator lag.
                let confirm = ((0.05 * self.fs) as usize).max(2);
                let tail_moving = self.moving.len() >= confirm
                    && self.moving.iter().rev().take(confirm).all(|&m| m);
                if tail_moving {
                    let start = (newest + 1 - confirm)
                        .saturating_sub(mcfg.lag)
                        .max(self.ring_base);
                    self.open_segment = Some(start);
                    self.segment_continued = false;
                    events.push(StreamEvent::MovementStarted { at: start });
                    if self.rim.config().provisional_every > 0 {
                        if let Some(cache) = self.cache.as_ref() {
                            self.tracker = Some(ProvisionalTracker::new(
                                self.rim.geometry(),
                                self.rim.config(),
                                cache,
                                start,
                            ));
                        }
                    }
                }
            }
            (Some(start), false) => {
                // Require a debounce of consecutive static samples before
                // closing (cheap: check the tail of the flags).
                let quiet = (0.2 * self.fs) as usize;
                let tail_static = self.moving.iter().rev().take(quiet).all(|&m| !m);
                if tail_static && self.moving.len() >= quiet {
                    self.flush_and_note(
                        start,
                        newest + 1 - quiet.min(newest),
                        probe,
                        events,
                        trace.as_deref_mut(),
                    );
                    events.push(StreamEvent::MovementStopped { at: newest });
                    self.open_segment = None;
                    self.tracker = None;
                }
            }
            (Some(start), true) => {
                // Partial flush of very long movements to bound memory.
                if newest - start >= self.max_open {
                    let flushed = self
                        .flush_and_note(start, newest + 1, probe, events, trace)
                        .unwrap_or(0.0);
                    self.open_segment = Some(newest + 1);
                    self.segment_continued = true;
                    if let Some(tracker) = self.tracker.as_mut() {
                        tracker.on_partial_flush(flushed, newest + 1);
                    }
                }
            }
            (None, false) => {}
        }

        if self.open_segment.is_some() {
            if let (Some(tracker), Some(cache)) = (self.tracker.as_mut(), self.cache.as_ref()) {
                if let Some(p) = tracker.on_sample(cache, newest) {
                    let mut confidence = p.confidence;
                    // The tracker cannot see which samples were
                    // synthesised; patch the fraction from the stream's
                    // own bookkeeping, like the segment flush does.
                    let start = self.open_segment.unwrap_or(newest);
                    let s_rel = start.saturating_sub(self.ring_base);
                    let span = (newest + 1).saturating_sub(self.ring_base + s_rel);
                    if span > 0 {
                        let synth = self
                            .interp
                            .iter()
                            .skip(s_rel)
                            .take(span)
                            .filter(|&&b| b)
                            .count();
                        confidence.interpolated_fraction = synth as f64 / span as f64;
                    }
                    probe.count(stage::INCREMENTAL, incremental_metric::PROVISIONALS, 1);
                    events.push(StreamEvent::Provisional {
                        at: newest,
                        distance_so_far: p.distance_so_far,
                        heading: p.heading,
                        confidence,
                    });
                }
            }
        }

        if let Some(ev) = self.watchdog.on_sample(sample.interpolated, newest) {
            Self::count_transition(&ev, probe);
            events.push(ev);
        }

        self.trim_ring();
        probe.count(stage::STREAM, "samples_pushed", 1);
        probe.gauge(stage::STREAM, "ring_occupancy", self.ring_len() as f64);
        probe.gauge(stage::STREAM, "ring_capacity", self.capacity as f64);
    }

    /// Flushes the open segment if any (e.g. at end of stream) and
    /// returns its estimate. Shorthand for [`RimStream::session`] +
    /// [`StreamSession::finish`].
    pub fn finish(&mut self) -> Vec<StreamEvent> {
        self.finish_internal(&NullProbe)
    }

    /// The finish body shared by the public entry points.
    fn finish_internal<P: Probe + ?Sized>(&mut self, probe: &P) -> Vec<StreamEvent> {
        let mut events = Vec::new();
        if let Some(start) = self.open_segment.take() {
            self.flush_and_note(start, self.pushed, probe, &mut events, None);
            events.push(StreamEvent::MovementStopped { at: self.pushed });
            self.tracker = None;
        }
        events
    }

    /// Movement flag for the newest ring sample.
    fn instant_movement(&mut self, mcfg: &MovementConfig) -> bool {
        let len = self.ring_len();
        if len <= mcfg.lag {
            return false;
        }
        // Evaluate the indicator over a short suffix window and take the
        // newest value (min across antennas). Borrow the ring in place —
        // `make_contiguous` only rotates storage when the deque wrapped,
        // so the steady-state sample ingests with zero snapshot clones.
        let tail = (mcfg.lag + mcfg.virtual_antennas + 1).min(len);
        let mut min_ind = f64::INFINITY;
        for ring in &mut self.ring {
            let slice = &ring.make_contiguous()[len - tail..];
            let ind = movement_indicator(slice, *mcfg);
            if let Some(&v) = ind.last() {
                min_ind = min_ind.min(v);
            }
        }
        min_ind < mcfg.threshold
    }

    /// Flushes `[start, end)`, emits the segment event, and feeds the
    /// segment's alignment coverage to the watchdog. Returns the flushed
    /// distance (metres) when a segment resolved.
    fn flush_and_note<P: Probe + ?Sized>(
        &mut self,
        start: usize,
        end: usize,
        probe: &P,
        events: &mut Vec<StreamEvent>,
        trace: Option<&mut ActiveTrace>,
    ) -> Option<f64> {
        if let Some(seg) = self.flush_segment(start, end, probe, trace) {
            let coverage = seg.confidence.alignment_coverage;
            let at = seg.end;
            let distance = seg.distance_m;
            events.push(StreamEvent::Segment(seg));
            if let Some(ev) = self.watchdog.on_segment(coverage, at) {
                Self::count_transition(&ev, probe);
                events.push(ev);
            }
            Some(distance)
        } else {
            None
        }
    }

    /// Analyzes absolute range `[start, end)` and returns its segment
    /// estimate (if the stretch was resolvable).
    fn flush_segment<P: Probe + ?Sized>(
        &mut self,
        start: usize,
        end: usize,
        probe: &P,
        mut trace: Option<&mut ActiveTrace>,
    ) -> Option<SegmentEstimate> {
        if end <= start {
            return None;
        }
        // Flush latency: everything from ring materialisation through the
        // per-segment pipeline run. The trace span nests under the
        // enclosing ingest span; if the flush bails out early, the parent
        // span's close sweeps it up.
        let _span = probe.span(stage::STREAM);
        let flush_span = trace.as_deref_mut().map(|t| t.open(SpanKind::Flush));
        // Lend the ring as contiguous slices — no snapshot is cloned;
        // `make_contiguous` only rotates the deque's backing storage.
        for ring in &mut self.ring {
            ring.make_contiguous();
        }
        let series: Vec<&[NormSnapshot]> = self.ring.iter().map(|r| r.as_slices().0).collect();
        let s_rel = start.checked_sub(self.ring_base)?;
        let e_rel = (end - self.ring_base).min(series[0].len());
        if e_rel <= s_rel {
            return None;
        }
        // Reuse the incrementally built columns: the cache is indexed on
        // the same ring-relative axis as the materialised series, and
        // materialisation re-masks every entry against the series bounds,
        // so the analysis is bit-identical to recomputing from scratch.
        let input = SegmentInput {
            series,
            columns: self.cache.as_ref(),
        };
        let mut result =
            self.rim
                .analyze_segment(&input, self.fs, s_rel, e_rel, self.rim.pool(), probe);
        if self.segment_continued {
            // A continuation chunk: remove the per-segment Δd compensation
            // that analyze_segment applied (the motion did not restart).
            if self.rim.config().compensate_initial_motion {
                let sep = self
                    .rim
                    .geometry()
                    .pairs()
                    .iter()
                    .map(|p| p.separation)
                    .fold(f64::INFINITY, f64::min);
                if sep.is_finite() && result.summary.distance_m >= sep {
                    result.summary.distance_m -= sep;
                }
            }
        }
        // The batch pipeline cannot see which ring samples were
        // synthesised; patch the confidence from the stream's own
        // bookkeeping.
        let span_len = e_rel - s_rel;
        let synth = self
            .interp
            .iter()
            .skip(s_rel)
            .take(span_len)
            .filter(|&&b| b)
            .count();
        result.summary.confidence.interpolated_fraction = synth as f64 / span_len as f64;
        // Re-anchor to absolute sample indices.
        result.summary.start = start;
        result.summary.end = end;
        probe.count(stage::STREAM, "segments_flushed", 1);
        if let (Some(t), Some(id)) = (trace, flush_span) {
            t.close(id);
        }
        Some(result.summary)
    }

    /// Drops ring history that no open segment can still need.
    fn trim_ring(&mut self) {
        let keep_from = match self.open_segment {
            Some(start) => start.saturating_sub(
                2 * (self.rim.config().alignment.window
                    + self.rim.config().alignment.virtual_antennas),
            ),
            None => self.pushed.saturating_sub(
                2 * (self.rim.config().alignment.window
                    + self.rim.config().alignment.virtual_antennas)
                    + 4,
            ),
        };
        while self.ring_base < keep_from && self.ring_len() > 1 {
            for ring in &mut self.ring {
                ring.pop_front();
            }
            self.moving.pop_front();
            self.interp.pop_front();
            self.ring_base += 1;
        }
        // Hard cap: never exceed capacity.
        while self.ring_len() > self.capacity {
            for ring in &mut self.ring {
                ring.pop_front();
            }
            self.moving.pop_front();
            self.interp.pop_front();
            self.ring_base += 1;
        }
        if let Some(cache) = self.cache.as_mut() {
            cache.trim_to(self.ring_base);
        }
    }
}

/// Aggregates streamed segments into totals comparable with the offline
/// [`MotionEstimate`], plus a tally of watchdog transitions.
#[derive(Debug, Clone, Default)]
pub struct StreamAggregate {
    /// Segments seen so far.
    pub segments: Vec<SegmentEstimate>,
    /// [`StreamEvent::Degraded`] transitions seen.
    pub degraded: usize,
    /// [`StreamEvent::Recovered`] transitions seen.
    pub recovered: usize,
}

impl StreamAggregate {
    /// Consumes events.
    pub fn absorb(&mut self, events: &[StreamEvent]) {
        for e in events {
            match e {
                StreamEvent::Segment(s) => self.segments.push(s.clone()),
                StreamEvent::Degraded { .. } => self.degraded += 1,
                StreamEvent::Recovered { .. } => self.recovered += 1,
                _ => {}
            }
        }
    }

    /// Total travelled distance.
    pub fn total_distance(&self) -> f64 {
        self.segments.iter().map(|s| s.distance_m).sum()
    }

    /// Net rotation, radians.
    pub fn total_rotation(&self) -> f64 {
        self.segments.iter().map(|s| s.rotation_rad).sum()
    }

    /// Mean confidence score across segments (1.0 when no segments were
    /// emitted: nothing was claimed, so nothing is in doubt).
    pub fn mean_confidence(&self) -> f64 {
        if self.segments.is_empty() {
            return 1.0;
        }
        self.segments
            .iter()
            .map(|s| s.confidence.score())
            .sum::<f64>()
            / self.segments.len() as f64
    }

    /// Compares against an offline estimate (used in tests).
    pub fn distance_gap(&self, offline: &MotionEstimate) -> f64 {
        (self.total_distance() - offline.total_distance()).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_array::HALF_WAVELENGTH;
    use rim_channel::simulator::{ApConfig, ChannelSimulator};
    use rim_channel::trajectory::{dwell, line, OrientationMode};
    use rim_channel::{uniform_field, Floorplan, RayTracer, SubcarrierLayout, TracerConfig};
    use rim_csi::recorder::{CsiRecorder, DeviceConfig, RecorderConfig};
    use rim_dsp::complex::Complex64;
    use rim_dsp::geom::Point2;
    use rim_dsp::interp::fill_gaps_complex;

    fn small_sim() -> ChannelSimulator {
        let scat = uniform_field(
            Point2::new(-12.0, -12.0),
            Point2::new(12.0, 12.0),
            90,
            0.35,
            5,
        );
        let tracer = RayTracer::new(
            Floorplan::empty(),
            scat,
            Vec::new(),
            TracerConfig::default(),
        );
        ChannelSimulator::new(
            tracer,
            SubcarrierLayout::ht20_5ghz(),
            ApConfig::standard(Point2::new(-6.0, 0.0)),
        )
    }

    fn config(fs: f64) -> RimConfig {
        RimConfig::for_sample_rate(fs).with_min_speed(0.3, HALF_WAVELENGTH, fs)
    }

    /// A one-TX snapshot with distinct subcarrier values derived from
    /// `base`, for exact-value assertions.
    fn probe_snap(base: f64) -> CsiSnapshot {
        CsiSnapshot {
            per_tx: vec![(0..4)
                .map(|s| Complex64::new(base + s as f64, base * 0.5 - s as f64))
                .collect()],
        }
    }

    #[test]
    fn gap_filter_bridges_short_gaps_like_batch_interp() {
        let mut filter = GapFilter::new(1, 3);
        let a = probe_snap(1.0);
        let b = probe_snap(5.0);
        assert!(matches!(
            filter.offer(0, &[Some(a.clone())]),
            GapOutcome::Deliver(ref v) if v.len() == 1 && !v[0].interpolated
        ));
        // Seqs 1 and 2 are lost; offering 3 bridges the gap.
        let out = filter.offer(3, &[Some(b.clone())]);
        let GapOutcome::Deliver(samples) = out else {
            panic!("expected delivery, got {out:?}");
        };
        assert_eq!(samples.len(), 3);
        assert_eq!(
            samples.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(samples[0].interpolated && samples[1].interpolated);
        assert!(!samples[2].interpolated);
        // Bit-identical to the batch repair of the same gap, per
        // subcarrier.
        for sc in 0..4 {
            let lane = [Some(a.per_tx[0][sc]), None, None, Some(b.per_tx[0][sc])];
            let filled = fill_gaps_complex(&lane).unwrap();
            assert_eq!(samples[0].snapshots[0].per_tx[0][sc], filled[1]);
            assert_eq!(samples[1].snapshots[0].per_tx[0][sc], filled[2]);
        }
    }

    #[test]
    fn gap_filter_drops_duplicates_and_stale_reorders() {
        let mut filter = GapFilter::new(1, 3);
        let s = probe_snap(2.0);
        filter.offer(0, &[Some(s.clone())]);
        filter.offer(1, &[Some(s.clone())]);
        assert!(matches!(
            filter.offer(1, &[Some(s.clone())]),
            GapOutcome::Dropped(DropReason::Duplicate)
        ));
        assert!(matches!(
            filter.offer(0, &[Some(s.clone())]),
            GapOutcome::Dropped(DropReason::Stale)
        ));
        assert_eq!(filter.next_expected(), 2, "drops do not advance");
        // Delivery resumes exactly where it left off.
        assert!(matches!(
            filter.offer(2, &[Some(s)]),
            GapOutcome::Deliver(ref v) if v.len() == 1
        ));
    }

    #[test]
    fn gap_filter_splits_on_long_gap_and_holds_antenna_holes() {
        let mut filter = GapFilter::new(2, 2);
        let a = probe_snap(1.0);
        let b = probe_snap(9.0);
        filter.offer(0, &[Some(a.clone()), Some(a.clone())]);
        // Gap of 4 > max_gap 2: split, not interpolation.
        let out = filter.offer(5, &[Some(b.clone()), None]);
        let GapOutcome::Split { lost, resume } = out else {
            panic!("expected split, got {out:?}");
        };
        assert_eq!(lost, 4);
        assert_eq!(resume.seq, 5);
        assert!(resume.interpolated, "held antenna flags the sample");
        assert_eq!(resume.snapshots[0], b, "measured antenna kept");
        assert_eq!(resume.snapshots[1], a, "lost antenna held from history");
        // The split re-anchors: the next in-order sample delivers.
        assert!(matches!(
            filter.offer(6, &[Some(b.clone()), Some(b)]),
            GapOutcome::Deliver(ref v) if v.len() == 1
        ));
    }

    #[test]
    fn gap_filter_needs_complete_first_sample() {
        let mut filter = GapFilter::new(2, 2);
        let s = probe_snap(1.0);
        assert!(matches!(
            filter.offer(0, &[Some(s.clone()), None]),
            GapOutcome::Dropped(DropReason::Incomplete)
        ));
        assert!(matches!(
            filter.offer(0, &[None, None]),
            GapOutcome::Dropped(DropReason::Incomplete)
        ));
        assert!(matches!(
            filter.offer(1, &[Some(s.clone()), Some(s)]),
            GapOutcome::Deliver(_)
        ));
    }

    #[test]
    fn offer_rejects_non_finite_snapshots() {
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut stream = RimStream::new(geo, config(100.0)).unwrap();
        let mut bad = probe_snap(1.0);
        bad.per_tx[0][2] = Complex64::new(f64::NAN, 0.0);
        let offer = vec![Some(probe_snap(0.0)), Some(bad), Some(probe_snap(2.0))];
        let err = stream.ingest((7, offer)).unwrap_err();
        assert_eq!(
            err,
            Error::NonFiniteCsi {
                antenna: 1,
                sample: 7
            }
        );
        // The rejected sample left no trace.
        assert_eq!(stream.samples_pushed(), 0);
    }

    #[test]
    fn mid_stream_grid_change_is_rejected_as_geometry_error() {
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut stream = RimStream::new(geo, config(100.0)).unwrap();
        stream
            .ingest(vec![probe_snap(0.0), probe_snap(1.0), probe_snap(2.0)])
            .unwrap();
        // A snapshot on a different subcarrier grid would score zero
        // TRRS against everything already in the ring — reject it.
        let mut narrow = probe_snap(3.0);
        narrow.per_tx[0].pop();
        let err = stream
            .ingest(vec![probe_snap(3.0), narrow, probe_snap(5.0)])
            .unwrap_err();
        assert!(matches!(err, Error::Geometry(_)), "{err:?}");
        assert!(err.to_string().contains("grid changed mid-stream"), "{err}");
        // Consistent snapshots keep flowing afterwards.
        stream
            .ingest(vec![probe_snap(3.0), probe_snap(4.0), probe_snap(5.0)])
            .unwrap();
        assert_eq!(stream.samples_pushed(), 2);
    }

    #[test]
    fn stream_matches_offline_on_simple_move() {
        let fs = 100.0;
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut traj = dwell(Point2::new(0.0, 2.0), 0.0, 0.4, fs);
        traj.extend(&line(
            Point2::new(0.0, 2.0),
            0.0,
            1.0,
            1.0,
            fs,
            OrientationMode::FollowPath,
        ));
        traj.extend(&dwell(Point2::new(1.0, 2.0), 0.0, 0.5, fs));
        let dense = CsiRecorder::new(
            &sim,
            DeviceConfig::single_nic(geo.offsets().to_vec()),
            RecorderConfig::default(),
        )
        .record(&traj)
        .interpolated()
        .unwrap();

        // Offline reference.
        let offline = Rim::new(geo.clone(), config(fs))
            .unwrap()
            .analyze(&dense)
            .unwrap();

        // Streamed.
        let mut stream = RimStream::new(geo, config(fs)).unwrap();
        let mut agg = StreamAggregate::default();
        let mut started = 0;
        let mut stopped = 0;
        for i in 0..dense.n_samples() {
            let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
            let events = stream.ingest(snaps).unwrap();
            for e in &events {
                match e {
                    StreamEvent::MovementStarted { .. } => started += 1,
                    StreamEvent::MovementStopped { .. } => stopped += 1,
                    _ => {}
                }
            }
            agg.absorb(&events);
        }
        agg.absorb(&stream.finish());

        assert_eq!(started, 1, "one movement start");
        assert!(stopped >= 1, "movement stop emitted");
        assert_eq!(agg.degraded, 0, "clean input never degrades");
        assert!(
            (agg.total_distance() - 1.0).abs() < 0.15,
            "streamed distance {:.3}",
            agg.total_distance()
        );
        assert!(
            agg.distance_gap(&offline) < 0.1,
            "stream vs offline gap {:.3}",
            agg.distance_gap(&offline)
        );
        // Clean segments carry usable confidence.
        for seg in &agg.segments {
            assert_eq!(seg.confidence.interpolated_fraction, 0.0);
            assert!(
                seg.confidence.alignment_coverage > 0.0,
                "coverage {:?}",
                seg.confidence
            );
        }
    }

    #[test]
    fn stream_memory_stays_bounded() {
        let fs = 100.0;
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        // A long move (8 m) forces partial flushes.
        let traj = line(
            Point2::new(-4.0, 2.0),
            0.0,
            8.0,
            1.0,
            fs,
            OrientationMode::FollowPath,
        );
        let dense = CsiRecorder::new(
            &sim,
            DeviceConfig::single_nic(geo.offsets().to_vec()),
            RecorderConfig::default(),
        )
        .record(&traj)
        .interpolated()
        .unwrap();
        let mut stream = RimStream::new(geo, config(fs)).unwrap();
        let mut agg = StreamAggregate::default();
        let mut max_ring = 0usize;
        for i in 0..dense.n_samples() {
            let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
            agg.absorb(&stream.ingest(snaps).unwrap());
            max_ring = max_ring.max(stream.ring_len());
        }
        agg.absorb(&stream.finish());
        assert!(
            max_ring < dense.n_samples(),
            "ring ({max_ring}) stays below trace length ({})",
            dense.n_samples()
        );
        assert!(agg.segments.len() >= 2, "partial flushes happened");
        assert!(
            (agg.total_distance() - 8.0).abs() < 0.6,
            "streamed long distance {:.2}",
            agg.total_distance()
        );
    }

    #[test]
    fn static_stream_emits_nothing() {
        let fs = 100.0;
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let traj = dwell(Point2::new(0.5, 1.5), 0.0, 1.0, fs);
        let dense = CsiRecorder::new(
            &sim,
            DeviceConfig::single_nic(geo.offsets().to_vec()),
            RecorderConfig::default(),
        )
        .record(&traj)
        .interpolated()
        .unwrap();
        let mut stream = RimStream::new(geo, config(fs)).unwrap();
        let mut events = Vec::new();
        for i in 0..dense.n_samples() {
            let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
            events.extend(stream.ingest(snaps).unwrap());
        }
        events.extend(stream.finish());
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn long_gap_splits_and_emits_degraded_then_recovered() {
        let fs = 100.0;
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut traj = dwell(Point2::new(0.0, 2.0), 0.0, 0.4, fs);
        traj.extend(&line(
            Point2::new(0.0, 2.0),
            0.0,
            1.5,
            1.0,
            fs,
            OrientationMode::FollowPath,
        ));
        traj.extend(&dwell(Point2::new(1.5, 2.0), 0.0, 1.0, fs));
        let dense = CsiRecorder::new(
            &sim,
            DeviceConfig::single_nic(geo.offsets().to_vec()),
            RecorderConfig::default(),
        )
        .record(&traj)
        .interpolated()
        .unwrap();
        let cfg = config(fs);
        let max_gap = cfg.gap.max_gap;
        let mut stream = RimStream::new(geo, cfg).unwrap();
        let mut agg = StreamAggregate::default();
        let mut saw_input_gap = false;
        // Lose a stretch longer than max_gap mid-move: samples
        // [60, 60 + max_gap + 5) never arrive.
        let lost = 60..60 + max_gap + 5;
        for i in 0..dense.n_samples() {
            if lost.contains(&i) {
                continue;
            }
            let snaps: Vec<_> = dense.antennas.iter().map(|a| Some(a[i].clone())).collect();
            let events = stream.ingest((i as u64, snaps)).unwrap();
            for e in &events {
                if let StreamEvent::Degraded {
                    reason: DegradeReason::InputGap { lost: n },
                    ..
                } = e
                {
                    saw_input_gap = true;
                    assert_eq!(*n as usize, max_gap + 5);
                }
            }
            agg.absorb(&events);
        }
        agg.absorb(&stream.finish());
        assert!(saw_input_gap, "split reported as an input-gap degradation");
        assert!(agg.degraded >= 1, "degraded transition emitted");
        assert!(
            agg.recovered >= 1,
            "recovered after a healthy post-gap window (degraded {}, recovered {})",
            agg.degraded,
            agg.recovered
        );
        // The time axis still spans the whole recording.
        assert_eq!(stream.samples_pushed(), dense.n_samples());
    }

    #[test]
    fn short_gaps_are_bridged_without_degrading() {
        let fs = 100.0;
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut traj = dwell(Point2::new(0.0, 2.0), 0.0, 0.4, fs);
        traj.extend(&line(
            Point2::new(0.0, 2.0),
            0.0,
            1.0,
            1.0,
            fs,
            OrientationMode::FollowPath,
        ));
        traj.extend(&dwell(Point2::new(1.0, 2.0), 0.0, 0.5, fs));
        let dense = CsiRecorder::new(
            &sim,
            DeviceConfig::single_nic(geo.offsets().to_vec()),
            RecorderConfig::default(),
        )
        .record(&traj)
        .interpolated()
        .unwrap();
        let mut stream = RimStream::new(geo, config(fs)).unwrap();
        let mut agg = StreamAggregate::default();
        // Drop every 24th sample: isolated single-sample gaps, far below
        // both max_gap and the watchdog's enter threshold.
        for i in 0..dense.n_samples() {
            if i % 24 == 23 {
                continue;
            }
            let snaps: Vec<_> = dense.antennas.iter().map(|a| Some(a[i].clone())).collect();
            agg.absorb(&stream.ingest((i as u64, snaps)).unwrap());
        }
        agg.absorb(&stream.finish());
        assert_eq!(agg.degraded, 0, "sparse loss must not degrade");
        assert!(
            (agg.total_distance() - 1.0).abs() < 0.2,
            "distance with sparse loss {:.3}",
            agg.total_distance()
        );
        let interp: Vec<f64> = agg
            .segments
            .iter()
            .map(|s| s.confidence.interpolated_fraction)
            .collect();
        assert!(
            interp.iter().any(|&f| f > 0.0),
            "interpolation is reflected in confidence: {interp:?}"
        );
    }

    #[test]
    fn ingest_accepts_every_input_shape() {
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut stream = RimStream::new(geo, config(100.0)).unwrap();
        let snaps = vec![probe_snap(0.0), probe_snap(1.0), probe_snap(2.0)];
        assert!(stream.ingest(snaps.clone()).unwrap().is_empty());
        let holes: Vec<_> = snaps.into_iter().map(Some).collect();
        assert!(stream.ingest((1u64, holes.clone())).unwrap().is_empty());
        let sample = SyncedSample {
            seq: 2,
            antennas: holes,
        };
        assert!(stream.ingest(sample).unwrap().is_empty());
        assert_eq!(stream.samples_pushed(), 3);
    }

    #[test]
    fn stale_seq_after_rebase_is_dropped_not_underflowed() {
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut stream = RimStream::new(geo, config(100.0)).unwrap();
        // White-box: a rebased gap filter expecting a pre-epoch sequence
        // number. Before the guard, `(seq - first) as usize` underflowed.
        stream.first_seq = Some(1000);
        stream.gap_filter.next_seq = Some(10);
        stream.gap_filter.last = vec![probe_snap(0.0); 3];
        let snaps: Vec<_> = (0..3).map(|a| Some(probe_snap(a as f64))).collect();
        let recorder = rim_obs::Recorder::new();
        let events = stream
            .session()
            .probe(&recorder)
            .ingest((10u64, snaps))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");
        assert_eq!(stream.samples_pushed(), 0, "stale sample left no trace");
        let report = recorder.report();
        let stream_stage = report.stage(stage::STREAM).expect("stream stage reported");
        assert!(
            stream_stage
                .counters
                .iter()
                .any(|(n, v)| n == stream_metric::REORDERED && *v >= 1),
            "stale drop counted: {:?}",
            stream_stage.counters
        );
    }

    #[test]
    fn tx_mismatch_within_a_sample_is_counted() {
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut stream = RimStream::new(geo, config(100.0)).unwrap();
        let mut two_tx = probe_snap(1.0);
        two_tx.per_tx.push(two_tx.per_tx[0].clone());
        let recorder = rim_obs::Recorder::new();
        stream
            .session()
            .probe(&recorder)
            .ingest(vec![probe_snap(0.0), two_tx, probe_snap(2.0)])
            .unwrap();
        stream
            .session()
            .probe(&recorder)
            .ingest(vec![probe_snap(3.0), probe_snap(4.0), probe_snap(5.0)])
            .unwrap();
        let report = recorder.report();
        let stream_stage = report.stage(stage::STREAM).expect("stream stage reported");
        let count = stream_stage
            .counters
            .iter()
            .find(|(n, _)| n == stream_metric::TX_MISMATCH)
            .map(|(_, v)| *v);
        assert_eq!(count, Some(1), "only the mismatched sample is counted");
    }

    #[test]
    fn provisionals_are_emitted_during_motion_and_monotone() {
        let fs = 100.0;
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut traj = dwell(Point2::new(0.0, 2.0), 0.0, 0.4, fs);
        traj.extend(&line(
            Point2::new(0.0, 2.0),
            0.0,
            1.0,
            1.0,
            fs,
            OrientationMode::FollowPath,
        ));
        traj.extend(&dwell(Point2::new(1.0, 2.0), 0.0, 0.5, fs));
        let dense = CsiRecorder::new(
            &sim,
            DeviceConfig::single_nic(geo.offsets().to_vec()),
            RecorderConfig::default(),
        )
        .record(&traj)
        .interpolated()
        .unwrap();
        let mut cfg = config(fs);
        cfg.provisional_every = 10;
        let mut stream = RimStream::new(geo, cfg).unwrap();
        let mut provisional_distances = Vec::new();
        let mut before_close = 0usize;
        let mut segments = 0usize;
        for i in 0..dense.n_samples() {
            let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
            for e in stream.ingest(snaps).unwrap() {
                match e {
                    StreamEvent::Provisional {
                        distance_so_far,
                        confidence,
                        ..
                    } => {
                        assert!(distance_so_far.is_finite());
                        assert!(confidence.peak_margin >= 0.0);
                        provisional_distances.push(distance_so_far);
                        if segments == 0 {
                            before_close += 1;
                        }
                    }
                    StreamEvent::Segment(_) => segments += 1,
                    _ => {}
                }
            }
        }
        stream.finish();
        assert!(
            before_close >= 2,
            "provisionals arrive while the motion is open (got {before_close})"
        );
        for pair in provisional_distances.windows(2) {
            assert!(
                pair[1] >= pair[0],
                "provisional distance went backwards: {provisional_distances:?}"
            );
        }
        let last = provisional_distances.last().copied().unwrap_or(0.0);
        assert!(
            last > 0.2,
            "provisionals track real motion, got {last:.3} m: {provisional_distances:?}"
        );
    }

    #[test]
    fn wrong_antenna_count_is_rejected() {
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut stream = RimStream::new(geo, config(100.0)).unwrap();
        let err = stream.ingest(StreamInput::Dense(Vec::new())).unwrap_err();
        assert_eq!(
            err,
            Error::AntennaMismatch {
                expected: 3,
                got: 0
            }
        );
        // The stream stays usable after a rejected push.
        assert_eq!(stream.samples_pushed(), 0);
    }
}
