//! Streaming (real-time) RIM pipeline with bounded memory.
//!
//! The paper's prototype includes a real-time C++ system (§5, §6.3.3);
//! this module is its counterpart: CSI snapshots are *pushed* sample by
//! sample, a ring buffer holds just enough history for the alignment
//! window and the virtual-massive average, and motion estimates are
//! emitted with bounded latency as soon as each movement segment (or
//! partial segment) can be resolved. Memory is `O(ring capacity)` no
//! matter how long the device runs.
//!
//! Latency/accuracy trade-off: segments are flushed either when movement
//! stops or when the open segment reaches `max_open_segment` samples, in
//! which case it is analyzed in place and the tail re-examined later
//! chunks continue seamlessly (the Δd compensation is applied only once
//! per physical movement).

use crate::error::Error;
use crate::movement::{movement_indicator, MovementConfig};
use crate::pipeline::{MotionEstimate, Rim, RimConfig, SegmentEstimate};
use crate::trrs::NormSnapshot;
use rim_array::ArrayGeometry;
use rim_csi::frame::CsiSnapshot;
use rim_obs::{stage, NullProbe, Probe};
use std::collections::VecDeque;

/// An incremental update emitted by the stream.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// Movement started at the given absolute sample index.
    MovementStarted {
        /// Absolute sample index.
        at: usize,
    },
    /// A resolved stretch of motion (one segment or a bounded chunk of an
    /// ongoing one).
    Segment(SegmentEstimate),
    /// Movement stopped at the given absolute sample index.
    MovementStopped {
        /// Absolute sample index.
        at: usize,
    },
}

/// Push-based RIM engine with bounded memory.
#[derive(Debug)]
pub struct RimStream {
    rim: Rim,
    /// Ring of recent normalised snapshots per antenna.
    ring: Vec<VecDeque<NormSnapshot>>,
    /// Absolute index of the first sample currently in the ring.
    ring_base: usize,
    /// Total samples pushed.
    pushed: usize,
    /// Per-sample movement flags for the ring span (same base).
    moving: VecDeque<bool>,
    /// Absolute start of the currently open moving segment.
    open_segment: Option<usize>,
    /// Whether the open segment has already been partially flushed (so
    /// later flushes must not re-apply the initial-motion compensation).
    segment_continued: bool,
    /// Ring capacity.
    capacity: usize,
    /// Maximum open-segment length before a partial flush.
    max_open: usize,
    /// Sample rate, Hz.
    fs: f64,
}

/// A builder-style handle for probed streaming pushes, created by
/// [`RimStream::session`]. Mirrors [`crate::Session`] for the push-based
/// engine:
///
/// ```no_run
/// # fn run(stream: &mut rim_core::RimStream,
/// #        snaps: &[rim_csi::frame::CsiSnapshot])
/// #     -> Result<(), rim_core::Error> {
/// let recorder = rim_obs::Recorder::new();
/// let events = stream.session().probe(&recorder).push(snaps)?;
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct StreamSession<'s, P: Probe + ?Sized = NullProbe> {
    stream: &'s mut RimStream,
    probe: &'s P,
}

impl<'s, P: Probe + ?Sized> StreamSession<'s, P> {
    /// Attaches an observability probe: the streaming front-end reports
    /// ring occupancy, sample/segment counters, and flush latency under
    /// [`stage::STREAM`]; the per-segment analyses it triggers report
    /// under the six pipeline stages.
    pub fn probe<Q: Probe + ?Sized>(self, probe: &'s Q) -> StreamSession<'s, Q> {
        StreamSession {
            stream: self.stream,
            probe,
        }
    }

    /// Pushes one synchronized sample (one snapshot per antenna) and
    /// returns any events it completes.
    ///
    /// # Errors
    /// [`Error::AntennaMismatch`] when the snapshot count differs from
    /// the geometry's antennas.
    pub fn push(&mut self, snapshots: &[CsiSnapshot]) -> Result<Vec<StreamEvent>, Error> {
        self.stream.push_internal(snapshots, self.probe)
    }

    /// Flushes the open segment if any (e.g. at end of stream) and
    /// returns its estimate.
    pub fn finish(&mut self) -> Vec<StreamEvent> {
        self.stream.finish_internal(self.probe)
    }
}

impl RimStream {
    /// Creates a streaming engine for the configuration's sample rate
    /// ([`RimConfig::sample_rate_hz`]). The ring holds `4·(W + V)`
    /// samples plus the maximum open-segment length.
    ///
    /// # Errors
    /// The same validation as [`Rim::new`]: [`Error::Config`] for
    /// out-of-range parameters, [`Error::Geometry`] for arrays with
    /// fewer than two antennas.
    pub fn new(geometry: ArrayGeometry, config: RimConfig) -> Result<Self, Error> {
        let w = config.alignment.window;
        let v = config.alignment.virtual_antennas;
        let fs = config.sample_rate_hz;
        let max_open = (4.0 * fs) as usize; // flush at least every 4 s
        let capacity = max_open + 4 * (w + v) + 8;
        let n_ant = geometry.n_antennas();
        Ok(Self {
            rim: Rim::new(geometry, config)?,
            ring: (0..n_ant)
                .map(|_| VecDeque::with_capacity(capacity))
                .collect(),
            ring_base: 0,
            pushed: 0,
            moving: VecDeque::with_capacity(capacity),
            open_segment: None,
            segment_continued: false,
            capacity,
            max_open,
            fs,
        })
    }

    /// Starts an un-instrumented streaming session (see
    /// [`StreamSession`]).
    pub fn session(&mut self) -> StreamSession<'_, NullProbe> {
        StreamSession {
            stream: self,
            probe: &NullProbe,
        }
    }

    /// Number of samples pushed so far.
    pub fn samples_pushed(&self) -> usize {
        self.pushed
    }

    /// Current ring occupancy (bounded by the configured capacity).
    pub fn ring_len(&self) -> usize {
        self.ring.first().map_or(0, VecDeque::len)
    }

    /// Pushes one synchronized sample (one snapshot per antenna) and
    /// returns any events it completes. Shorthand for
    /// [`RimStream::session`] + [`StreamSession::push`].
    ///
    /// # Errors
    /// [`Error::AntennaMismatch`] when the snapshot count differs from
    /// the geometry's antennas.
    pub fn push(&mut self, snapshots: &[CsiSnapshot]) -> Result<Vec<StreamEvent>, Error> {
        self.push_internal(snapshots, &NullProbe)
    }

    /// [`RimStream::push`] with an observability probe.
    #[deprecated(note = "use `stream.session().probe(probe).push(snapshots)` instead")]
    pub fn push_probed<P: Probe + ?Sized>(
        &mut self,
        snapshots: &[CsiSnapshot],
        probe: &P,
    ) -> Result<Vec<StreamEvent>, Error> {
        self.push_internal(snapshots, probe)
    }

    /// The push body shared by [`RimStream::push`], [`StreamSession`],
    /// and the deprecated probed wrapper.
    fn push_internal<P: Probe + ?Sized>(
        &mut self,
        snapshots: &[CsiSnapshot],
        probe: &P,
    ) -> Result<Vec<StreamEvent>, Error> {
        if snapshots.len() != self.ring.len() {
            return Err(Error::AntennaMismatch {
                expected: self.ring.len(),
                got: snapshots.len(),
            });
        }
        for (ring, snap) in self.ring.iter_mut().zip(snapshots) {
            ring.push_back(NormSnapshot::from_snapshot(snap));
        }
        self.pushed += 1;

        // Incremental movement detection: min self-TRRS across antennas at
        // the newest sample.
        let mcfg = self.rim.config().movement;
        let flag = self.instant_movement(&mcfg);
        self.moving.push_back(flag);

        let mut events = Vec::new();
        let newest = self.pushed - 1;
        match (self.open_segment, flag) {
            (None, true) => {
                // Debounce opening: a lone moving flag (noise flicker while
                // static) must not start a segment. Require a short run of
                // consecutive moving samples, then backdate the start to
                // cover the confirmation wait plus the indicator lag.
                let confirm = ((0.05 * self.fs) as usize).max(2);
                let tail_moving = self.moving.len() >= confirm
                    && self.moving.iter().rev().take(confirm).all(|&m| m);
                if tail_moving {
                    let start = (newest + 1 - confirm)
                        .saturating_sub(mcfg.lag)
                        .max(self.ring_base);
                    self.open_segment = Some(start);
                    self.segment_continued = false;
                    events.push(StreamEvent::MovementStarted { at: start });
                }
            }
            (Some(start), false) => {
                // Require a debounce of consecutive static samples before
                // closing (cheap: check the tail of the flags).
                let quiet = (0.2 * self.fs) as usize;
                let tail_static = self.moving.iter().rev().take(quiet).all(|&m| !m);
                if tail_static && self.moving.len() >= quiet {
                    if let Some(seg) =
                        self.flush_segment(start, newest + 1 - quiet.min(newest), probe)
                    {
                        events.push(StreamEvent::Segment(seg));
                    }
                    events.push(StreamEvent::MovementStopped { at: newest });
                    self.open_segment = None;
                }
            }
            (Some(start), true) => {
                // Partial flush of very long movements to bound memory.
                if newest - start >= self.max_open {
                    if let Some(seg) = self.flush_segment(start, newest + 1, probe) {
                        events.push(StreamEvent::Segment(seg));
                    }
                    self.open_segment = Some(newest + 1);
                    self.segment_continued = true;
                }
            }
            (None, false) => {}
        }

        self.trim_ring();
        probe.count(stage::STREAM, "samples_pushed", 1);
        probe.gauge(stage::STREAM, "ring_occupancy", self.ring_len() as f64);
        probe.gauge(stage::STREAM, "ring_capacity", self.capacity as f64);
        Ok(events)
    }

    /// Flushes the open segment if any (e.g. at end of stream) and
    /// returns its estimate. Shorthand for [`RimStream::session`] +
    /// [`StreamSession::finish`].
    pub fn finish(&mut self) -> Vec<StreamEvent> {
        self.finish_internal(&NullProbe)
    }

    /// [`RimStream::finish`] with an observability probe.
    #[deprecated(note = "use `stream.session().probe(probe).finish()` instead")]
    pub fn finish_probed<P: Probe + ?Sized>(&mut self, probe: &P) -> Vec<StreamEvent> {
        self.finish_internal(probe)
    }

    /// The finish body shared by the public entry points.
    fn finish_internal<P: Probe + ?Sized>(&mut self, probe: &P) -> Vec<StreamEvent> {
        let mut events = Vec::new();
        if let Some(start) = self.open_segment.take() {
            if let Some(seg) = self.flush_segment(start, self.pushed, probe) {
                events.push(StreamEvent::Segment(seg));
            }
            events.push(StreamEvent::MovementStopped { at: self.pushed });
        }
        events
    }

    /// Movement flag for the newest ring sample.
    fn instant_movement(&self, mcfg: &MovementConfig) -> bool {
        let len = self.ring_len();
        if len <= mcfg.lag {
            return false;
        }
        // Evaluate the indicator over a short suffix window and take the
        // newest value (min across antennas).
        let tail = (mcfg.lag + mcfg.virtual_antennas + 1).min(len);
        let mut min_ind = f64::INFINITY;
        for ring in &self.ring {
            let slice: Vec<NormSnapshot> = ring.iter().skip(len - tail).cloned().collect();
            let ind = movement_indicator(&slice, *mcfg);
            if let Some(&v) = ind.last() {
                min_ind = min_ind.min(v);
            }
        }
        min_ind < mcfg.threshold
    }

    /// Analyzes absolute range `[start, end)` and returns its segment
    /// estimate (if the stretch was resolvable).
    fn flush_segment<P: Probe + ?Sized>(
        &mut self,
        start: usize,
        end: usize,
        probe: &P,
    ) -> Option<SegmentEstimate> {
        if end <= start {
            return None;
        }
        // Flush latency: everything from ring materialisation through the
        // per-segment pipeline run.
        let _span = probe.span(stage::STREAM);
        // Materialise the ring as contiguous series (bounded size).
        let series: Vec<Vec<NormSnapshot>> = self
            .ring
            .iter()
            .map(|r| r.iter().cloned().collect())
            .collect();
        let s_rel = start.checked_sub(self.ring_base)?;
        let e_rel = (end - self.ring_base).min(series[0].len());
        if e_rel <= s_rel {
            return None;
        }
        let mut result =
            self.rim
                .analyze_segment(&series, self.fs, s_rel, e_rel, self.rim.pool(), probe);
        if self.segment_continued {
            // A continuation chunk: remove the per-segment Δd compensation
            // that analyze_segment applied (the motion did not restart).
            if self.rim.config().compensate_initial_motion {
                let sep = self
                    .rim
                    .geometry()
                    .pairs()
                    .iter()
                    .map(|p| p.separation)
                    .fold(f64::INFINITY, f64::min);
                if sep.is_finite() && result.summary.distance_m >= sep {
                    result.summary.distance_m -= sep;
                }
            }
        }
        // Re-anchor to absolute sample indices.
        result.summary.start = start;
        result.summary.end = end;
        probe.count(stage::STREAM, "segments_flushed", 1);
        Some(result.summary)
    }

    /// Drops ring history that no open segment can still need.
    fn trim_ring(&mut self) {
        let keep_from = match self.open_segment {
            Some(start) => start.saturating_sub(
                2 * (self.rim.config().alignment.window
                    + self.rim.config().alignment.virtual_antennas),
            ),
            None => self.pushed.saturating_sub(
                2 * (self.rim.config().alignment.window
                    + self.rim.config().alignment.virtual_antennas)
                    + 4,
            ),
        };
        while self.ring_base < keep_from && self.ring_len() > 1 {
            for ring in &mut self.ring {
                ring.pop_front();
            }
            self.moving.pop_front();
            self.ring_base += 1;
        }
        // Hard cap: never exceed capacity.
        while self.ring_len() > self.capacity {
            for ring in &mut self.ring {
                ring.pop_front();
            }
            self.moving.pop_front();
            self.ring_base += 1;
        }
    }
}

/// Aggregates streamed segments into totals comparable with the offline
/// [`MotionEstimate`].
#[derive(Debug, Clone, Default)]
pub struct StreamAggregate {
    /// Segments seen so far.
    pub segments: Vec<SegmentEstimate>,
}

impl StreamAggregate {
    /// Consumes events.
    pub fn absorb(&mut self, events: &[StreamEvent]) {
        for e in events {
            if let StreamEvent::Segment(s) = e {
                self.segments.push(s.clone());
            }
        }
    }

    /// Total travelled distance.
    pub fn total_distance(&self) -> f64 {
        self.segments.iter().map(|s| s.distance_m).sum()
    }

    /// Net rotation, radians.
    pub fn total_rotation(&self) -> f64 {
        self.segments.iter().map(|s| s.rotation_rad).sum()
    }

    /// Compares against an offline estimate (used in tests).
    pub fn distance_gap(&self, offline: &MotionEstimate) -> f64 {
        (self.total_distance() - offline.total_distance()).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_array::HALF_WAVELENGTH;
    use rim_channel::simulator::{ApConfig, ChannelSimulator};
    use rim_channel::trajectory::{dwell, line, OrientationMode};
    use rim_channel::{uniform_field, Floorplan, RayTracer, SubcarrierLayout, TracerConfig};
    use rim_csi::recorder::{CsiRecorder, DeviceConfig, RecorderConfig};
    use rim_dsp::geom::Point2;

    fn small_sim() -> ChannelSimulator {
        let scat = uniform_field(
            Point2::new(-12.0, -12.0),
            Point2::new(12.0, 12.0),
            90,
            0.35,
            5,
        );
        let tracer = RayTracer::new(
            Floorplan::empty(),
            scat,
            Vec::new(),
            TracerConfig::default(),
        );
        ChannelSimulator::new(
            tracer,
            SubcarrierLayout::ht20_5ghz(),
            ApConfig::standard(Point2::new(-6.0, 0.0)),
        )
    }

    fn config(fs: f64) -> RimConfig {
        RimConfig::for_sample_rate(fs).with_min_speed(0.3, HALF_WAVELENGTH, fs)
    }

    #[test]
    fn stream_matches_offline_on_simple_move() {
        let fs = 100.0;
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut traj = dwell(Point2::new(0.0, 2.0), 0.0, 0.4, fs);
        traj.extend(&line(
            Point2::new(0.0, 2.0),
            0.0,
            1.0,
            1.0,
            fs,
            OrientationMode::FollowPath,
        ));
        traj.extend(&dwell(Point2::new(1.0, 2.0), 0.0, 0.5, fs));
        let dense = CsiRecorder::new(
            &sim,
            DeviceConfig::single_nic(geo.offsets().to_vec()),
            RecorderConfig::default(),
        )
        .record(&traj)
        .interpolated()
        .unwrap();

        // Offline reference.
        let offline = Rim::new(geo.clone(), config(fs))
            .unwrap()
            .analyze(&dense)
            .unwrap();

        // Streamed.
        let mut stream = RimStream::new(geo, config(fs)).unwrap();
        let mut agg = StreamAggregate::default();
        let mut started = 0;
        let mut stopped = 0;
        for i in 0..dense.n_samples() {
            let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
            let events = stream.push(&snaps).unwrap();
            for e in &events {
                match e {
                    StreamEvent::MovementStarted { .. } => started += 1,
                    StreamEvent::MovementStopped { .. } => stopped += 1,
                    StreamEvent::Segment(_) => {}
                }
            }
            agg.absorb(&events);
        }
        agg.absorb(&stream.finish());

        assert_eq!(started, 1, "one movement start");
        assert!(stopped >= 1, "movement stop emitted");
        assert!(
            (agg.total_distance() - 1.0).abs() < 0.15,
            "streamed distance {:.3}",
            agg.total_distance()
        );
        assert!(
            agg.distance_gap(&offline) < 0.1,
            "stream vs offline gap {:.3}",
            agg.distance_gap(&offline)
        );
    }

    #[test]
    fn stream_memory_stays_bounded() {
        let fs = 100.0;
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        // A long move (8 m) forces partial flushes.
        let traj = line(
            Point2::new(-4.0, 2.0),
            0.0,
            8.0,
            1.0,
            fs,
            OrientationMode::FollowPath,
        );
        let dense = CsiRecorder::new(
            &sim,
            DeviceConfig::single_nic(geo.offsets().to_vec()),
            RecorderConfig::default(),
        )
        .record(&traj)
        .interpolated()
        .unwrap();
        let mut stream = RimStream::new(geo, config(fs)).unwrap();
        let mut agg = StreamAggregate::default();
        let mut max_ring = 0usize;
        for i in 0..dense.n_samples() {
            let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
            agg.absorb(&stream.push(&snaps).unwrap());
            max_ring = max_ring.max(stream.ring_len());
        }
        agg.absorb(&stream.finish());
        assert!(
            max_ring < dense.n_samples(),
            "ring ({max_ring}) stays below trace length ({})",
            dense.n_samples()
        );
        assert!(agg.segments.len() >= 2, "partial flushes happened");
        assert!(
            (agg.total_distance() - 8.0).abs() < 0.6,
            "streamed long distance {:.2}",
            agg.total_distance()
        );
    }

    #[test]
    fn static_stream_emits_nothing() {
        let fs = 100.0;
        let sim = small_sim();
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let traj = dwell(Point2::new(0.5, 1.5), 0.0, 1.0, fs);
        let dense = CsiRecorder::new(
            &sim,
            DeviceConfig::single_nic(geo.offsets().to_vec()),
            RecorderConfig::default(),
        )
        .record(&traj)
        .interpolated()
        .unwrap();
        let mut stream = RimStream::new(geo, config(fs)).unwrap();
        let mut events = Vec::new();
        for i in 0..dense.n_samples() {
            let snaps: Vec<_> = dense.antennas.iter().map(|a| a[i].clone()).collect();
            events.extend(stream.push(&snaps).unwrap());
        }
        events.extend(stream.finish());
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn wrong_antenna_count_is_rejected() {
        let geo = rim_array::ArrayGeometry::linear(3, HALF_WAVELENGTH);
        let mut stream = RimStream::new(geo, config(100.0)).unwrap();
        let err = stream.push(&[]).unwrap_err();
        assert_eq!(
            err,
            Error::AntennaMismatch {
                expected: 3,
                got: 0
            }
        );
        // The stream stays usable after a rejected push.
        assert_eq!(stream.samples_pushed(), 0);
    }
}
