//! Diagnostics: terminal renderings of the pipeline's internal state.
//!
//! The paper's figures are heatmaps of alignment matrices (Fig. 5, Fig. 8)
//! and indicator traces (Fig. 7); when deploying RIM somewhere new, being
//! able to *look* at those same artifacts is how one debugs a bad antenna,
//! a mis-specified lag window or a quiet channel. Everything here renders
//! to plain text.

use crate::alignment::AlignmentMatrix;

/// Intensity ramp used by the heatmap, dark to bright.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders an alignment matrix as an ASCII heatmap: lags on the vertical
/// axis (positive up, zero marked), time left to right, downsampled to at
/// most `max_cols` columns and `max_rows` lag rows. Each cell maps the
/// TRRS onto a 10-step brightness ramp after a per-matrix min/max
/// normalisation.
pub fn render_matrix(m: &AlignmentMatrix, max_cols: usize, max_rows: usize) -> String {
    let t_len = m.n_times();
    let n_lags = m.n_lags();
    if t_len == 0 || max_cols == 0 || max_rows == 0 {
        return String::from("(empty matrix)\n");
    }
    let col_stride = t_len.div_ceil(max_cols);
    let row_stride = n_lags.div_ceil(max_rows);

    // Render *prominence above each column's floor* — the quantity the
    // ridge detector uses — rather than raw TRRS, whose environment-
    // dependent floor would wash the ridge into the background.
    let prominence: Vec<Vec<f64>> = (0..t_len)
        .map(|t| {
            let floor = m.column_floor(t);
            m.values[t].iter().map(|&v| (v - floor).max(0.0)).collect()
        })
        .collect();
    let mut hi = f64::NEG_INFINITY;
    for row in &prominence {
        for &v in row {
            hi = hi.max(v);
        }
    }
    let lo = 0.0;
    let span = (hi - lo).max(1e-12);

    let mut out = String::new();
    // Render from the largest lag (top) downwards.
    let mut k = n_lags;
    while k > 0 {
        let kk = k - 1;
        if !kk.is_multiple_of(row_stride) {
            k -= 1;
            continue;
        }
        let lag = m.lag_of(kk);
        out.push_str(&format!("{lag:>5} |"));
        let mut t = 0;
        while t < t_len {
            // Average the block for stability.
            let mut acc = 0.0;
            let mut n = 0;
            for row in &prominence[t..(t + col_stride).min(t_len)] {
                acc += row[kk];
                n += 1;
            }
            let v = (acc / n as f64 - lo) / span;
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
            t += col_stride;
        }
        out.push('\n');
        k -= 1;
    }
    out.push_str(&format!(
        "      +{}\n       lag (samples) vertical, time → ({} columns ≈ {} samples each); prominence 0..{:.2}\n",
        "-".repeat(t_len.div_ceil(col_stride)),
        t_len.div_ceil(col_stride),
        col_stride,
        hi
    ));
    out
}

/// Renders a scalar trace (movement indicator, speed profile) as a
/// fixed-height ASCII sparkline with min/max annotations.
pub fn render_trace(values: &[f64], width: usize, height: usize) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() || width == 0 || height == 0 {
        return String::from("(empty trace)\n");
    }
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let stride = values.len().div_ceil(width);
    let cols: Vec<Option<f64>> = (0..values.len())
        .step_by(stride)
        .map(|t| {
            let block: Vec<f64> = values[t..(t + stride).min(values.len())]
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .collect();
            if block.is_empty() {
                None
            } else {
                Some(block.iter().sum::<f64>() / block.len() as f64)
            }
        })
        .collect();
    let mut out = String::new();
    for row in (0..height).rev() {
        // A single row cannot show a gradient: previously every finite
        // cell cleared the row-0 threshold of 0, drawing a solid bar under
        // a max-only label. Use the mid-scale threshold instead and label
        // with the full range.
        let threshold = if height == 1 {
            0.5
        } else {
            row as f64 / (height - 1) as f64
        };
        let label = if height == 1 {
            format!("{lo:>8.3}..{hi:.3} ")
        } else if row == height - 1 {
            format!("{hi:>8.3} ")
        } else if row == 0 {
            format!("{lo:>8.3} ")
        } else {
            String::from("         ")
        };
        out.push_str(&label);
        for c in &cols {
            match c {
                Some(v) => {
                    let norm = (v - lo) / span;
                    out.push(if norm >= threshold { '█' } else { ' ' });
                }
                None => out.push('·'),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ridge_matrix() -> AlignmentMatrix {
        // Ridge at lag +1 (index 3, W = 2).
        AlignmentMatrix {
            window: 2,
            values: (0..30).map(|_| vec![0.1, 0.2, 0.3, 0.9, 0.2]).collect(),
        }
    }

    #[test]
    fn heatmap_highlights_ridge() {
        let m = ridge_matrix();
        let art = render_matrix(&m, 20, 5);
        // The +1 lag row must be the brightest (all '@' after
        // normalisation).
        let ridge_line = art
            .lines()
            .find(|l| l.trim_start().starts_with("1 |"))
            .expect("+1 lag row present");
        assert!(ridge_line.contains('@'), "{ridge_line}");
        // A floor row contains no bright cells.
        let floor_line = art
            .lines()
            .find(|l| l.trim_start().starts_with("-2 |"))
            .expect("-2 lag row present");
        assert!(!floor_line.contains('@'), "{floor_line}");
    }

    #[test]
    fn heatmap_handles_empty_and_downsampling() {
        let empty = AlignmentMatrix {
            window: 1,
            values: vec![],
        };
        assert!(render_matrix(&empty, 10, 5).contains("empty"));
        // Wide matrix downsampled to ≤ 8 columns.
        let m = ridge_matrix();
        let art = render_matrix(&m, 8, 5);
        let data_line = art.lines().next().unwrap();
        let cells = data_line.split('|').nth(1).unwrap().len();
        assert!(cells <= 8, "{cells} columns");
    }

    #[test]
    fn trace_sparkline_shape() {
        let vals: Vec<f64> = (0..100).map(|k| (k as f64 / 15.0).sin()).collect();
        let art = render_trace(&vals, 40, 6);
        assert_eq!(art.lines().count(), 6);
        assert!(art.contains('█'));
        // Annotated bounds present.
        assert!(art.contains("1.000") || art.contains("0.99"), "{art}");
    }

    #[test]
    fn single_row_trace_uses_mid_threshold_and_range_label() {
        let vals = [0.0, 0.0, 1.0, 1.0];
        let art = render_trace(&vals, 4, 1);
        assert_eq!(art.lines().count(), 1);
        // Both bounds are annotated and only above-mid cells fill.
        assert!(art.contains("0.000..1.000"), "{art}");
        let cells: String = art.trim_end().chars().rev().take(4).collect();
        assert_eq!(cells, "██  ", "low half blank, high half filled: {art}");
    }

    #[test]
    fn trace_handles_gaps_and_empty() {
        let vals = [1.0, f64::NAN, 0.5];
        let art = render_trace(&vals, 3, 3);
        assert!(art.contains('·'), "NaN column marked: {art}");
        assert!(render_trace(&[], 5, 3).contains("empty"));
    }
}
